"""Benchmark package: one benchmark per paper table/figure plus ablations."""
