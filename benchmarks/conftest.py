"""Benchmark configuration.

Each benchmark regenerates one paper table/figure.  Experiment runs are
seconds-long simulations, so every benchmark uses a single round — the
interesting output is the reproduced numbers (stored in
``benchmark.extra_info``), not the timing distribution.

Every benchmark also leaves a ``BENCH_*.json`` scorecard behind:
benchmarks that call :func:`write_artifact` themselves control the
payload, and any other benchmark that filled ``benchmark.extra_info``
gets an automatic scorecard named after the test.  Scorecards are
stamped with the git SHA and an artifact schema version so
``repro bench compare`` can gate regressions and refuse cross-schema
comparisons.
"""

from __future__ import annotations

import os
import subprocess

import pytest

from repro.bench.compare import ARTIFACT_SCHEMA_VERSION
from repro.core.persistence import atomic_write_json
from repro.experiments.common import ScenarioConfig

ARTIFACT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "artifacts")

#: Artifact stems written during this pytest session, so the automatic
#: scorecard fixture never shadows an explicit ``write_artifact`` call.
_written_this_session = []


def _git_sha() -> str:
    """Current commit, preferring CI's env over a subprocess."""
    for var in ("GITHUB_SHA", "CI_COMMIT_SHA"):
        sha = os.environ.get(var)
        if sha:
            return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


@pytest.fixture(scope="session")
def scenario() -> ScenarioConfig:
    """The shared scenario every figure benchmark runs against."""
    return ScenarioConfig(seed=7)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a figure generator exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def write_artifact(name: str, payload: dict) -> str:
    """Persist a benchmark scorecard as ``benchmarks/artifacts/<name>.json``.

    The payload is wrapped in a stamped envelope (artifact schema
    version + git SHA) and written crash-safely (temp file + atomic
    replace) so a scorecard on disk is always complete.  Returns the
    path.
    """
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    path = os.path.join(ARTIFACT_DIR, f"{name}.json")
    atomic_write_json(
        path,
        {
            "name": name,
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "git_sha": _git_sha(),
            "metrics": payload,
        },
    )
    _written_this_session.append(name)
    return path


@pytest.fixture(autouse=True)
def _auto_scorecard(request):
    """Write a ``BENCH_<test>.json`` scorecard for every benchmark that
    recorded ``extra_info`` but didn't write an artifact itself."""
    # Resolve the benchmark fixture during setup — by teardown time it
    # may already be finalized and unavailable via getfixturevalue.
    bench = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    before = len(_written_this_session)
    yield
    if bench is None:
        return
    if len(_written_this_session) != before:
        return  # the test wrote its own, richer scorecard
    extra_info = dict(bench.extra_info)
    if not extra_info:
        return
    stem = request.node.name.removeprefix("test_").replace("[", "_").rstrip("]")
    write_artifact(f"BENCH_{stem}", extra_info)
