"""Benchmark configuration.

Each benchmark regenerates one paper table/figure.  Experiment runs are
seconds-long simulations, so every benchmark uses a single round — the
interesting output is the reproduced numbers (stored in
``benchmark.extra_info``), not the timing distribution.
"""

from __future__ import annotations

import os

import pytest

from repro.core.persistence import atomic_write_json
from repro.experiments.common import ScenarioConfig

ARTIFACT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "artifacts")


@pytest.fixture(scope="session")
def scenario() -> ScenarioConfig:
    """The shared scenario every figure benchmark runs against."""
    return ScenarioConfig(seed=7)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a figure generator exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def write_artifact(name: str, payload: dict) -> str:
    """Persist a benchmark scorecard as ``benchmarks/artifacts/<name>.json``.

    Written crash-safely (temp file + atomic replace) so a scorecard on
    disk is always complete.  Returns the path.
    """
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    path = os.path.join(ARTIFACT_DIR, f"{name}.json")
    atomic_write_json(path, payload)
    return path
