"""Benchmark configuration.

Each benchmark regenerates one paper table/figure.  Experiment runs are
seconds-long simulations, so every benchmark uses a single round — the
interesting output is the reproduced numbers (stored in
``benchmark.extra_info``), not the timing distribution.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ScenarioConfig


@pytest.fixture(scope="session")
def scenario() -> ScenarioConfig:
    """The shared scenario every figure benchmark runs against."""
    return ScenarioConfig(seed=7)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a figure generator exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
