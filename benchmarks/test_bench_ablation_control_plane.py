"""Ablation: pull-style control plane vs paged downlink assignments.

The paper's clients contact the server during radio tails (pull), so
assignment delivery is free.  The naive alternative — the server pages
each selected device — wakes idle radios and pays a promotion + tail
per assignment.  This ablation quantifies the difference, i.e. why the
paper's control-plane design is load-bearing.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.cellular.enodeb import TowerRegistry, grid_towers
from repro.cellular.network import CellularNetwork
from repro.clientlib import SenseAidClient
from repro.core.config import ControlPlane, SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer
from repro.devices.sensors import SensorType
from repro.devices.traffic import TrafficPattern
from repro.environment.campus import CS_DEPARTMENT, default_campus
from repro.environment.population import PopulationConfig, build_population
from repro.serverlib import CrowdsensingAppServer
from repro.sim.engine import Simulator


def run_arm(control_plane: ControlPlane, seed: int = 7) -> float:
    sim = Simulator(seed=seed)
    campus = default_campus()
    registry = TowerRegistry(grid_towers(campus.width_m, campus.height_m))
    network = CellularNetwork(sim)
    devices = build_population(
        sim,
        campus,
        PopulationConfig(size=20, traffic=TrafficPattern(mean_gap_s=420.0)),
    )
    server = SenseAidServer(
        sim,
        registry,
        network,
        SenseAidConfig(mode=ServerMode.COMPLETE, control_plane=control_plane),
    )
    for device in devices:
        SenseAidClient(sim, device, server, network).register()
    cas = CrowdsensingAppServer(server, "cas")
    cas.task(
        SensorType.BAROMETER,
        campus.site(CS_DEPARTMENT).position,
        area_radius_m=1000.0,
        spatial_density=2,
        sampling_period_s=600.0,
        sampling_duration_s=5400.0,
    )
    sim.run(until=5460.0)
    server.shutdown()
    return sum(d.crowdsensing_energy_j() for d in devices)


def run_pair():
    pull = run_arm(ControlPlane.PULL)
    paged = run_arm(ControlPlane.PUSH_PAGED)
    return pull, paged


def test_ablation_control_plane(benchmark):
    pull_j, paged_j = run_once(benchmark, run_pair)
    # Paging idle radios for assignments costs real energy; the pull
    # design must win clearly.
    assert pull_j < paged_j
    assert paged_j > 1.5 * pull_j
    benchmark.extra_info["pull_j"] = round(pull_j, 1)
    benchmark.extra_info["paged_j"] = round(paged_j, 1)
    benchmark.extra_info["paging_overhead_pct"] = round(
        (paged_j / pull_j - 1.0) * 100.0, 1
    )
