"""Ablation: Sense-Aid vs coverage-based recruitment.

Quantifies the paper's related-work argument: schedulers that select a
cohort once from mobility predictions and then upload regardless of
device state (CrowdRecruiter / iCrowd family) both waste energy (cold
uploads) and drop coverage when the predicted users wander off —
Sense-Aid's per-request, state-aware selection avoids both.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.config import ServerMode
from repro.experiments.common import (
    ScenarioConfig,
    TaskParams,
    run_coverage_arm,
    run_sense_aid_arm,
)

TASKS = [
    TaskParams(
        area_radius_m=500.0,
        spatial_density=2,
        sampling_period_s=600.0,
        sampling_duration_s=5400.0,
    )
]


def run_pair(scenario: ScenarioConfig):
    coverage = run_coverage_arm(scenario, TASKS)
    sense_aid = run_sense_aid_arm(scenario, TASKS, ServerMode.COMPLETE)
    return coverage, sense_aid


def test_ablation_coverage_recruitment(benchmark, scenario):
    coverage, sense_aid = run_once(benchmark, run_pair, scenario)
    # Energy: Sense-Aid wins (tail-riding vs always-cold uploads).
    assert sense_aid.energy.total_j < coverage.energy.total_j
    # Data quality: the fixed cohort misses density when users move;
    # Sense-Aid re-selects per request and keeps the density met more
    # often.
    framework = coverage.extras["framework"]
    server = sense_aid.extras["server"]
    requests = server.stats.requests_issued
    sense_aid_met = server.stats.requests_scheduled
    coverage_met = requests - framework.coverage_shortfalls
    assert sense_aid_met >= coverage_met
    benchmark.extra_info["coverage_energy_j"] = round(coverage.energy.total_j, 1)
    benchmark.extra_info["sense_aid_energy_j"] = round(sense_aid.energy.total_j, 1)
    benchmark.extra_info["coverage_shortfalls"] = framework.coverage_shortfalls
    benchmark.extra_info["requests"] = requests
