"""Ablation: carrier-integrated vs third-party deployment (paper §6).

The paper sketches two business models: the cellular provider runs
Sense-Aid (full edge visibility into RRC state) or a third party runs
it "over the top".  Without carrier integration the selector's TTL
factor only updates when a device itself contacts the server, so the
scheduler loses its "this radio is warm right now" signal.  The effect
per run is a handful of forced uploads, so the ablation averages over
several seeded worlds.
"""

from __future__ import annotations

from repro.cellular.enodeb import TowerRegistry, grid_towers
from repro.cellular.network import CellularNetwork
from repro.clientlib import SenseAidClient
from repro.core.config import SelectorWeights, SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer
from repro.devices.sensors import SensorType
from repro.environment.campus import CS_DEPARTMENT, default_campus
from repro.environment.population import PopulationConfig, build_population
from repro.devices.traffic import TrafficPattern
from repro.serverlib import CrowdsensingAppServer
from repro.sim.engine import Simulator

from benchmarks.conftest import run_once

SEEDS = range(7, 13)

#: TTL-heavy weights so the visibility difference shows up in the
#: schedule, not just the bookkeeping.
TTL_WEIGHTS = SelectorWeights(beta=0.2, phi=0.003)


def run_arm(seed: int, carrier_integrated: bool) -> float:
    sim = Simulator(seed=seed)
    campus = default_campus()
    registry = TowerRegistry(grid_towers(campus.width_m, campus.height_m))
    network = CellularNetwork(sim)
    devices = build_population(
        sim,
        campus,
        PopulationConfig(size=20, traffic=TrafficPattern(mean_gap_s=420.0)),
    )
    server = SenseAidServer(
        sim,
        registry,
        network,
        SenseAidConfig(
            mode=ServerMode.COMPLETE,
            weights=TTL_WEIGHTS,
            carrier_integrated=carrier_integrated,
        ),
    )
    for device in devices:
        SenseAidClient(sim, device, server, network).register()
    cas = CrowdsensingAppServer(server, "cas")
    cas.task(
        SensorType.BAROMETER,
        campus.site(CS_DEPARTMENT).position,
        area_radius_m=1000.0,
        spatial_density=2,
        sampling_period_s=600.0,
        sampling_duration_s=5400.0,
    )
    sim.run(until=5460.0)
    server.shutdown()
    return sum(d.crowdsensing_energy_j() for d in devices)


def run_comparison():
    carrier = [run_arm(seed, True) for seed in SEEDS]
    third_party = [run_arm(seed, False) for seed in SEEDS]
    return (
        sum(carrier) / len(carrier),
        sum(third_party) / len(third_party),
    )


def test_ablation_deployment_model(benchmark):
    carrier_mean, third_party_mean = run_once(benchmark, run_comparison)
    # Averaged over worlds, carrier visibility must not cost energy
    # (and typically saves some by selecting warm radios).
    assert carrier_mean <= third_party_mean * 1.05
    benchmark.extra_info["carrier_mean_j"] = round(carrier_mean, 1)
    benchmark.extra_info["third_party_mean_j"] = round(third_party_mean, 1)
    benchmark.extra_info["visibility_saving_pct"] = round(
        (1.0 - carrier_mean / third_party_mean) * 100.0, 1
    )
