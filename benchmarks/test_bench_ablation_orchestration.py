"""Ablation: global orchestration on vs off.

The paper: "Selecting all qualified devices in Sense-Aid still saves
energy compared to PCS and Periodic ... even without the global
orchestration, Sense-Aid is effective because it triggers each device
to upload crowdsensing data at an opportune time."  This ablation
quantifies how much of Sense-Aid's saving comes from orchestration
(minimum device set) vs radio-state awareness (tail riding).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.config import ServerMode
from repro.experiments.common import (
    ScenarioConfig,
    TaskParams,
    run_pcs_arm,
    run_sense_aid_arm,
)

TASKS = [
    TaskParams(
        area_radius_m=1000.0,
        spatial_density=2,
        sampling_period_s=600.0,
        sampling_duration_s=5400.0,
    )
]


def run_arms(scenario: ScenarioConfig):
    return {
        "orchestrated": run_sense_aid_arm(scenario, TASKS, ServerMode.COMPLETE),
        "select_all": run_sense_aid_arm(
            scenario, TASKS, ServerMode.COMPLETE, select_all_qualified=True
        ),
        "pcs": run_pcs_arm(scenario, TASKS),
    }


def test_ablation_orchestration(benchmark, scenario):
    arms = run_once(benchmark, run_arms, scenario)
    orchestrated = arms["orchestrated"].energy.total_j
    select_all = arms["select_all"].energy.total_j
    pcs = arms["pcs"].energy.total_j
    # Paper ordering: orchestrated < select-all < PCS.
    assert orchestrated < select_all < pcs
    # Even without orchestration, tail-riding alone must save a
    # substantial fraction over PCS (paper reports 54.5%).
    tail_only_saving = (1.0 - select_all / pcs) * 100.0
    assert tail_only_saving > 30.0
    benchmark.extra_info["energy_j"] = {
        name: round(arm.energy.total_j, 1) for name, arm in arms.items()
    }
    benchmark.extra_info["tail_only_saving_vs_pcs_pct"] = round(
        tail_only_saving, 1
    )
    benchmark.extra_info["orchestration_extra_saving_pct"] = round(
        (1.0 - orchestrated / select_all) * 100.0, 1
    )
