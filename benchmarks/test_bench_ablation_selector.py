"""Ablation: the selector's scoring weights (α, β, γ, φ).

DESIGN.md calls out the fairness-vs-energy trade-off baked into the
default weights.  This ablation runs the same scenario with (a) the
default fairness-dominant weights, (b) a TTL-only selector (always pick
whoever communicated most recently — greedy energy), and (c) a
battery-only selector, and compares energy and fairness.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.fairness import jain_index
from repro.core.config import SelectorWeights, ServerMode
from repro.experiments.common import ScenarioConfig, TaskParams, run_sense_aid_arm

TASKS = [
    TaskParams(
        area_radius_m=1000.0,
        spatial_density=2,
        sampling_period_s=600.0,
        sampling_duration_s=5400.0,
    )
]

WEIGHT_VARIANTS = {
    "default": SelectorWeights(),
    "ttl_only": SelectorWeights(alpha=0.0, beta=0.0, gamma=0.0, phi=1.0),
    "battery_only": SelectorWeights(alpha=0.0, beta=0.0, gamma=1.0, phi=0.0),
}


def run_variants(scenario: ScenarioConfig):
    results = {}
    for name, weights in WEIGHT_VARIANTS.items():
        arm = run_sense_aid_arm(
            scenario, TASKS, ServerMode.COMPLETE, weights=weights
        )
        counts = arm.extras["server"].selections_per_device()
        results[name] = {
            "energy_j": arm.energy.total_j,
            "jain": jain_index(counts.values()),
            "max_selections": max(counts.values()) if counts else 0,
            "devices_used": len(counts),
        }
    return results


def test_ablation_selector_weights(benchmark, scenario):
    results = run_once(benchmark, run_variants, scenario)
    # The fairness-dominant default spreads selections widely...
    assert results["default"]["jain"] > results["ttl_only"]["jain"]
    assert results["default"]["devices_used"] >= results["ttl_only"]["devices_used"]
    # ...while the greedy TTL selector hammers few devices.
    assert results["ttl_only"]["max_selections"] > results["default"]["max_selections"]
    benchmark.extra_info["variants"] = {
        name: {k: round(v, 3) for k, v in stats.items()}
        for name, stats in results.items()
    }
