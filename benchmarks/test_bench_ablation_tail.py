"""Ablation: tail-timer reset (Basic) vs no-reset (Complete).

Isolates the one mechanism that separates the paper's two variants:
whether an in-tail crowdsensing upload restarts the RRC tail timer.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.config import ServerMode
from repro.experiments.common import ScenarioConfig, TaskParams, run_sense_aid_arm

TASKS = [
    TaskParams(
        area_radius_m=500.0,
        spatial_density=3,
        sampling_period_s=300.0,
        sampling_duration_s=5400.0,
    )
]


def run_pair(scenario: ScenarioConfig):
    basic = run_sense_aid_arm(scenario, TASKS, ServerMode.BASIC)
    complete = run_sense_aid_arm(scenario, TASKS, ServerMode.COMPLETE)
    return basic, complete


def test_ablation_tail_reset(benchmark, scenario):
    basic, complete = run_once(benchmark, run_pair, scenario)
    # Same world, same schedule, same data delivered — Complete's only
    # edge is the unreset tail, and it must never cost more.
    assert basic.data_points == complete.data_points
    assert complete.energy.total_j < basic.energy.total_j
    saving = 1.0 - complete.energy.total_j / basic.energy.total_j
    # The edge is real but bounded: resets only add tail-extension
    # energy, not promotions.
    assert 0.0 < saving < 0.8
    benchmark.extra_info["basic_j"] = round(basic.energy.total_j, 1)
    benchmark.extra_info["complete_j"] = round(complete.energy.total_j, 1)
    benchmark.extra_info["complete_vs_basic_saving_pct"] = round(saving * 100, 1)
