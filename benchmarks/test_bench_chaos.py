"""Benchmark: chaos suite — bursty loss vs. retry + idempotency.

Runs the same crowdsensing workload through a Gilbert–Elliott bursty
network with message duplication, with and without the client retry
policy, and checks the three properties the chaos layer promises:

1. retries strictly improve request completeness under bursty loss;
2. the server's idempotency keys keep the application data stream free
   of duplicate points even though the network (and retransmissions)
   deliver duplicates;
3. the whole suite is bit-identical across two same-seed runs
   (structured-event-log signatures match).
"""

from __future__ import annotations

from benchmarks.conftest import run_once, write_artifact
from repro.cellular.enodeb import ENodeB, TowerRegistry
from repro.cellular.network import CellularNetwork
from repro.clientlib import SenseAidClient
from repro.core.config import RetryPolicy, SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer
from repro.core.tasks import TaskSpec
from repro.devices.device import SimDevice
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point
from repro.environment.mobility import StaticMobility
from repro.faults import FaultInjector, GilbertElliott, reset_global_ids
from repro.sim.engine import Simulator
from repro.sim.simlog import structured_log

CENTER = Point(500.0, 500.0)
SEED = 11

RETRY = RetryPolicy(
    max_attempts=6,
    ack_timeout_s=20.0,
    backoff_base_s=15.0,
    backoff_multiplier=2.0,
    jitter_fraction=0.2,
    tail_wait_max_s=30.0,
)


def run_chaos(with_retry: bool, seed: int = SEED):
    """One full run through the bursty network; returns the scorecard."""
    reset_global_ids()
    sim = Simulator(seed=seed)
    registry = TowerRegistry([ENodeB("t0", CENTER, coverage_radius_m=5000.0)])
    network = CellularNetwork(sim)
    config = SenseAidConfig(
        mode=ServerMode.COMPLETE,
        deadline_grace_s=240.0,
    )
    server = SenseAidServer(sim, registry, network, config)
    injector = FaultInjector(
        sim,
        network,
        registry,
        server=server,
        loss_model=GilbertElliott(
            p_good_to_bad=0.08, p_bad_to_good=0.25, loss_bad=1.0
        ),
        duplicate_probability=0.2,
        duplicate_lag_s=(0.0, 2.0),
    )
    clients = []
    for i in range(8):
        device = SimDevice(sim, f"d{i}", mobility=StaticMobility(CENTER))
        client = SenseAidClient(
            sim,
            device,
            server,
            network,
            retry_policy=RETRY if with_retry else None,
        )
        client.register()
        injector.adopt_client(client)
        clients.append(client)
    delivered = []
    server.submit_task(
        TaskSpec(
            sensor_type=SensorType.BAROMETER,
            center=CENTER,
            area_radius_m=1000.0,
            spatial_density=2,
            sampling_period_s=600.0,
            sampling_duration_s=6000.0,
        ),
        delivered.append,
    )
    sim.run(until=7000.0)
    server.shutdown()
    issued = server.stats.requests_issued
    keys = [(p.request_id, p.device_hash) for p in delivered]
    return {
        "completeness": server.stats.requests_satisfied / issued if issued else 1.0,
        "data_points": len(delivered),
        "app_level_duplicates": len(keys) - len(set(keys)),
        "server_duplicates_discarded": server.stats.duplicate_uploads,
        "network_drops": injector.stats.losses_injected,
        "network_duplicates": injector.stats.duplicates_injected,
        "retries": sum(c.stats.uploads_retried for c in clients),
        "energy_j": round(
            sum(c.device.crowdsensing_energy_j() for c in clients), 6
        ),
        "signature": structured_log(sim).signature(),
    }


def run_suite():
    baseline = run_chaos(with_retry=False)
    hardened = run_chaos(with_retry=True)
    replay = run_chaos(with_retry=True)
    return {"baseline": baseline, "hardened": hardened, "replay": replay}


def test_bench_chaos(benchmark):
    results = run_once(benchmark, run_suite)
    baseline, hardened, replay = (
        results["baseline"],
        results["hardened"],
        results["replay"],
    )
    benchmark.extra_info.update(results)
    write_artifact("BENCH_chaos", results)

    # The chaos actually bit: bursts dropped messages in both arms.
    assert baseline["network_drops"] > 0
    assert hardened["network_drops"] > 0
    assert hardened["retries"] > 0

    # 1. Retry + idempotency strictly improves completeness.
    assert hardened["completeness"] > baseline["completeness"]

    # 2. No duplicate data points ever reach the application, even
    #    though the network duplicated messages and clients retried;
    #    the dedup work shows up in the server's discard counter.
    assert baseline["app_level_duplicates"] == 0
    assert hardened["app_level_duplicates"] == 0
    assert hardened["network_duplicates"] > 0
    assert hardened["server_duplicates_discarded"] > 0

    # 3. Bit-identical replay: same seed, same scenario, same log.
    assert replay["signature"] == hardened["signature"]
    assert replay == hardened
