"""Benchmark: crash–recovery suite — WAL durability under repeated
server crashes.

Runs one crowdsensing campaign through a lossy, duplicating network
while the Sense-Aid server is crashed and cold-restarted at five
deterministic points, and checks the durability contract end to end:

1. at every crash point, recovery (checkpoint + WAL replay) reaches a
   durable state bit-identical to the pre-crash one — zero invariant
   violations (no lost/double-counted uploads, no resurrected burned
   idempotency keys, exact fairness counters, epoch advanced by one);
2. after every restart the clients detect the epoch change and
   re-establish their sessions (epoch resync) instead of trusting
   stale assignments, and collection resumes;
3. the application data stream stays duplicate-free across all
   incarnations;
4. the whole suite is bit-identical across two same-seed runs.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, write_artifact
from repro.cellular.enodeb import ENodeB, TowerRegistry
from repro.cellular.network import CellularNetwork
from repro.clientlib import SenseAidClient
from repro.core.config import RetryPolicy, SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer
from repro.core.tasks import TaskSpec
from repro.core.wal import DurableLog, check_recovery_invariants, durable_state
from repro.devices.device import SimDevice
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point
from repro.environment.mobility import StaticMobility
from repro.faults import FaultInjector, GilbertElliott, reset_global_ids
from repro.sim.engine import Simulator
from repro.sim.simlog import structured_log

CENTER = Point(500.0, 500.0)
SEED = 29
N_DEVICES = 8
N_ROUNDS = 10  # sampling_duration_s / sampling_period_s

#: Deterministic (crash, restart) instants.  They straddle sampling
#: rounds and upload-flush windows so every recovery path is exercised
#: mid-flight; the second cycle additionally compacts the WAL first.
CRASH_CYCLES = (
    (350.0, 390.0),
    (800.0, 840.0),
    (1450.0, 1490.0),
    (2100.0, 2140.0),
    (2750.0, 2790.0),
)

RETRY = RetryPolicy(
    max_attempts=6,
    ack_timeout_s=20.0,
    backoff_base_s=15.0,
    backoff_multiplier=2.0,
    jitter_fraction=0.2,
    tail_wait_max_s=30.0,
)


def run_crash_recovery(wal_dir: str, seed: int = SEED):
    """One full campaign with five crash/restart cycles; returns the
    scorecard (invariant violations included verbatim)."""
    reset_global_ids()
    sim = Simulator(seed=seed)
    registry = TowerRegistry([ENodeB("t0", CENTER, coverage_radius_m=5000.0)])
    network = CellularNetwork(sim)
    config = SenseAidConfig(mode=ServerMode.COMPLETE, deadline_grace_s=240.0)
    server = SenseAidServer(
        sim, registry, network, config, wal=DurableLog(wal_dir)
    )
    injector = FaultInjector(
        sim,
        network,
        registry,
        server=server,
        loss_model=GilbertElliott(
            p_good_to_bad=0.12, p_bad_to_good=0.3, loss_bad=1.0
        ),
        duplicate_probability=0.15,
        duplicate_lag_s=(0.0, 2.0),
    )
    clients = []
    for i in range(N_DEVICES):
        device = SimDevice(sim, f"d{i}", mobility=StaticMobility(CENTER))
        client = SenseAidClient(
            sim, device, server, network, retry_policy=RETRY
        )
        client.register()
        injector.adopt_client(client)
        clients.append(client)
    delivered = []
    server.submit_task(
        TaskSpec(
            sensor_type=SensorType.BAROMETER,
            center=CENTER,
            area_radius_m=1000.0,
            spatial_density=2,
            sampling_period_s=600.0,
            sampling_duration_s=6000.0,
        ),
        delivered.append,
    )
    violations = []
    resyncs_per_cycle = []
    for cycle, (crash_at, restart_at) in enumerate(CRASH_CYCLES):
        sim.run(until=crash_at)
        if cycle == 1:
            # Exercise compaction: recovery must work identically from
            # a freshly-truncated log.
            server._wal.checkpoint(server)
        server.crash()
        sim.run(until=restart_at)
        pre = durable_state(server)
        server.restart()
        post = durable_state(server)
        violations.extend(
            f"cycle {cycle} @t={restart_at}: {v}"
            for v in check_recovery_invariants(pre, post)
        )
        resyncs_per_cycle.append(sum(c.stats.epoch_resyncs for c in clients))
    sim.run(until=7000.0)
    server.shutdown()
    keys = [(p.request_id, p.device_hash) for p in delivered]
    return {
        "violations": violations,
        "crash_cycles": len(CRASH_CYCLES),
        "final_epoch": server.epoch,
        "completeness": server.stats.requests_satisfied / N_ROUNDS,
        "data_points": len(delivered),
        "app_level_duplicates": len(keys) - len(set(keys)),
        "server_duplicates_discarded": server.stats.duplicate_uploads,
        "stale_epoch_rejections": server.stats.stale_epoch_uploads,
        "burned_keys": len(server._seen_upload_ids),
        "epoch_resyncs": sum(c.stats.epoch_resyncs for c in clients),
        "resyncs_per_cycle": resyncs_per_cycle,
        "network_drops": injector.stats.losses_injected,
        "network_duplicates": injector.stats.duplicates_injected,
        "retries": sum(c.stats.uploads_retried for c in clients),
        "energy_j": round(
            sum(c.device.crowdsensing_energy_j() for c in clients), 6
        ),
        "signature": structured_log(sim).signature(),
    }


def run_suite(wal_root: str):
    first = run_crash_recovery(str(wal_root) + "/a")
    replay = run_crash_recovery(str(wal_root) + "/b")
    return {"first": first, "replay": replay}


def test_bench_crash_recovery(benchmark, tmp_path):
    results = run_once(benchmark, run_suite, str(tmp_path))
    first, replay = results["first"], results["replay"]
    benchmark.extra_info.update(results)
    write_artifact("BENCH_crash_recovery", results)

    # 1. Zero durable-state divergence across all five crash points.
    assert first["violations"] == []
    assert first["final_epoch"] == len(CRASH_CYCLES) + 1

    # 2. Every restart drove the fleet through epoch resync, and the
    #    campaign still completed the bulk of its rounds.
    assert first["epoch_resyncs"] >= len(CRASH_CYCLES)
    assert all(n > 0 for n in first["resyncs_per_cycle"])
    assert first["completeness"] >= 0.5
    assert first["data_points"] > 0

    # 3. Idempotency held across incarnations: the application stream
    #    is duplicate-free even though the network duplicated and the
    #    server restarted five times.
    assert first["app_level_duplicates"] == 0
    assert first["network_duplicates"] > 0
    assert first["network_drops"] > 0
    assert first["retries"] > 0

    # 4. Bit-identical replay: same seed, same crash schedule, same
    #    structured log (the WAL directory differs; the behaviour must
    #    not).
    assert replay["signature"] == first["signature"]
    assert replay == first
