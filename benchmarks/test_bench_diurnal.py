"""Benchmark: the diurnal extension (savings across a 24 h usage cycle)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import diurnal


def test_bench_diurnal_cycle(benchmark):
    rows = run_once(benchmark, diurnal.run, 7)
    assert len(rows) == 6
    for row in rows:
        assert row.sense_aid_j < row.periodic_j
    night = rows[0].saving_pct
    best_waking = max(r.saving_pct for r in rows[2:])
    assert best_waking > night
    benchmark.extra_info["saving_pct_by_window"] = {
        r.window_label: round(r.saving_pct, 1) for r in rows
    }
