"""Benchmark: kill-a-shard drill for the sharded control plane.

Runs one crowdsensing campaign across a 3-shard fleet and hard-kills
the busiest shard's incumbent mid-campaign (via the fault plan), then
checks the self-healing contract end to end:

1. the phi-accrual detector notices the silence and a standby takes
   over the ring range within a bounded number of heartbeat intervals;
2. zero acknowledged uploads are lost — after anti-entropy repair the
   cross-shard diff is empty and every upload a client holds an ack
   for is burned at its current home shard;
3. selection re-converges: the successor's post-repair selection
   events are bit-identical to the same instants of a no-crash control
   run (WAL replay restored the fairness counters exactly), and the
   untouched shards never diverge at all;
4. a split-brain variant (partition instead of crash) produces real
   divergence through the fenced zombie, and repair reconciles it;
5. the whole drill is bit-identical across two same-seed runs.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, write_artifact
from repro.cellular.network import CellularNetwork
from repro.clientlib import SenseAidClient
from repro.core.config import (
    RetryPolicy,
    SelectorWeights,
    SenseAidConfig,
    ServerMode,
)
from repro.core.sharding import ShardSpec, ShardedSenseAid
from repro.core.tasks import TaskSpec
from repro.devices.device import SimDevice
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point
from repro.environment.mobility import StaticMobility
from repro.faults import FaultInjector, FaultPlan, reset_global_ids
from repro.sim.engine import Simulator
from repro.sim.simlog import structured_log

SEED = 17
N_DEVICES = 12
CENTER = Point(1500.0, 500.0)
SITES = (
    ("s1", Point(500.0, 500.0)),
    ("s2", Point(1500.0, 500.0)),
    ("s3", Point(2500.0, 500.0)),
)
HEARTBEAT_S = 5.0
PHI_THRESHOLD = 8.0
#: Crash instant: mid-way through a sampling interval (instants are at
#: multiples of 300 s), so failover must complete before the next one.
CRASH_AT = 1040.0
END_TIME = 3000.0

RETRY = RetryPolicy(
    max_attempts=6,
    ack_timeout_s=20.0,
    backoff_base_s=15.0,
    backoff_multiplier=2.0,
    jitter_fraction=0.0,
    tail_wait_max_s=30.0,
)

#: Fairness-dominant weights: selection depends only on the durable
#: times-selected counters, so exact WAL replay implies exact
#: re-convergence of the selector.
FAIR = SelectorWeights(alpha=0.0, beta=1.0, gamma=0.0, phi=0.0)


def _selection_events(server, *, since=0.0, until=float("inf")):
    """Selection decisions as comparable tuples."""
    return [
        (round(e.time, 6), e.request_id, tuple(e.selected))
        for e in server.selection_log
        if since <= e.time < until
    ]


def _build(wal_root: str, seed: int):
    reset_global_ids()
    sim = Simulator(seed=seed)
    network = CellularNetwork(sim)
    fleet = ShardedSenseAid(
        sim,
        network,
        [ShardSpec(sid, site) for sid, site in SITES],
        SenseAidConfig(mode=ServerMode.COMPLETE, weights=FAIR),
        wal_root=wal_root,
        heartbeat_period_s=HEARTBEAT_S,
        phi_threshold=PHI_THRESHOLD,
        min_std_s=HEARTBEAT_S / 10.0,
        redirect_latency_s=0.05,
    )
    clients = {}
    for i in range(N_DEVICES):
        device_id = f"d{i:02d}"
        device = SimDevice(sim, device_id, mobility=StaticMobility(CENTER))
        client = SenseAidClient(
            sim,
            device,
            fleet.instance(fleet.shard_ids()[0]),
            network,
            retry_policy=RETRY,
        )
        fleet.register(client)
        clients[device_id] = client
    data = []
    handle = fleet.submit_task(
        TaskSpec(
            sensor_type=SensorType.BAROMETER,
            center=CENTER,
            area_radius_m=2000.0,
            spatial_density=3,
            sampling_period_s=300.0,
            start_time=0.0,
            end_time=END_TIME,
        ),
        data.append,
    )
    return sim, network, fleet, clients, data, handle


def _zero_loss_audit(fleet, clients):
    """(total acked uploads, how many are missing at their owner)."""
    acked = 0
    lost = 0
    for device_id, client in clients.items():
        owner = fleet.instance(fleet.home_shard(device_id))
        for upload_id in client.acked_uploads:
            acked += 1
            if upload_id not in owner._seen_upload_ids:
                lost += 1
    return acked, lost


def run_control(wal_root: str, seed: int = SEED):
    """The no-fault arm: same fleet, same campaign, nobody dies."""
    sim, network, fleet, clients, data, handle = _build(wal_root, seed)
    sim.run(until=END_TIME + 600.0)
    selections = {
        sid: _selection_events(fleet.instance(sid)) for sid in fleet.shard_ids()
    }
    result = {
        "data_points": len(data),
        "degraded_points": handle.degraded_points,
        "failovers": fleet.failovers,
        "selections": selections,
        "signature": structured_log(sim).signature(),
    }
    fleet.shutdown()
    return result


def run_crash_drill(wal_root: str, seed: int = SEED):
    """The chaos arm: the busiest shard is hard-killed at CRASH_AT."""
    sim, network, fleet, clients, data, handle = _build(wal_root, seed)
    victim = max(handle.subtasks, key=lambda sid: handle.allocations[sid])
    plan = FaultPlan().shard_crash(CRASH_AT, victim)
    injector = FaultInjector(sim, network, fleet=fleet, plan=plan)
    sim.run(until=CRASH_AT)
    old = fleet.instance(victim)
    pre_crash = {
        sid: _selection_events(fleet.instance(sid), until=CRASH_AT)
        for sid in fleet.shard_ids()
    }
    sim.run(until=END_TIME + 600.0)
    record = fleet.failover_log[0] if fleet.failover_log else None
    diff_before_repair = fleet.anti_entropy_diff()
    repair = fleet.repair()
    acked, lost = _zero_loss_audit(fleet, clients)
    post_repair = {
        sid: _selection_events(fleet.instance(sid), since=record.completed_at)
        for sid in fleet.shard_ids()
    }
    result = {
        "victim": victim,
        "failovers": fleet.failovers,
        "detection_intervals": record.detection_intervals if record else None,
        "recovery_s": (record.completed_at - CRASH_AT) if record else None,
        "old_epoch": record.old_epoch if record else None,
        "new_epoch": record.new_epoch if record else None,
        "data_points": len(data),
        "degraded_points": handle.degraded_points,
        "shard_redirects": sum(
            c.stats.shard_redirects for c in clients.values()
        ),
        "stale_assignments_dropped": sum(
            c.stats.stale_assignments_dropped for c in clients.values()
        ),
        "acked_uploads": acked,
        "lost_acked_uploads": lost,
        "divergent_keys_before_repair": sum(
            len(keys) for keys in diff_before_repair.values()
        ),
        "anti_entropy_clean": repair["clean"],
        "repaired_keys": repair["repaired_keys"],
        "pre_crash_selections": pre_crash,
        "post_repair_selections": post_repair,
        "old_incumbent_epoch": old.epoch,
        "shard_crashes_injected": injector.stats.shard_crashes,
        "signature": structured_log(sim).signature(),
    }
    fleet.shutdown()
    return result


def run_partition_drill(wal_root: str, seed: int = SEED):
    """Split brain: the busiest shard is partitioned, not killed, and
    clients linger on the fenced zombie long enough to diverge."""
    sim, network, fleet, clients, data, handle = _build(wal_root, seed)
    fleet._redirect_latency = 310.0  # one full sampling interval
    victim = max(handle.subtasks, key=lambda sid: handle.allocations[sid])
    plan = FaultPlan().shard_partition(
        CRASH_AT, victim, heal_after=600.0
    )
    injector = FaultInjector(sim, network, fleet=fleet, plan=plan)
    sim.run(until=END_TIME + 600.0)
    diff_before = fleet.anti_entropy_diff()
    repair = fleet.repair()
    acked, lost = _zero_loss_audit(fleet, clients)
    result = {
        "victim": victim,
        "failovers": fleet.failovers,
        "was_partitioned": fleet.failover_log[0].was_partitioned,
        "writes_fenced": fleet.writes_fenced(),
        "divergent_keys_before_repair": sum(
            len(keys) for keys in diff_before.values()
        ),
        "repaired_keys": repair["repaired_keys"],
        "anti_entropy_clean": repair["clean"],
        "acked_uploads": acked,
        "lost_acked_uploads": lost,
        "data_points": len(data),
        "stats": {
            "shard_partitions": injector.stats.shard_partitions,
            "shard_heals": injector.stats.shard_heals,
        },
    }
    fleet.shutdown()
    return result


def _match(a, b):
    """Per-shard selection streams compared for bit-identity."""
    return {sid: a[sid] == b[sid] for sid in a}


def run_suite(wal_root: str):
    control = run_control(f"{wal_root}/control")
    crash = run_crash_drill(f"{wal_root}/crash")
    replay = run_crash_drill(f"{wal_root}/replay")
    partition = run_partition_drill(f"{wal_root}/partition")

    victim = crash["victim"]
    control_pre = {
        sid: [e for e in events if e[0] < CRASH_AT]
        for sid, events in control["selections"].items()
    }
    completed_at = CRASH_AT + crash["recovery_s"]
    control_post = {
        sid: [e for e in events if e[0] >= completed_at]
        for sid, events in control["selections"].items()
    }
    convergence = {
        "pre_crash": _match(crash["pre_crash_selections"], control_pre),
        "post_repair": _match(crash["post_repair_selections"], control_post),
    }
    return {
        "scenario": {
            "shards": len(SITES),
            "devices": N_DEVICES,
            "heartbeat_s": HEARTBEAT_S,
            "phi_threshold": PHI_THRESHOLD,
            "crash_at": CRASH_AT,
            "seed": SEED,
        },
        "control": {
            k: control[k]
            for k in ("data_points", "degraded_points", "failovers")
        },
        "crash": {
            k: v
            for k, v in crash.items()
            if k not in ("pre_crash_selections", "post_repair_selections")
        },
        "partition": partition,
        "convergence": convergence,
        "replay_identical": replay == crash,
        "gates": {
            "max_detection_intervals": 3.0,
            "max_recovery_s": 3.0 * HEARTBEAT_S,
            "zero_lost_acked_uploads": 0,
        },
    }


def test_bench_failover(benchmark, tmp_path):
    results = run_once(benchmark, run_suite, str(tmp_path))
    benchmark.extra_info.update(results)
    write_artifact("BENCH_failover", results)

    crash, partition = results["crash"], results["partition"]
    gates = results["gates"]

    # 1. Detection and takeover within the bounded window.
    assert crash["failovers"] == 1
    assert crash["detection_intervals"] <= gates["max_detection_intervals"]
    assert crash["recovery_s"] <= gates["max_recovery_s"]
    assert crash["new_epoch"] == crash["old_epoch"] + 1
    assert crash["shard_redirects"] > 0

    # 2. Zero acknowledged uploads lost, in both drill variants.
    assert crash["acked_uploads"] > 0
    assert crash["lost_acked_uploads"] == gates["zero_lost_acked_uploads"]
    assert crash["anti_entropy_clean"]
    assert partition["lost_acked_uploads"] == 0
    assert partition["anti_entropy_clean"]

    # 3. Selection re-convergence: bit-identical to the no-crash
    #    control before the crash and after the repair, on every shard
    #    (the victim via WAL replay, the others by never diverging).
    assert all(results["convergence"]["pre_crash"].values())
    assert all(results["convergence"]["post_repair"].values())

    # 4. The split brain really happened and was really reconciled:
    #    the fenced zombie absorbed writes and produced divergence the
    #    repair then erased.
    assert partition["was_partitioned"]
    assert partition["writes_fenced"] > 0
    assert partition["divergent_keys_before_repair"] > 0
    assert partition["repaired_keys"] > 0

    # 5. The drill is deterministic: same seed, same fault plan, same
    #    scorecard (different WAL directory, identical behaviour).
    assert results["replay_identical"]

    # The campaign survived: the degraded window was bounded and the
    #    fleet still collected the bulk of the control run's data.
    assert crash["data_points"] >= 0.8 * results["control"]["data_points"]
