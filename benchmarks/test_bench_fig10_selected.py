"""Benchmark: regenerate Figure 10 (selected devices vs sampling period)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments import exp2_period


def test_fig10_selected_devices(benchmark, scenario):
    result = run_once(benchmark, exp2_period.run, scenario)
    for point in result.points:
        counts = point.selected_counts()
        # Paper: Sense-Aid selects exactly the spatial density (3),
        # irrespective of the sampling period; the baselines use every
        # qualified device.
        assert counts["sense-aid"] == pytest.approx(exp2_period.SPATIAL_DENSITY)
        assert counts["periodic"] > exp2_period.SPATIAL_DENSITY
        assert counts["pcs"] > exp2_period.SPATIAL_DENSITY
    benchmark.extra_info["selected_by_period"] = {
        f"{int(p.period_s / 60)}min": {
            k: round(v, 1) for k, v in p.selected_counts().items()
        }
        for p in result.points
    }
