"""Benchmark: regenerate Figure 11 (energy/device vs sampling period)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.devices.battery import TWO_PERCENT_BUDGET_J
from repro.experiments import exp2_period


def test_fig11_energy_per_device(benchmark, scenario):
    result = run_once(benchmark, exp2_period.run, scenario)
    # Paper shapes: per-device energy falls as the period grows; both
    # Sense-Aid variants sit below PCS and Periodic at every period;
    # at the 1-minute period baseline users blow the 2% budget.
    for name in ("periodic", "pcs", "basic", "complete"):
        energies = [p.energy_per_device()[name] for p in result.points]
        assert energies[0] > energies[-1]
    for point in result.points:
        energy = point.energy_per_device()
        assert energy["complete"] <= energy["basic"]
        assert energy["basic"] < energy["pcs"]
    one_minute = result.points[0]
    assert one_minute.periodic.energy.max_per_device_j > TWO_PERCENT_BUDGET_J
    assert one_minute.complete.energy.max_per_device_j < TWO_PERCENT_BUDGET_J
    benchmark.extra_info["energy_per_device_j"] = {
        f"{int(p.period_s / 60)}min": {
            k: round(v, 1) for k, v in p.energy_per_device().items()
        }
        for p in result.points
    }
