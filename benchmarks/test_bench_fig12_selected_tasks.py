"""Benchmark: regenerate Figure 12 (selected devices vs concurrent tasks)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import exp3_tasks


def test_fig12_selected_devices_vs_tasks(benchmark, scenario):
    result = run_once(benchmark, exp3_tasks.run, scenario)
    for point in result.points:
        counts = point.selected_counts()
        # Paper: Periodic and PCS choose all qualified devices, while
        # Sense-Aid orchestrates the required number from the limited
        # pool (per-request it still meets the spatial density).
        assert counts["sense-aid"] >= exp3_tasks.SPATIAL_DENSITY - 0.01
        assert counts["periodic"] > counts["sense-aid"]
        assert counts["pcs"] > counts["sense-aid"]
    benchmark.extra_info["selected_by_task_count"] = {
        str(p.task_count): {
            k: round(v, 1) for k, v in p.selected_counts().items()
        }
        for p in result.points
    }
