"""Benchmark: regenerate Figure 13 (energy/device vs concurrent tasks)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import exp3_tasks


def test_fig13_energy_vs_task_count(benchmark, scenario):
    result = run_once(benchmark, exp3_tasks.run, scenario)
    # Paper shapes: per-device energy rises with task count for every
    # framework; Sense-Aid stays cheapest; and Sense-Aid's *relative*
    # saving over PCS grows with concurrency (assignment batching).
    for name in ("periodic", "pcs", "basic", "complete"):
        energies = [p.energy_per_device()[name] for p in result.points]
        assert energies[-1] > energies[0]
    for point in result.points:
        energy = point.energy_per_device()
        assert energy["complete"] <= energy["basic"] < energy["pcs"]
    savings = [p.savings_row()["complete_vs_pcs"] for p in result.points]
    assert savings[-1] > savings[0]
    benchmark.extra_info["energy_per_device_j"] = {
        str(p.task_count): {
            k: round(v, 1) for k, v in p.energy_per_device().items()
        }
        for p in result.points
    }
    benchmark.extra_info["complete_vs_pcs_savings_pct"] = [
        round(s, 1) for s in savings
    ]
