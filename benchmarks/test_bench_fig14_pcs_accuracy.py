"""Benchmark: regenerate Figure 14 (PCS prediction-accuracy sweep)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import pcs_accuracy


def test_fig14_pcs_accuracy_sweep(benchmark, scenario):
    result = run_once(benchmark, pcs_accuracy.run, scenario)
    energies = [p.pcs_energy_per_device_j for p in result.points]
    # Paper shapes: PCS energy falls monotonically (modulo noise) with
    # accuracy; at the realistic 40% accuracy PCS costs well over
    # Sense-Aid; only near-ideal prediction lets PCS undercut both
    # variants.
    assert energies[0] > energies[-1]
    at_40 = result.points[0]
    assert at_40.accuracy == 0.40
    assert at_40.ratio_vs_basic > 1.3
    assert at_40.ratio_vs_complete > 1.5
    ideal = result.points[-1]
    assert ideal.accuracy == 1.0
    assert ideal.ratio_vs_basic < 1.0
    assert ideal.ratio_vs_complete < 1.0
    benchmark.extra_info["pcs_j_per_device"] = {
        f"{p.accuracy:.0%}": round(p.pcs_energy_per_device_j, 1)
        for p in result.points
    }
    benchmark.extra_info["sense_aid_j_per_device"] = {
        "basic": round(result.basic_energy_per_device_j, 1),
        "complete": round(result.complete_energy_per_device_j, 1),
    }
    benchmark.extra_info["crossover_accuracy"] = {
        "vs_basic": result.crossover_accuracy(against="basic"),
        "vs_complete": result.crossover_accuracy(against="complete"),
    }
