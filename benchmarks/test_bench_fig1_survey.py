"""Benchmark: regenerate Figure 1 (the energy-tolerance survey)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import survey


def test_fig1_survey(benchmark):
    buckets = run_once(benchmark, survey.run)
    assert sum(b.respondents for b in buckets) == survey.RESPONDENTS
    by_label = {b.label: b for b in buckets}
    assert by_label["up to 2%"].fraction == 0.414
    assert by_label["over 10%"].respondents == 0
    benchmark.extra_info["buckets"] = {
        b.label: b.respondents for b in buckets
    }
    benchmark.extra_info["majority_le_2pct"] = survey.majority_tolerance_pct()
