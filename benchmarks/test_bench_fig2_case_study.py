"""Benchmark: regenerate Figure 2 (Pressurenet / WeatherSignal power)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import power_case_study


def test_fig2_power_case_study(benchmark):
    rows = run_once(benchmark, power_case_study.run)
    assert len(rows) == 8  # 2 apps × 2 frequencies × 2 radios
    # Paper shapes: every bar over the 2% budget; LTE > 3G;
    # WeatherSignal > Pressurenet.
    assert all(r.over_2pct_budget for r in rows)
    by_key = {(r.app, r.update_period_label, r.radio): r.energy_j for r in rows}
    for app in ("Pressurenet", "WeatherSignal"):
        for period in ("5 min", "10 min"):
            assert by_key[(app, period, "LTE")] > by_key[(app, period, "3G")]
    for period in ("5 min", "10 min"):
        for radio in ("3G", "LTE"):
            assert (
                by_key[("WeatherSignal", period, radio)]
                > by_key[("Pressurenet", period, radio)]
            )
    benchmark.extra_info["battery_pct"] = {
        f"{r.app}/{r.update_period_label}/{r.radio}": round(r.battery_pct, 2)
        for r in rows
    }
