"""Benchmark: regenerate Figure 6 (radio-tail visualisation)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments import tailtime


def test_fig6_tail_time(benchmark):
    result = run_once(benchmark, tailtime.run, reset_tail=False)
    # Paper: regular burst at 591 s, radio idles around 602.5 s — the
    # crowdsensing upload at 592.5 s does not extend the connection.
    assert result.idle_at == pytest.approx(602.9, abs=1.0)
    assert result.connected_stretch_s == pytest.approx(11.9, abs=1.0)
    assert result.crowdsensing_energy_j < 0.1
    benchmark.extra_info["idle_at_s"] = round(result.idle_at, 2)
    benchmark.extra_info["connected_stretch_s"] = round(
        result.connected_stretch_s, 2
    )
    benchmark.extra_info["upload_energy_j"] = round(
        result.crowdsensing_energy_j, 4
    )
