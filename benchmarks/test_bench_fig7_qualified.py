"""Benchmark: regenerate Figure 7 (qualified devices vs area radius)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import exp1_radius


def test_fig7_qualified_devices(benchmark, scenario):
    result = run_once(benchmark, exp1_radius.run, scenario)
    rows = result.fig7_rows()
    counts = [qualified for _, qualified in rows]
    # Paper shape: qualified devices grow with the radius, reaching
    # around 11 of the 20 participants at 1000 m.
    assert counts == sorted(counts)
    assert counts[0] < counts[-1]
    assert 8.0 <= counts[-1] <= 16.0
    benchmark.extra_info["qualified_by_radius"] = {
        f"{int(radius)}m": round(q, 1) for radius, q in rows
    }
