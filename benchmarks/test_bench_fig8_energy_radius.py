"""Benchmark: regenerate Figure 8 (total energy vs area radius)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import exp1_radius


def test_fig8_total_energy_vs_radius(benchmark, scenario):
    result = run_once(benchmark, exp1_radius.run, scenario)
    # Paper shapes: SA-Complete <= SA-Basic << PCS at every radius, and
    # Sense-Aid's relative saving grows with the radius.
    for point in result.points:
        assert point.complete.energy.total_j <= point.basic.energy.total_j
        assert point.basic.energy.total_j < point.pcs.energy.total_j
        assert point.pcs.energy.total_j < point.periodic.energy.total_j
    savings = [p.savings_row()["complete_vs_pcs"] for p in result.points]
    assert savings[-1] > savings[0]
    benchmark.extra_info["total_energy_j"] = {
        f"{int(p.radius_m)}m": {
            "pcs": round(p.pcs.energy.total_j, 1),
            "basic": round(p.basic.energy.total_j, 1),
            "complete": round(p.complete.energy.total_j, 1),
        }
        for p in result.points
    }
    benchmark.extra_info["complete_vs_pcs_savings_pct"] = [
        round(s, 1) for s in savings
    ]
