"""Benchmark: regenerate Figure 9 (fair device selection timeline)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.fairness import ideal_spread, jain_index
from repro.experiments import exp1_radius


def test_fig9_selection_fairness(benchmark, scenario):
    result = run_once(
        benchmark, exp1_radius.run, scenario, radii_m=(1000.0,)
    )
    # Paper setup: radius 1000 m, sampling every 10 min for 90 min ->
    # the selector ran 9 times, 2 devices each.
    assert len(result.fairness_log) == 9
    assert all(len(e.selected) == 2 for e in result.fairness_log)
    counts = result.fairness_counts
    total = sum(counts.values())
    assert total == 18
    # Paper: "Each device is selected either once or twice, showing
    # that the selection is fair."
    lo, hi = ideal_spread(total, len(counts))
    assert min(counts.values()) >= lo
    assert max(counts.values()) <= hi
    benchmark.extra_info["selection_rounds"] = [
        {"t_min": round(e.time / 60.0, 1), "selected": list(e.selected)}
        for e in result.fairness_log
    ]
    benchmark.extra_info["jain_index"] = round(jain_index(counts.values()), 3)
