"""Benchmark: the "not harming crowdsensing data" prerequisite.

Every energy number in Table 2 is conditional on the frameworks
delivering the data the application asked for.  This benchmark runs
the representative campaign and reports completeness and delivery
latency next to the energy numbers.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.quality import baseline_quality, delivery_latency, sense_aid_quality
from repro.core.config import ServerMode
from repro.experiments.common import (
    ScenarioConfig,
    TaskParams,
    run_pcs_arm,
    run_periodic_arm,
    run_sense_aid_arm,
)

TASKS = [
    TaskParams(
        area_radius_m=1000.0,
        spatial_density=2,
        sampling_period_s=600.0,
        sampling_duration_s=5400.0,
    )
]


def run_all(scenario: ScenarioConfig):
    return {
        "sense_aid": run_sense_aid_arm(scenario, TASKS, ServerMode.COMPLETE),
        "periodic": run_periodic_arm(scenario, TASKS),
        "pcs": run_pcs_arm(scenario, TASKS),
    }


def test_bench_data_quality(benchmark, scenario):
    arms = run_once(benchmark, run_all, scenario)
    sense_aid = sense_aid_quality(arms["sense_aid"].extras["server"])
    periodic = baseline_quality(arms["periodic"].extras["framework"])
    pcs = baseline_quality(arms["pcs"].extras["framework"])
    # All frameworks deliver; Sense-Aid's saving is not bought with
    # data loss.
    assert sense_aid.completeness >= 0.85
    assert sense_aid.completeness >= min(periodic.completeness, pcs.completeness) - 0.1
    latency = delivery_latency(arms["sense_aid"].extras["cas"].readings)
    assert latency.max_s <= TASKS[0].sampling_period_s + 10.0
    benchmark.extra_info["completeness"] = {
        "sense_aid": round(sense_aid.completeness, 3),
        "periodic": round(periodic.completeness, 3),
        "pcs": round(pcs.completeness, 3),
    }
    benchmark.extra_info["sense_aid_latency_s"] = {
        "mean": round(latency.mean_s, 1),
        "p95": round(latency.p95_s, 1),
        "max": round(latency.max_s, 1),
    }
    benchmark.extra_info["energy_j"] = {
        name: round(arm.energy.total_j, 1) for name, arm in arms.items()
    }
