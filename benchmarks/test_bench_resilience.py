"""Benchmark: data-collection resilience under network loss (§8).

Sweeps core-network loss and measures request completeness with and
without deadline reassignment — quantifying what the failure-handling
extension buys and what it costs in extra assignments.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.cellular.enodeb import ENodeB, TowerRegistry
from repro.cellular.network import CellularNetwork
from repro.clientlib import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer
from repro.core.tasks import TaskSpec
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point
from repro.environment.mobility import StaticMobility
from repro.devices.device import SimDevice
from repro.sim.engine import Simulator

CENTER = Point(500.0, 500.0)
LOSS_RATES = (0.0, 0.2, 0.4, 0.6)


def run_point(loss: float, reassign: bool, seed: int = 5):
    sim = Simulator(seed=seed)
    registry = TowerRegistry([ENodeB("t0", CENTER, coverage_radius_m=5000.0)])
    network = CellularNetwork(sim, loss_probability=loss)
    config = SenseAidConfig(
        mode=ServerMode.COMPLETE,
        deadline_grace_s=240.0,
        reassign_margin_s=120.0 if reassign else None,
    )
    server = SenseAidServer(sim, registry, network, config)
    for i in range(8):
        device = SimDevice(sim, f"d{i}", mobility=StaticMobility(CENTER))
        SenseAidClient(sim, device, server, network).register()
    server.submit_task(
        TaskSpec(
            sensor_type=SensorType.BAROMETER,
            center=CENTER,
            area_radius_m=1000.0,
            spatial_density=2,
            sampling_period_s=600.0,
            sampling_duration_s=6000.0,
        ),
        lambda p: None,
    )
    sim.run(until=6100.0)
    server.shutdown()
    issued = server.stats.requests_issued
    return (
        server.stats.requests_satisfied / issued if issued else 1.0,
        server.stats.reassignments,
    )


def run_sweep():
    results = {}
    for loss in LOSS_RATES:
        plain, _ = run_point(loss, reassign=False)
        recovered, reassignments = run_point(loss, reassign=True)
        results[loss] = {
            "plain": plain,
            "with_reassignment": recovered,
            "reassignments": reassignments,
        }
    return results


def test_bench_resilience_under_loss(benchmark):
    results = run_once(benchmark, run_sweep)
    # Lossless: both perfect, no spurious reassignments.
    assert results[0.0]["plain"] == 1.0
    assert results[0.0]["with_reassignment"] == 1.0
    assert results[0.0]["reassignments"] == 0
    # Moderate loss: reassignment recovers strictly better
    # completeness; at extreme loss the substitutes' uploads are lost
    # too, so the best we demand is "no worse".
    assert results[0.4]["with_reassignment"] > results[0.4]["plain"]
    assert results[0.6]["with_reassignment"] >= results[0.6]["plain"]
    # Completeness without reassignment degrades as loss grows.
    plains = [results[l]["plain"] for l in LOSS_RATES]
    assert plains[0] > plains[-1]
    benchmark.extra_info["completeness_by_loss"] = {
        str(loss): {
            "plain": round(r["plain"], 3),
            "with_reassignment": round(r["with_reassignment"], 3),
            "reassignments": r["reassignments"],
        }
        for loss, r in results.items()
    }
