"""Benchmark: seed-robustness of the representative-case savings."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import robustness


def test_bench_robustness_across_worlds(benchmark):
    stats = run_once(benchmark, robustness.run, tuple(range(7, 13)))
    by_name = {s.comparison: s for s in stats}
    headline = by_name["complete_vs_pcs"]
    # The paper's representative case (93.3% saving of Complete over
    # PCS at radius 1 km) must hold across worlds, not just at seed 7.
    assert headline.mean_pct > 88.0
    assert headline.min_pct > 80.0
    assert headline.std_pct < 8.0
    benchmark.extra_info["savings"] = {
        s.comparison: {
            "mean": round(s.mean_pct, 1),
            "std": round(s.std_pct, 1),
            "min": round(s.min_pct, 1),
            "max": round(s.max_pct, 1),
        }
        for s in stats
    }
