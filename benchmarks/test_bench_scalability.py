"""Scalability benchmark — paper §8 ongoing work.

"In ongoing work, we are looking at scalability of our framework to
large geographic regions."  This benchmark scales the world an order
of magnitude past the user study (200 devices, a 3×3 tower grid,
simultaneous campaigns at all four study sites) and measures the
simulation's event throughput and the server's scheduling outcomes.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.cellular.enodeb import TowerRegistry, grid_towers
from repro.cellular.network import CellularNetwork
from repro.clientlib import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer
from repro.devices.sensors import SensorType
from repro.environment.campus import STUDY_SITES, default_campus
from repro.environment.population import PopulationConfig, build_population
from repro.serverlib import CrowdsensingAppServer
from repro.sim.engine import Simulator

DEVICES = 200
DURATION_S = 3600.0


def run_large_scale():
    sim = Simulator(seed=13)
    campus = default_campus()
    registry = TowerRegistry(
        grid_towers(campus.width_m, campus.height_m, rows=3, cols=3)
    )
    network = CellularNetwork(sim)
    devices = build_population(
        sim, campus, PopulationConfig(size=DEVICES)
    )
    server = SenseAidServer(
        sim, registry, network, SenseAidConfig(mode=ServerMode.COMPLETE)
    )
    for device in devices:
        SenseAidClient(sim, device, server, network).register()
    app = CrowdsensingAppServer(server, "city-scale")
    for site in STUDY_SITES:
        app.task(
            SensorType.BAROMETER,
            campus.site(site).position,
            area_radius_m=800.0,
            spatial_density=5,
            sampling_period_s=300.0,
            sampling_duration_s=DURATION_S,
        )
    sim.run(until=DURATION_S + 60.0)
    server.shutdown()
    return sim, server, devices, app


def test_scalability_200_devices(benchmark):
    sim, server, devices, app = run_once(benchmark, run_large_scale)
    # The server kept up: nearly every request scheduled, with data.
    assert server.stats.requests_issued == 4 * 12
    scheduled_fraction = server.stats.requests_scheduled / server.stats.requests_issued
    assert scheduled_fraction > 0.9
    assert server.stats.data_points > 0.8 * server.stats.assignments
    total_energy = sum(d.crowdsensing_energy_j() for d in devices)
    benchmark.extra_info["devices"] = DEVICES
    benchmark.extra_info["events_processed"] = sim.events_processed
    benchmark.extra_info["requests_scheduled"] = server.stats.requests_scheduled
    benchmark.extra_info["data_points"] = server.stats.data_points
    benchmark.extra_info["total_energy_j"] = round(total_energy, 1)
    benchmark.extra_info["readings"] = len(app.readings)
