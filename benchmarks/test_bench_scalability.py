"""Scalability benchmark — paper §8 ongoing work.

"In ongoing work, we are looking at scalability of our framework to
large geographic regions."  This benchmark scales the world past the
user study in two tiers — 200 devices on the 3 km campus with a 3×3
tower grid (an order of magnitude past the study) and 2,000 devices
over a 9 km × 9 km city region with a 5×5 grid (two orders) — and
measures the simulation's event throughput, the server's scheduling
outcomes, and the control plane's per-query work.

The large tier is the scale-out gate (see ``docs/performance.md``):

- ``devices_within`` must stay sub-linear — the perf counters assert
  that the worst single query touched a bucket-bounded candidate set,
  a small fraction of the fleet, instead of scanning all 2,000
  devices;
- event throughput must clear a conservative floor, so an accidental
  O(fleet²) regression fails loudly rather than just running slowly;
- the scheduling outcome must be *bit-identical* to the brute-force
  scan implementation under the same seed (checked at the 200-device
  tier, where running the world twice is cheap).

Results land in ``benchmarks/artifacts/BENCH_scalability.json``.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, write_artifact
from repro.cellular.enodeb import TowerRegistry, grid_towers
from repro.cellular.network import CellularNetwork
from repro.clientlib import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer
from repro.devices.sensors import SensorType
from repro.environment.campus import STUDY_SITES, Campus, default_campus
from repro.environment.geometry import Point
from repro.environment.population import PopulationConfig, build_population
from repro.faults import reset_global_ids
from repro.serverlib import CrowdsensingAppServer
from repro.sim.engine import Simulator
from repro.sim.perf import events_per_second

DEVICES = 200
DURATION_S = 3600.0

LARGE_DEVICES = 2000
LARGE_TOWER_ROWS = 5
LARGE_DURATION_S = 1800.0
CITY_SIDE_M = 9000.0
#: Conservative CI floor; local runs exceed it by a wide margin.
LARGE_MIN_EVENTS_PER_S = 2000.0


def city_campus() -> Campus:
    """A 9 km × 9 km region — the "large geographic region" tier.

    The four study sites become four district centres far apart, and a
    grid of secondary waypoints spreads the population over the whole
    plane instead of clustering it on one campus core.
    """
    city = Campus(width_m=CITY_SIDE_M, height_m=CITY_SIDE_M)
    quarter, three_quarters = CITY_SIDE_M * 0.25, CITY_SIDE_M * 0.75
    for name, position in zip(
        STUDY_SITES,
        (
            Point(quarter, quarter),
            Point(three_quarters, quarter),
            Point(quarter, three_quarters),
            Point(three_quarters, three_quarters),
        ),
    ):
        city.add_site(name, position)
    step = CITY_SIDE_M / 6.0
    for row in range(1, 6):
        for col in range(1, 6):
            city.add_waypoint(Point(col * step, row * step))
    return city


def run_world(
    *,
    devices: int,
    tower_rows: int,
    duration_s: float,
    seed: int = 13,
    use_spatial_index: bool = True,
    campus: Campus | None = None,
    site_home_fraction: float = 0.6,
    sites=STUDY_SITES,
):
    reset_global_ids()
    sim = Simulator(seed=seed)
    if campus is None:
        campus = default_campus()
    registry = TowerRegistry(
        grid_towers(
            campus.width_m, campus.height_m, rows=tower_rows, cols=tower_rows
        ),
        use_spatial_index=use_spatial_index,
    )
    network = CellularNetwork(sim)
    fleet = build_population(
        sim,
        campus,
        PopulationConfig(size=devices, site_home_fraction=site_home_fraction),
    )
    server = SenseAidServer(
        sim, registry, network, SenseAidConfig(mode=ServerMode.COMPLETE)
    )
    for device in fleet:
        SenseAidClient(sim, device, server, network).register()
    app = CrowdsensingAppServer(server, "city-scale")
    for site in sites:
        app.task(
            SensorType.BAROMETER,
            campus.site(site).position,
            area_radius_m=800.0,
            spatial_density=5,
            sampling_period_s=300.0,
            sampling_duration_s=duration_s,
        )
    sim.run(until=duration_s + 60.0)
    server.shutdown()
    return sim, server, registry, fleet, app


def run_city_scale():
    return run_world(
        devices=LARGE_DEVICES,
        tower_rows=LARGE_TOWER_ROWS,
        duration_s=LARGE_DURATION_S,
        campus=city_campus(),
        site_home_fraction=0.2,
    )


def run_large_scale():
    return run_world(devices=DEVICES, tower_rows=3, duration_s=DURATION_S)


def test_scalability_200_devices(benchmark):
    sim, server, registry, devices, app = run_once(benchmark, run_large_scale)
    # The server kept up: nearly every request scheduled, with data.
    assert server.stats.requests_issued == 4 * 12
    scheduled_fraction = server.stats.requests_scheduled / server.stats.requests_issued
    assert scheduled_fraction > 0.9
    assert server.stats.data_points > 0.8 * server.stats.assignments
    total_energy = sum(d.crowdsensing_energy_j() for d in devices)
    benchmark.extra_info["devices"] = DEVICES
    benchmark.extra_info["events_processed"] = sim.events_processed
    benchmark.extra_info["requests_scheduled"] = server.stats.requests_scheduled
    benchmark.extra_info["data_points"] = server.stats.data_points
    benchmark.extra_info["total_energy_j"] = round(total_energy, 1)
    benchmark.extra_info["readings"] = len(app.readings)


def test_scalability_index_matches_scan():
    """Same seed, index on vs off: the scheduling outcome is one bit
    stream — selection log and aggregate stats are identical."""
    _, indexed, *_ = run_world(devices=DEVICES, tower_rows=3, duration_s=DURATION_S)
    _, scanned, *_ = run_world(
        devices=DEVICES, tower_rows=3, duration_s=DURATION_S, use_spatial_index=False
    )
    assert indexed.selection_log == scanned.selection_log
    assert indexed.stats == scanned.stats


def test_scalability_2000_devices(benchmark):
    sim, server, registry, devices, app = run_once(benchmark, run_city_scale)
    stats = benchmark.stats.stats  # pytest-benchmark timing for the round
    wall_s = stats.mean
    throughput = events_per_second(sim.events_processed, wall_s)

    # Scheduling kept up at 10× the previous tier.
    assert server.stats.requests_issued == 4 * 6
    scheduled_fraction = (
        server.stats.requests_scheduled / server.stats.requests_issued
    )
    assert scheduled_fraction > 0.9
    assert server.stats.data_points > 0.8 * server.stats.assignments

    # --- The sub-linearity gate -------------------------------------
    # The worst devices_within query examined a bucket-bounded
    # candidate set, not the fleet: for an 800 m task circle on a
    # 500 m grid the candidate cells hold a minority of 2,000 devices
    # spread over a 3×3 km campus.
    query_probe = sim.perf.probe("registry.devices_within")
    assert query_probe.calls > 0
    assert query_probe.max_items < LARGE_DEVICES / 2
    grid_stats = registry.grid_stats()
    # Bucket occupancy bounds the per-query work: a circle of radius r
    # intersects at most ceil(2r/cell + 1)^2 buckets.
    cells_across = int(2 * 800.0 / grid_stats["cell_size_m"] + 1) + 1
    assert query_probe.max_items <= cells_across**2 * grid_stats["max_bucket"]

    # Refreshes are incremental: paused devices are provably
    # stationary and skipped, and repeat queries at one instant hit
    # the memo instead of re-reading anything.  (Walking devices must
    # still be re-read, so the bound reflects the time users spend
    # paused, not a constant.)
    refresh_probe = sim.perf.probe("registry.refresh_positions")
    full_scan_cost = refresh_probe.calls * LARGE_DEVICES
    assert refresh_probe.items < 0.8 * full_scan_cost
    assert sim.perf.probe("registry.refresh_positions.memo_hit").calls > 0

    # Throughput floor: an O(fleet) control plane regression at this
    # scale would fall under it.
    assert throughput > LARGE_MIN_EVENTS_PER_S

    sim.perf.export_to(sim.metrics)
    payload = {
        "tiers": {
            "small": {"devices": DEVICES, "towers": 9},
            "large": {
                "devices": LARGE_DEVICES,
                "towers": LARGE_TOWER_ROWS**2,
                "region_m": CITY_SIDE_M,
                "duration_s": LARGE_DURATION_S,
                "events_processed": sim.events_processed,
                "wall_s": round(wall_s, 3),
                "events_per_s": round(throughput, 1),
                "requests_scheduled": server.stats.requests_scheduled,
                "data_points": server.stats.data_points,
                "readings": len(app.readings),
            },
        },
        "grid": grid_stats,
        "perf": sim.perf.snapshot(),
        "gates": {
            "max_query_touched": query_probe.max_items,
            "max_query_touched_limit": LARGE_DEVICES / 2,
            "min_events_per_s": LARGE_MIN_EVENTS_PER_S,
        },
    }
    path = write_artifact("BENCH_scalability", payload)
    benchmark.extra_info["devices"] = LARGE_DEVICES
    benchmark.extra_info["events_processed"] = sim.events_processed
    benchmark.extra_info["events_per_s"] = round(throughput, 1)
    benchmark.extra_info["max_query_touched"] = query_probe.max_items
    benchmark.extra_info["artifact"] = path
