"""Scalability benchmark — paper §8 ongoing work.

"In ongoing work, we are looking at scalability of our framework to
large geographic regions."  This benchmark scales the world past the
user study in two tiers — 200 devices on the 3 km campus with a 3×3
tower grid (an order of magnitude past the study) and 2,000 devices
over a 9 km × 9 km city region with a 5×5 grid (two orders) — and
measures the simulation's event throughput, the server's scheduling
outcomes, and the control plane's per-query work.

The large tier is the scale-out gate (see ``docs/performance.md``):

- ``devices_within`` must stay sub-linear — the perf counters assert
  that the worst single query touched a bucket-bounded candidate set,
  a small fraction of the fleet, instead of scanning all 2,000
  devices;
- event throughput must clear a conservative floor, so an accidental
  O(fleet²) regression fails loudly rather than just running slowly;
- the scheduling outcome must be *bit-identical* to the brute-force
  scan implementation under the same seed (checked at the 200-device
  tier, where running the world twice is cheap).

The third tier is the vectorized device plane (``repro.core.deviceplane``):
10,000 devices as struct-of-arrays, one heap event per sensing round,
throughput measured in *device events* per second
(:attr:`repro.sim.engine.Simulator.device_events`) so batched and
object-per-device tiers compare in the same unit.  The gate: ≥10× the
seed's 2,000-device object-plane throughput (~27.4k events/s), plus a
bit-identity spot check against the object plane at the 2,000-device
scale.

Results land in ``benchmarks/artifacts/BENCH_scalability.json`` — all
tier tests merge into one scorecard via the module-level payload.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, write_artifact
from repro.cellular.enodeb import TowerRegistry, grid_towers
from repro.cellular.network import CellularNetwork
from repro.clientlib import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer
from repro.devices.sensors import SensorType
from repro.environment.campus import STUDY_SITES, Campus, default_campus
from repro.environment.geometry import Point
from repro.environment.population import PopulationConfig, build_population
from repro.faults import reset_global_ids
from repro.serverlib import CrowdsensingAppServer
from repro.sim.engine import Simulator
from repro.sim.perf import events_per_second

DEVICES = 200
DURATION_S = 3600.0

LARGE_DEVICES = 2000
LARGE_TOWER_ROWS = 5
LARGE_DURATION_S = 1800.0
CITY_SIDE_M = 9000.0
#: Conservative CI floor; local runs exceed it by a wide margin.
LARGE_MIN_EVENTS_PER_S = 2000.0

#: The seed repo's 2,000-device object-plane throughput (committed
#: baseline before the vectorized plane landed) and the ≥10× gate the
#: 10k struct-of-arrays tier must clear (ROADMAP item 2 / ISSUE 8).
SEED_EVENTS_PER_S = 27_449.0
VECTOR_DEVICES = 10_000
VECTOR_ROUNDS = 30
VECTOR_SEED = 13
VECTOR_MIN_DEVICE_EVENTS_PER_S = 10.0 * SEED_EVENTS_PER_S

#: All scalability tests merge their tier metrics here and rewrite the
#: single BENCH_scalability scorecard, so the artifact is complete
#: whichever test finishes last (write_artifact is atomic).
_PAYLOAD: dict = {"tiers": {}, "gates": {}}


def _write_merged(extra: dict) -> str:
    for key, value in extra.items():
        if isinstance(value, dict) and isinstance(_PAYLOAD.get(key), dict):
            _PAYLOAD[key].update(value)
        else:
            _PAYLOAD[key] = value
    return write_artifact("BENCH_scalability", _PAYLOAD)


def city_campus() -> Campus:
    """A 9 km × 9 km region — the "large geographic region" tier.

    The four study sites become four district centres far apart, and a
    grid of secondary waypoints spreads the population over the whole
    plane instead of clustering it on one campus core.
    """
    city = Campus(width_m=CITY_SIDE_M, height_m=CITY_SIDE_M)
    quarter, three_quarters = CITY_SIDE_M * 0.25, CITY_SIDE_M * 0.75
    for name, position in zip(
        STUDY_SITES,
        (
            Point(quarter, quarter),
            Point(three_quarters, quarter),
            Point(quarter, three_quarters),
            Point(three_quarters, three_quarters),
        ),
    ):
        city.add_site(name, position)
    step = CITY_SIDE_M / 6.0
    for row in range(1, 6):
        for col in range(1, 6):
            city.add_waypoint(Point(col * step, row * step))
    return city


def run_world(
    *,
    devices: int,
    tower_rows: int,
    duration_s: float,
    seed: int = 13,
    use_spatial_index: bool = True,
    campus: Campus | None = None,
    site_home_fraction: float = 0.6,
    sites=STUDY_SITES,
):
    reset_global_ids()
    sim = Simulator(seed=seed)
    if campus is None:
        campus = default_campus()
    registry = TowerRegistry(
        grid_towers(
            campus.width_m, campus.height_m, rows=tower_rows, cols=tower_rows
        ),
        use_spatial_index=use_spatial_index,
    )
    network = CellularNetwork(sim)
    fleet = build_population(
        sim,
        campus,
        PopulationConfig(size=devices, site_home_fraction=site_home_fraction),
    )
    server = SenseAidServer(
        sim, registry, network, SenseAidConfig(mode=ServerMode.COMPLETE)
    )
    for device in fleet:
        SenseAidClient(sim, device, server, network).register()
    app = CrowdsensingAppServer(server, "city-scale")
    for site in sites:
        app.task(
            SensorType.BAROMETER,
            campus.site(site).position,
            area_radius_m=800.0,
            spatial_density=5,
            sampling_period_s=300.0,
            sampling_duration_s=duration_s,
        )
    sim.run(until=duration_s + 60.0)
    server.shutdown()
    return sim, server, registry, fleet, app


def run_city_scale():
    return run_world(
        devices=LARGE_DEVICES,
        tower_rows=LARGE_TOWER_ROWS,
        duration_s=LARGE_DURATION_S,
        campus=city_campus(),
        site_home_fraction=0.2,
    )


def run_large_scale():
    return run_world(devices=DEVICES, tower_rows=3, duration_s=DURATION_S)


def test_scalability_200_devices(benchmark):
    sim, server, registry, devices, app = run_once(benchmark, run_large_scale)
    # The server kept up: nearly every request scheduled, with data.
    assert server.stats.requests_issued == 4 * 12
    scheduled_fraction = server.stats.requests_scheduled / server.stats.requests_issued
    assert scheduled_fraction > 0.9
    assert server.stats.data_points > 0.8 * server.stats.assignments
    total_energy = sum(d.crowdsensing_energy_j() for d in devices)
    benchmark.extra_info["devices"] = DEVICES
    benchmark.extra_info["events_processed"] = sim.events_processed
    benchmark.extra_info["requests_scheduled"] = server.stats.requests_scheduled
    benchmark.extra_info["data_points"] = server.stats.data_points
    benchmark.extra_info["total_energy_j"] = round(total_energy, 1)
    benchmark.extra_info["readings"] = len(app.readings)


def test_scalability_index_matches_scan():
    """Same seed, index on vs off: the scheduling outcome is one bit
    stream — selection log and aggregate stats are identical."""
    _, indexed, *_ = run_world(devices=DEVICES, tower_rows=3, duration_s=DURATION_S)
    _, scanned, *_ = run_world(
        devices=DEVICES, tower_rows=3, duration_s=DURATION_S, use_spatial_index=False
    )
    assert indexed.selection_log == scanned.selection_log
    assert indexed.stats == scanned.stats


def test_scalability_2000_devices(benchmark):
    sim, server, registry, devices, app = run_once(benchmark, run_city_scale)
    stats = benchmark.stats.stats  # pytest-benchmark timing for the round
    wall_s = stats.mean
    throughput = events_per_second(sim.events_processed, wall_s)

    # Scheduling kept up at 10× the previous tier.
    assert server.stats.requests_issued == 4 * 6
    scheduled_fraction = (
        server.stats.requests_scheduled / server.stats.requests_issued
    )
    assert scheduled_fraction > 0.9
    assert server.stats.data_points > 0.8 * server.stats.assignments

    # --- The sub-linearity gate -------------------------------------
    # The worst devices_within query examined a bucket-bounded
    # candidate set, not the fleet: for an 800 m task circle on a
    # 500 m grid the candidate cells hold a minority of 2,000 devices
    # spread over a 3×3 km campus.
    query_probe = sim.perf.probe("registry.devices_within")
    assert query_probe.calls > 0
    assert query_probe.max_items < LARGE_DEVICES / 2
    grid_stats = registry.grid_stats()
    # Bucket occupancy bounds the per-query work: a circle of radius r
    # intersects at most ceil(2r/cell + 1)^2 buckets.
    cells_across = int(2 * 800.0 / grid_stats["cell_size_m"] + 1) + 1
    assert query_probe.max_items <= cells_across**2 * grid_stats["max_bucket"]

    # Refreshes are incremental: paused devices are provably
    # stationary and skipped, and repeat queries at one instant hit
    # the memo instead of re-reading anything.  (Walking devices must
    # still be re-read, so the bound reflects the time users spend
    # paused, not a constant.)
    refresh_probe = sim.perf.probe("registry.refresh_positions")
    full_scan_cost = refresh_probe.calls * LARGE_DEVICES
    assert refresh_probe.items < 0.8 * full_scan_cost
    assert sim.perf.probe("registry.refresh_positions.memo_hit").calls > 0

    # Throughput floor: an O(fleet) control plane regression at this
    # scale would fall under it.
    assert throughput > LARGE_MIN_EVENTS_PER_S

    sim.perf.export_to(sim.metrics)
    path = _write_merged(
        {
            "tiers": {
                "small": {"devices": DEVICES, "towers": 9},
                "large": {
                    "devices": LARGE_DEVICES,
                    "towers": LARGE_TOWER_ROWS**2,
                    "region_m": CITY_SIDE_M,
                    "duration_s": LARGE_DURATION_S,
                    "events_processed": sim.events_processed,
                    "wall_s": round(wall_s, 3),
                    "events_per_s": round(throughput, 1),
                    "requests_scheduled": server.stats.requests_scheduled,
                    "data_points": server.stats.data_points,
                    "readings": len(app.readings),
                },
            },
            "grid": grid_stats,
            "perf": sim.perf.snapshot(),
            "gates": {
                "max_query_touched": query_probe.max_items,
                "max_query_touched_limit": LARGE_DEVICES / 2,
                "min_events_per_s": LARGE_MIN_EVENTS_PER_S,
            },
        }
    )
    benchmark.extra_info["devices"] = LARGE_DEVICES
    benchmark.extra_info["events_processed"] = sim.events_processed
    benchmark.extra_info["events_per_s"] = round(throughput, 1)
    benchmark.extra_info["max_query_touched"] = query_probe.max_items
    benchmark.extra_info["artifact"] = path


# ----------------------------------------------------------------------
# Tier 3: the vectorized struct-of-arrays device plane (10k devices)
# ----------------------------------------------------------------------


def run_vector_plane():
    from repro.core.deviceplane import (
        FleetSpec,
        PlaneDriver,
        default_campaign,
        make_plane,
    )

    spec = FleetSpec(devices=VECTOR_DEVICES, seed=VECTOR_SEED)
    sim = Simulator(seed=VECTOR_SEED)
    driver = PlaneDriver(
        sim, make_plane(spec, kind="vector"), default_campaign(spec), VECTOR_ROUNDS
    )
    sim.run()
    return sim, driver


def test_scalability_10k_vector_plane(benchmark):
    """The ≥10× gate: 10,000 devices through the numpy plane.

    Throughput is device events (mobility touches + RRC transitions +
    qualification probes + scores + uploads, credited per batched heap
    event) over wall-clock — the same work unit the object tiers pay
    one Python event apiece for.  The floor is 10× the committed seed
    throughput; local runs clear it by another ~5×, so the margin
    absorbs slow CI runners without ever letting the vectorization win
    silently regress.
    """
    sim, driver = run_once(benchmark, run_vector_plane)
    wall_s = benchmark.stats.stats.mean
    throughput = events_per_second(sim.device_events, wall_s)
    speedup = throughput / SEED_EVENTS_PER_S

    # One heap event per round; all fleet work rode inside them.
    assert sim.events_processed == VECTOR_ROUNDS
    assert sim.device_events >= VECTOR_ROUNDS * VECTOR_DEVICES
    assert sim.device_events == driver.result.device_events
    # The campaign did real scheduling work, not an empty spin.
    assert driver.result.selections > 0
    assert driver.result.uploads > 0
    result_log = driver.result.selection_log
    assert len(result_log) == VECTOR_ROUNDS * 4

    # --- The ≥10x gate ----------------------------------------------
    assert throughput >= VECTOR_MIN_DEVICE_EVENTS_PER_S, (
        f"vector plane sustained {throughput:,.0f} device-events/s, below "
        f"the 10x floor {VECTOR_MIN_DEVICE_EVENTS_PER_S:,.0f}"
    )

    path = _write_merged(
        {
            "tiers": {
                "vector_10k": {
                    "devices": VECTOR_DEVICES,
                    "rounds": VECTOR_ROUNDS,
                    "plane": "vector",
                    "device_events": sim.device_events,
                    "wall_s": round(wall_s, 3),
                    "device_events_per_s": round(throughput, 1),
                    "speedup_vs_seed": round(speedup, 1),
                    "selections": driver.result.selections,
                    "uploads": driver.result.uploads,
                    "cold_uploads": driver.result.cold_uploads,
                    "tail_uploads": driver.result.tail_uploads,
                },
            },
            "gates": {
                "seed_events_per_s": SEED_EVENTS_PER_S,
                "vector_min_device_events_per_s": VECTOR_MIN_DEVICE_EVENTS_PER_S,
                "vector_throughput_ok": bool(
                    throughput >= VECTOR_MIN_DEVICE_EVENTS_PER_S
                ),
            },
        }
    )
    benchmark.extra_info["devices"] = VECTOR_DEVICES
    benchmark.extra_info["device_events"] = sim.device_events
    benchmark.extra_info["device_events_per_s"] = round(throughput, 1)
    benchmark.extra_info["speedup_vs_seed"] = round(speedup, 1)
    benchmark.extra_info["artifact"] = path


def test_scalability_vector_plane_matches_object():
    """Bit-identity spot check at benchmark scale (2,000 devices).

    The property suite proves equivalence on small fleets; this runs
    the full benchmark campaign shape on both planes at the city tier's
    fleet size and requires the exact same selection log, snapshot, and
    fsum energy total — the indexed==scanned discipline, fleet-sized.
    """
    from repro.core.deviceplane import (
        FleetSpec,
        default_campaign,
        make_plane,
        run_campaign,
    )

    spec = FleetSpec(devices=LARGE_DEVICES, seed=VECTOR_SEED)
    campaign = default_campaign(spec)
    obj_plane = make_plane(spec, kind="object")
    vec_plane = make_plane(spec, kind="vector")
    obj = run_campaign(obj_plane, campaign, VECTOR_ROUNDS)
    vec = run_campaign(vec_plane, campaign, VECTOR_ROUNDS)
    assert obj.selection_log == vec.selection_log
    assert obj_plane.snapshot() == vec_plane.snapshot()
    assert (
        obj_plane.total_crowdsensing_energy_j()
        == vec_plane.total_crowdsensing_energy_j()
    )
