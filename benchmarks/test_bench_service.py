"""Service-front benchmark — latency, sustained throughput, overload.

ROADMAP item 3 / ISSUE 9: the paper frames Sense-Aid as *network as a
service*; this benchmark measures the asyncio service loop that framing
implies.  Four tiers merge into one ``BENCH_service.json`` scorecard:

- **latency** — open-loop arrivals at a rate the admission controller
  and consumers comfortably sustain, so every request is served and
  p50/p99 response latency is the headline.  Gate: p99 under a
  conservative CI ceiling.
- **throughput** — closed-loop workers (send → wait → send) measure
  max sustained RPS through the full submit → admit → queue → execute
  path.  Gate: a conservative floor local runs clear by >10×.
- **overload** — an arrival burst far past the fluid drain rate; the
  point is the backpressure path: sheds carry Retry-After hints sized
  by the admission controller, the generator's
  :class:`~repro.core.config.RetryPolicy` honours them, and the
  lifecycle ledger stays total (nothing skips SHED/FAILED accounting).
- **determinism** — the same seed must produce the same request trace
  (schedule fingerprint) at *any* consumer count, and serial (1
  consumer) vs parallel (8 consumers) execution must produce identical
  per-request outcomes.  The trace signature is committed in the
  baseline and compared exactly.

Wall-clock figures (latencies, achieved RPS) are machine-dependent and
skipped by ``tolerances.json``; the gate constants and determinism
fingerprints are compared exactly.
"""

from __future__ import annotations

import asyncio

from benchmarks.conftest import run_once, write_artifact
from repro.core.config import OverloadPolicy, RetryPolicy
from repro.service import (
    AppServerBackend,
    LoadGenerator,
    LoadSpec,
    SenseAidService,
    ServiceConfig,
    build_schedule,
    build_world,
    trace_signature,
)

#: Admission wide open for the tiers that measure the happy path.
OPEN_ADMISSION = OverloadPolicy(queue_capacity=10_000, service_rate_per_s=100_000.0)

#: Conservative CI gates — local runs clear these by an order of
#: magnitude; they exist to catch gross regressions (an accidental
#: serialization point, a busy-wait, a lost consumer), not to measure.
P99_LATENCY_LIMIT_MS = 250.0
MIN_CLOSED_LOOP_RPS = 300.0

#: The determinism tier's canonical spec (its trace signature is part
#: of the committed baseline, compared exactly).
DETERMINISM_SPEC = LoadSpec(seed=7, n_requests=200, mode="open", rate_rps=4000.0)

#: All tiers merge their metrics here and rewrite the single
#: BENCH_service scorecard, so the artifact is complete whichever test
#: finishes last (write_artifact is atomic).
_PAYLOAD: dict = {"tiers": {}, "gates": {}}


def _write_merged(extra: dict) -> str:
    for key, value in extra.items():
        if isinstance(value, dict) and isinstance(_PAYLOAD.get(key), dict):
            _PAYLOAD[key].update(value)
        else:
            _PAYLOAD[key] = value
    return write_artifact("BENCH_service", _PAYLOAD)


def _service(config: ServiceConfig, *, seed: int = 7):
    sim, _, cas = build_world(seed=seed)
    backend = AppServerBackend(sim, cas)
    return SenseAidService(backend.handle, config)


def echo_handler(request):
    """Pure handler for the determinism tier: the response is a
    function of the request alone, so outcomes cannot depend on
    consumer interleaving."""
    return {"kind": request.kind.value, "index": request.payload.get("index")}


# ----------------------------------------------------------------------
# Tier 1: latency under sustainable open-loop load
# ----------------------------------------------------------------------


def test_service_latency(benchmark):
    spec = LoadSpec(seed=7, n_requests=400, mode="open", rate_rps=400.0)
    config = ServiceConfig(
        consumers=4, concurrency_slots=8, service_time_s=0.002, overload=OPEN_ADMISSION
    )

    def tier():
        generator = LoadGenerator(spec, time_scale=0.25)
        service = _service(config)

        async def drive():
            async with service:
                return await generator.run(service)

        return asyncio.run(drive()), service

    report, service = run_once(benchmark, tier)
    # Sustainable load: every request served, none shed or failed.
    assert report.ok == spec.n_requests
    assert report.shed == 0 and report.failed == 0
    service.ledger.assert_accounted()
    assert service.ledger.done == spec.n_requests

    p50_ms = report.latency_percentile_s(50.0) * 1e3
    p99_ms = report.latency_percentile_s(99.0) * 1e3
    assert p99_ms < P99_LATENCY_LIMIT_MS, (
        f"service p99 latency {p99_ms:.1f} ms exceeds the "
        f"{P99_LATENCY_LIMIT_MS:.0f} ms ceiling"
    )

    path = _write_merged(
        {
            "tiers": {
                "latency": {
                    "n_requests": spec.n_requests,
                    "ok": report.ok,
                    "shed": report.shed,
                    "failed": report.failed,
                    "p50_latency_ms": round(p50_ms, 3),
                    "p99_latency_ms": round(p99_ms, 3),
                    "wall_s": round(report.wall_s, 3),
                }
            },
            "gates": {
                "p99_latency_limit_ms": P99_LATENCY_LIMIT_MS,
                "latency_tier_all_served": bool(report.ok == spec.n_requests),
            },
        }
    )
    benchmark.extra_info["p99_latency_ms"] = round(p99_ms, 3)
    benchmark.extra_info["artifact"] = path


# ----------------------------------------------------------------------
# Tier 2: max sustained throughput (closed loop)
# ----------------------------------------------------------------------


def test_service_throughput(benchmark):
    spec = LoadSpec(seed=11, n_requests=600, mode="closed", concurrency=8)
    config = ServiceConfig(
        consumers=4, concurrency_slots=8, service_time_s=0.001, overload=OPEN_ADMISSION
    )

    def tier():
        generator = LoadGenerator(spec)
        service = _service(config)

        async def drive():
            async with service:
                return await generator.run(service)

        return asyncio.run(drive()), service

    report, service = run_once(benchmark, tier)
    assert report.ok == spec.n_requests
    assert report.failed == 0
    service.ledger.assert_accounted()

    rps = report.achieved_rps
    assert rps >= MIN_CLOSED_LOOP_RPS, (
        f"closed-loop sustained {rps:,.0f} rps, below the "
        f"{MIN_CLOSED_LOOP_RPS:,.0f} rps floor"
    )

    path = _write_merged(
        {
            "tiers": {
                "throughput": {
                    "n_requests": spec.n_requests,
                    "concurrency": spec.concurrency,
                    "ok": report.ok,
                    "max_sustained_rps": round(rps, 1),
                    "p50_latency_ms": round(report.latency_percentile_s(50.0) * 1e3, 3),
                    "p99_latency_ms": round(report.latency_percentile_s(99.0) * 1e3, 3),
                    "wall_s": round(report.wall_s, 3),
                }
            },
            "gates": {
                "min_closed_loop_rps": MIN_CLOSED_LOOP_RPS,
                "throughput_tier_all_served": bool(report.ok == spec.n_requests),
            },
        }
    )
    benchmark.extra_info["max_sustained_rps"] = round(rps, 1)
    benchmark.extra_info["artifact"] = path


# ----------------------------------------------------------------------
# Tier 3: overload — shedding, Retry-After round trip, ledger totality
# ----------------------------------------------------------------------


def test_service_overload(benchmark):
    policy = OverloadPolicy(
        queue_capacity=32, service_rate_per_s=200.0, retry_after_base_s=2.0
    )
    retry_policy = RetryPolicy()
    spec = LoadSpec(seed=13, n_requests=500, mode="open", rate_rps=4000.0)
    config = ServiceConfig(consumers=4, concurrency_slots=8, overload=policy)

    def tier():
        generator = LoadGenerator(spec, retry_policy=retry_policy, time_scale=0.01)
        service = _service(config)

        async def drive():
            async with service:
                return await generator.run(service)

        return asyncio.run(drive()), service

    report, service = run_once(benchmark, tier)
    service.ledger.assert_accounted()
    # Every planned request terminated in exactly one outcome.
    assert report.ok + report.shed + report.failed == spec.n_requests
    assert report.failed == 0
    # The burst genuinely overloaded the gate.
    assert service.stats.shed_admission > 0
    assert report.retries > 0

    # The Retry-After round trip: every shed response carried a hint of
    # at least the base pause, and every retry wait the generator took
    # equals shed_delay_s(attempt, hint) for that hint.
    waits = [
        (attempt, hint, delay)
        for outcome in report.outcomes
        for attempt, (hint, delay) in enumerate(outcome.retry_waits, start=1)
    ]
    hints_ok = bool(waits) and all(
        hint >= policy.retry_after_base_s for _, hint, _ in waits
    )
    round_trip_ok = all(
        abs(delay - retry_policy.shed_delay_s(attempt, hint)) < 1e-9
        for attempt, hint, delay in waits
    )
    assert hints_ok and round_trip_ok

    scorecard = service.scorecard()
    path = _write_merged(
        {
            "tiers": {
                "overload": {
                    "n_requests": spec.n_requests,
                    "ok": report.ok,
                    "shed": report.shed,
                    "retries": report.retries,
                    "shed_admission": scorecard["shed_admission"],
                    "shed_queue_full": scorecard["shed_queue_full"],
                    "breaker_opens": scorecard["admission"]["breaker_opens"],
                    "wall_s": round(report.wall_s, 3),
                }
            },
            "gates": {
                "overload_every_request_accounted": bool(
                    report.ok + report.shed + report.failed == spec.n_requests
                ),
                "overload_retry_hints_honoured": bool(hints_ok and round_trip_ok),
                "overload_ledger_balanced": True,  # assert_accounted passed
            },
        }
    )
    benchmark.extra_info["shed"] = report.shed
    benchmark.extra_info["retries"] = report.retries
    benchmark.extra_info["artifact"] = path


# ----------------------------------------------------------------------
# Tier 4: determinism — one seed, one trace, any consumer count
# ----------------------------------------------------------------------


def test_service_determinism(benchmark):
    def run_with_consumers(consumers: int):
        config = ServiceConfig(consumers=consumers, overload=OPEN_ADMISSION)
        generator = LoadGenerator(DETERMINISM_SPEC, time_scale=0.01)
        service = SenseAidService(echo_handler, config)

        async def drive():
            async with service:
                return await generator.run(service)

        report = asyncio.run(drive())
        service.ledger.assert_accounted()
        return report

    def tier():
        return run_with_consumers(1), run_with_consumers(8)

    serial, parallel = run_once(benchmark, tier)
    expected_sig = trace_signature(build_schedule(DETERMINISM_SPEC))
    assert serial.trace_sig == parallel.trace_sig == expected_sig
    assert serial.ok == parallel.ok == DETERMINISM_SPEC.n_requests

    def outcome_key(report):
        return [
            (o.index, o.kind.value, o.response.status.value, repr(o.response.result))
            for o in report.outcomes
        ]

    identical = outcome_key(serial) == outcome_key(parallel)
    assert identical, "serial and parallel outcomes diverged under one seed"

    path = _write_merged(
        {
            "tiers": {
                "determinism": {
                    "n_requests": DETERMINISM_SPEC.n_requests,
                    "seed": DETERMINISM_SPEC.seed,
                    "serial_ok": serial.ok,
                    "parallel_ok": parallel.ok,
                }
            },
            "gates": {
                "trace_sig": expected_sig,
                "parallel_equals_serial": bool(identical),
            },
        }
    )
    benchmark.extra_info["trace_sig"] = expected_sig
    benchmark.extra_info["artifact"] = path
