"""Benchmark: chaos soak scorecard.

Runs a bounded, fixed-seed soak — a handful of medium-tier episodes
with the bit-identical replay arm enabled — and one planted-bug drill
that exercises the whole failure path: the planted acked-upload loss
fires, the delta-debugging shrinker minimizes the fault plan, and the
serialized reproducer still fails when replayed from JSON.

The scorecard (``BENCH_soak.json``) gates on:

1. invariant pass rate 1.0 across the clean episodes (no acknowledged
   upload loss, idempotency holds, epochs are monotone, anti-entropy
   converges, WAL recovery is clean, replay is bit-identical);
2. the planted bug is detected every time and its reproducer shrinks
   to at most 25% of the original fault plan;
3. the shrunken reproducer round-trips through JSON and still fails.

Throughput (``episodes_per_s``) is machine-dependent and skipped by
the regression gate; the structural metrics are exact.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once, write_artifact
from repro.soak import (
    SoakHarness,
    build_reproducer,
    load_reproducer,
    replay_reproducer,
    shrink_episode,
    write_reproducer,
)

SEED = 23
EPISODES = 4
TIER = "medium"
N_DEVICES = 10
HORIZON_S = 1200.0

#: The planted drill uses the seed/episode pinned by tests/test_soak.py:
#: seed 7 episode 0 (medium) contains shard faults, so the lost-ack bug
#: fires deterministically.
PLANTED_SEED = 7
SHRINK_BUDGET = 48


def run_clean_soak(wal_root: str) -> dict:
    harness = SoakHarness(
        SEED,
        wal_root=wal_root,
        tier=TIER,
        n_devices=N_DEVICES,
        horizon_s=HORIZON_S,
        check_replay=True,
    )
    started = time.perf_counter()
    report = harness.run(EPISODES)
    wall_s = time.perf_counter() - started
    doc = report.as_dict()
    return {
        "episodes": report.episodes,
        "invariant_pass_rate": report.invariant_pass_rate,
        "mean_plan_events": doc["mean_plan_events"],
        "replay_checked": sum(1 for r in report.results if r.replay_checked),
        "failures": len(report.failures),
        "wall_s": round(wall_s, 3),
        "episodes_per_s": round(report.episodes / wall_s, 3) if wall_s else 0.0,
    }


def run_planted_drill(wal_root: str, replay_root: str, repro_path: str) -> dict:
    harness = SoakHarness(
        PLANTED_SEED,
        wal_root=wal_root,
        tier=TIER,
        n_devices=N_DEVICES,
        horizon_s=HORIZON_S,
        check_replay=False,
        planted_bug="lost_ack",
    )
    result = harness.run_episode(0)
    shrunk = shrink_episode(harness, result, max_runs=SHRINK_BUDGET)
    write_reproducer(repro_path, build_reproducer(harness, result, shrunk))
    violations, _, _ = replay_reproducer(load_reproducer(repro_path), replay_root)
    replay_codes = sorted({v.code for v in violations})
    return {
        "detected": not result.ok,
        "codes": sorted(result.codes()),
        "original_events": shrunk.original_events,
        "shrunk_events": shrunk.shrunk_events,
        "shrink_ratio": shrunk.ratio,
        "shrink_runs": shrunk.runs,
        "shrink_converged": shrunk.converged,
        "replay_fails": bool(violations),
        "replay_codes": replay_codes,
    }


def run_suite(root: str) -> dict:
    clean = run_clean_soak(f"{root}/clean")
    planted = run_planted_drill(
        f"{root}/planted", f"{root}/replay", f"{root}/reproducer.json"
    )
    return {
        "scenario": {
            "seed": SEED,
            "tier": TIER,
            "episodes": EPISODES,
            "devices": N_DEVICES,
            "horizon_s": HORIZON_S,
            "planted_seed": PLANTED_SEED,
            "shrink_budget": SHRINK_BUDGET,
        },
        "soak": clean,
        "planted": planted,
        "gates": {
            "min_invariant_pass_rate": 1.0,
            "max_shrink_ratio": 0.25,
        },
    }


def test_bench_soak(benchmark, tmp_path):
    results = run_once(benchmark, run_suite, str(tmp_path))
    benchmark.extra_info.update(results)
    write_artifact("BENCH_soak", results)

    soak, planted, gates = results["soak"], results["planted"], results["gates"]

    # 1. Every clean episode passes the full invariant suite, replay
    #    arm included.
    assert soak["episodes"] == EPISODES
    assert soak["failures"] == 0
    assert soak["replay_checked"] == EPISODES
    assert soak["invariant_pass_rate"] >= gates["min_invariant_pass_rate"]

    # 2. The planted bug is caught and shrinks below the gate.
    assert planted["detected"]
    assert "ACKED_UPLOAD_LOST" in planted["codes"]
    assert planted["shrunk_events"] >= 1
    assert planted["shrink_ratio"] <= gates["max_shrink_ratio"]

    # 3. The serialized reproducer still fails after a JSON round trip.
    assert planted["replay_fails"]
    assert "ACKED_UPLOAD_LOST" in planted["replay_codes"]
