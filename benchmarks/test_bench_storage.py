"""Benchmark: the pluggable storage layer's scorecard (BENCH_storage).

Three tiers, three gates:

1. **Overhead** — the same campaign runs on the in-memory backend and
   on sqlite; the sqlite wall-clock must stay within 5× of memory
   (the on-disk backend is allowed to cost something, not to change
   the system's complexity class).
2. **Identity** — the two campaigns must produce bit-identical worlds
   (selection logs, stored readings, device docs, stats).  The
   hypothesis suite proves this over random campaigns; the scorecard
   pins one deterministic witness.
3. **Bounded-memory streaming** — writing and then folding 10× the
   readings through the streaming accumulators on sqlite must keep
   the traced Python heap peak flat (≤1.5× growth): readings live on
   disk, never as a materialised list.

Measured wall-clock numbers and machine-dependent ratios are recorded
for observability but skipped by ``repro bench compare``; the
``gates.*`` constants are compared at zero tolerance so a gate change
is always a reviewed, deliberate act.
"""

from __future__ import annotations

import time
import tracemalloc

from benchmarks.conftest import run_once, write_artifact
from repro.analysis.streaming import StreamingMean
from repro.cellular.enodeb import ENodeB, TowerRegistry
from repro.cellular.network import CellularNetwork
from repro.cellular.packets import reset_message_ids
from repro.clientlib import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer
from repro.core.tasks import reset_task_ids
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point
from repro.serverlib.appserver import CrowdsensingAppServer, point_from_dict
from repro.sim.engine import Simulator
from repro.storage import MemoryBackend, SqliteBackend

CENTER = Point(500.0, 500.0)
SEED = 23
N_DEVICES = 16
N_TASKS = 3
PERIOD_S = 120.0
ROUNDS = 40

#: The sqlite backend may cost at most this multiple of memory.
MAX_SQLITE_OVERHEAD = 5.0
#: Traced-heap peak growth allowed when the reading volume grows 10×.
MAX_STREAM_PEAK_GROWTH = 1.5

BASE_READINGS = 10_000
SCALE = 10


def _make_backend(kind: str, tmp_dir):
    if kind == "memory":
        return MemoryBackend()
    return SqliteBackend(str(tmp_dir / f"{kind}-{time.monotonic_ns()}.sqlite3"))


def run_campaign(backend):
    """One deterministic campaign; returns (wall_s, fingerprint)."""
    reset_task_ids()
    reset_message_ids()
    started = time.perf_counter()
    sim = Simulator(seed=SEED)
    registry = TowerRegistry([ENodeB("t0", CENTER, coverage_radius_m=5000.0)])
    network = CellularNetwork(sim)
    server = SenseAidServer(
        sim,
        registry,
        network,
        SenseAidConfig(mode=ServerMode.COMPLETE),
        storage=backend,
    )
    cas = CrowdsensingAppServer(server, "bench")
    for i in range(N_DEVICES):
        from tests.conftest import make_device

        device = make_device(sim, f"d{i}", position=CENTER)
        SenseAidClient(sim, device, server, network).register()
    duration = PERIOD_S * ROUNDS
    for _ in range(N_TASKS):
        cas.task(
            SensorType.BAROMETER,
            CENTER,
            2000.0,
            2,
            sampling_period_s=PERIOD_S,
            sampling_duration_s=duration,
        )
    sim.run(until=duration + 120.0)
    server.shutdown()
    wall_s = time.perf_counter() - started
    fingerprint = {
        "selection_log": list(backend.scan_log(server.SELECTION_LOG_NS)),
        "readings": list(backend.scan_log(cas.readings_ns)),
        "device_docs": {
            key: backend.get_doc("devices", key)
            for key in backend.doc_keys("devices")
        },
        "stats": vars(server.stats).copy(),
    }
    summary = {
        "readings": cas.reading_count(),
        "selections": len(server.selection_log),
        "mean_value": cas.mean_value(),
    }
    return wall_s, fingerprint, summary


def _stream_tier(tmp_dir, n_readings: int) -> dict:
    """Write ``n_readings`` to a sqlite log, fold them streamingly, and
    report the traced Python heap peak over the whole pipeline.

    Folds the constant-space accumulators (mean, distinct devices —
    the device population is bounded by construction).  The exact-p95
    ``StreamingLatency`` is deliberately excluded: exact quantiles
    require retaining every latency (one compact double each), which
    is linear in n by design and would mask a materialisation bug
    elsewhere.
    """
    backend = SqliteBackend(
        str(tmp_dir / f"stream-{n_readings}.sqlite3")
    )
    tracemalloc.start()
    for i in range(n_readings):
        backend.append_log(
            "readings:stream",
            {
                "request_id": f"task1-r{i}",
                "task_id": 1,
                "sensor_type": "BAROMETER",
                "value": 1000.0 + (i % 40) * 0.25,
                "sensed_at": float(i),
                "delivered_at": float(i) + 0.4,
                "device_hash": f"h{i % 50}",
            },
            tag="1",
        )
    backend.flush()
    mean = StreamingMean()
    devices = set()
    for doc in backend.scan_log("readings:stream"):
        point = point_from_dict(doc)
        mean.add(point.value)
        devices.add(point.device_hash)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    backend.close()
    assert mean.count == n_readings
    return {
        "readings": n_readings,
        "peak_kb": peak / 1024.0,
        "mean_value": mean.mean,
        "distinct_devices": len(devices),
    }


def _run_suite(tmp_dir) -> dict:
    memory_wall, memory_world, memory_summary = run_campaign(
        _make_backend("memory", tmp_dir)
    )
    sqlite_wall, sqlite_world, sqlite_summary = run_campaign(
        _make_backend("sqlite", tmp_dir)
    )
    identical = memory_world == sqlite_world
    overhead = sqlite_wall / memory_wall
    base = _stream_tier(tmp_dir, BASE_READINGS)
    big = _stream_tier(tmp_dir, BASE_READINGS * SCALE)
    growth = big["peak_kb"] / base["peak_kb"]
    return {
        "campaign": {
            **memory_summary,
            "memory_wall_s": memory_wall,
            "sqlite_wall_s": sqlite_wall,
        },
        "sqlite_overhead_ratio": overhead,
        "identity": {"cross_backend_identical": int(identical)},
        "streaming": {
            "base": base,
            "big": big,
            "peak_growth_ratio": growth,
        },
        "gates": {
            "max_sqlite_overhead_ratio": MAX_SQLITE_OVERHEAD,
            "max_stream_peak_growth": MAX_STREAM_PEAK_GROWTH,
            "cross_backend_identical": int(identical),
        },
    }


def test_storage(benchmark, tmp_path):
    metrics = run_once(benchmark, _run_suite, tmp_path)
    benchmark.extra_info.update(
        {
            "sqlite_overhead_ratio": metrics["sqlite_overhead_ratio"],
            "identical": metrics["identity"]["cross_backend_identical"],
        }
    )
    write_artifact("BENCH_storage", metrics)

    # Gate 1: sqlite pays at most 5× the in-memory wall clock.
    assert metrics["sqlite_overhead_ratio"] <= MAX_SQLITE_OVERHEAD, (
        f"sqlite overhead {metrics['sqlite_overhead_ratio']:.2f}× exceeds "
        f"{MAX_SQLITE_OVERHEAD}× the memory backend"
    )
    # Gate 2: the two backends produced bit-identical worlds.
    assert metrics["identity"]["cross_backend_identical"] == 1
    # Gate 3: 10× the readings, flat streaming memory.
    growth = metrics["streaming"]["peak_growth_ratio"]
    assert growth <= MAX_STREAM_PEAK_GROWTH, (
        f"streaming peak grew {growth:.2f}× on {SCALE}× readings "
        f"(limit {MAX_STREAM_PEAK_GROWTH}×) — something materialises"
    )
    # The aggregates themselves must agree across scales' shared prefix
    # construction (sanity that the fold actually ran).
    assert metrics["streaming"]["big"]["readings"] == BASE_READINGS * SCALE
