"""Benchmark: regenerate Table 2 (the energy-savings summary)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import summary


def test_table2_energy_savings_summary(benchmark, scenario):
    result = run_once(benchmark, summary.run, scenario)
    # Paper shapes, per experiment: Complete saves at least as much as
    # Basic against both comparators, and savings over Periodic exceed
    # savings over PCS (Periodic is the weaker baseline).
    for cells in result.experiment_cells.values():
        by_key = {c.comparison: c for c in cells}
        assert (
            by_key["complete_vs_periodic"].mean_pct
            >= by_key["basic_vs_periodic"].mean_pct
        )
        assert by_key["complete_vs_pcs"].mean_pct >= by_key["basic_vs_pcs"].mean_pct
        assert (
            by_key["basic_vs_periodic"].mean_pct > by_key["basic_vs_pcs"].mean_pct
        )
        # Sense-Aid always wins on average, by a wide margin.
        assert by_key["complete_vs_periodic"].mean_pct > 60.0
        assert by_key["complete_vs_pcs"].mean_pct > 50.0
    benchmark.extra_info["table2"] = {
        experiment: {
            cell.comparison: cell.formatted() for cell in cells
        }
        for experiment, cells in result.experiment_cells.items()
    }
