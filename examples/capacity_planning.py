"""Capacity planning: estimate a campaign's cost, then verify by simulation.

Before tasking a real fleet, an operator wants to know whether a
campaign fits the participants' energy budgets.  This example uses the
analytic planner to estimate three candidate campaign designs, picks
the heaviest one that still fits the paper's 2% (496 J) budget under a
fair rotation, runs the chosen design in full simulation, and compares
predicted vs measured energy.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.cellular.power import LTE_POWER_PROFILE
from repro.core.config import ServerMode
from repro.core.tasks import TaskSpec
from repro.devices.sensors import SensorType
from repro.devices.traffic import TrafficPattern
from repro.environment.campus import CS_DEPARTMENT, default_campus
from repro.experiments.common import (
    ScenarioConfig,
    TaskParams,
    run_sense_aid_arm,
)
from repro.serverlib.planner import estimate_campaign

TRAFFIC = TrafficPattern(mean_gap_s=420.0)
QUALIFIED_POOL = 12  # ~what a 1 km radius reaches on this campus
BUDGET_J = 496.0

CANDIDATES = {
    "relaxed (10-min, density 2)": dict(sampling_period_s=600.0, spatial_density=2),
    "standard (5-min, density 3)": dict(sampling_period_s=300.0, spatial_density=3),
    "aggressive (1-min, density 3)": dict(sampling_period_s=60.0, spatial_density=3),
}
DURATION_S = 5400.0


def make_spec(params) -> TaskSpec:
    campus = default_campus()
    return TaskSpec(
        sensor_type=SensorType.BAROMETER,
        center=campus.site(CS_DEPARTMENT).position,
        area_radius_m=1000.0,
        sampling_duration_s=DURATION_S,
        **params,
    )


def main() -> None:
    print(f"budget: {BUDGET_J:.0f} J/device over a pool of {QUALIFIED_POOL}\n")
    chosen_name, chosen_params = None, None
    for name, params in CANDIDATES.items():
        estimate = estimate_campaign(
            make_spec(params), LTE_POWER_PROFILE, TRAFFIC, ServerMode.COMPLETE
        )
        fits = estimate.within_budget(BUDGET_J, QUALIFIED_POOL)
        print(
            f"{name:32s} fleet≈{estimate.fleet_energy_j:8.1f} J  "
            f"tail-hit p={estimate.tail_hit_probability:.2f}  "
            f"{'fits' if fits else 'OVER BUDGET'}"
        )
        if fits:
            chosen_name, chosen_params = name, params
    assert chosen_params is not None, "no candidate fits the budget"
    print(f"\nlaunching: {chosen_name}")

    arm = run_sense_aid_arm(
        ScenarioConfig(seed=23),
        [
            TaskParams(
                area_radius_m=1000.0,
                sampling_duration_s=DURATION_S,
                **chosen_params,
            )
        ],
        ServerMode.COMPLETE,
    )
    estimate = estimate_campaign(
        make_spec(chosen_params), LTE_POWER_PROFILE, TRAFFIC, ServerMode.COMPLETE
    )
    measured = arm.energy.total_j
    print(f"predicted fleet energy : {estimate.fleet_energy_j:8.1f} J")
    print(f"measured fleet energy  : {measured:8.1f} J "
          f"(x{measured / estimate.fleet_energy_j:.2f} of prediction)")
    print(f"max per-device measured: {arm.energy.max_per_device_j:8.1f} J "
          f"(budget {BUDGET_J:.0f} J)")
    print(f"data points delivered  : {arm.data_points}")


if __name__ == "__main__":
    main()
