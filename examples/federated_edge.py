"""Federated edge deployment with device handoff and instance failover.

The paper's §3.2 deployment story: the logically-centralised Sense-Aid
server is physically many instances at the cellular edge, each close
to its devices.  This example runs two edge instances over one campus,
watches devices hand over as users walk between regions, then crashes
one instance mid-campaign and shows the failover carrying its task to
the sibling instance without losing the rest of the campaign.

Run:  python examples/federated_edge.py
"""

from __future__ import annotations

from repro.cellular.network import CellularNetwork
from repro.clientlib import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.federation import EdgeRegionSpec, FederatedSenseAid
from repro.core.tasks import TaskSpec
from repro.devices.sensors import SensorType
from repro.environment.campus import CS_DEPARTMENT, UNIVERSITY_GYM, default_campus
from repro.environment.population import PopulationConfig, build_population
from repro.sim.engine import Simulator

DURATION_S = 5400.0


def main() -> None:
    sim = Simulator(seed=31)
    campus = default_campus()
    network = CellularNetwork(sim)
    devices = build_population(sim, campus, PopulationConfig(size=20))

    # Two edge instances: one near the academic core, one near the gym.
    federation = FederatedSenseAid(
        sim,
        network,
        [
            EdgeRegionSpec("core", campus.site(CS_DEPARTMENT).position),
            EdgeRegionSpec("north", campus.site(UNIVERSITY_GYM).position),
        ],
        SenseAidConfig(mode=ServerMode.COMPLETE),
        rebalance_period_s=120.0,
    )
    federation.enable_failover(check_period_s=60.0)

    for device in devices:
        client = SenseAidClient(sim, device, federation.instance("core"), network)
        federation.register(client)
    print("initial devices per region:", federation.devices_per_region())

    core_data, north_data = [], []
    federation.submit_task(
        TaskSpec(
            sensor_type=SensorType.BAROMETER,
            center=campus.site(CS_DEPARTMENT).position,
            area_radius_m=800.0,
            spatial_density=2,
            sampling_period_s=300.0,
            sampling_duration_s=DURATION_S,
            origin="core-weather",
        ),
        core_data.append,
    )
    federation.submit_task(
        TaskSpec(
            sensor_type=SensorType.BAROMETER,
            center=campus.site(UNIVERSITY_GYM).position,
            area_radius_m=800.0,
            spatial_density=2,
            sampling_period_s=300.0,
            sampling_duration_s=DURATION_S,
            origin="north-weather",
        ),
        north_data.append,
    )

    # Run half the campaign, then lose the north instance.
    sim.run(until=DURATION_S / 2)
    north_before_crash = len(north_data)
    print(f"t={sim.now / 60:.0f} min: north instance crashes "
          f"({north_before_crash} north readings so far)")
    federation.instance("north").crash()

    sim.run(until=DURATION_S + 120.0)
    federation.shutdown()

    print(f"handoffs during the run : {federation.handoffs}")
    print(f"failovers               : {federation.failovers}")
    print(f"final devices per region: {federation.devices_per_region()}")
    print(f"core campaign readings  : {len(core_data)}")
    print(f"north campaign readings : {len(north_data)} "
          f"({len(north_data) - north_before_crash} after failover)")
    total = sum(d.crowdsensing_energy_j() for d in devices)
    print(f"total crowdsensing energy: {total:.1f} J")


if __name__ == "__main__":
    main()
