"""Hyperlocal weather map — the paper's motivating application.

A Pressurenet-style application asks for barometric pressure at all
four campus study sites simultaneously, builds a small pressure map
from the returned readings, and then re-runs the identical campaign
under the Periodic state of practice to show the energy difference on
the same simulated world.

Run:  python examples/hyperlocal_weather.py
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.heatmap import SpatialSample, render_heatmap
from repro.baselines import PeriodicFramework
from repro.cellular.enodeb import TowerRegistry, grid_towers
from repro.cellular.network import CellularNetwork
from repro.clientlib import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer
from repro.core.tasks import TaskSpec
from repro.devices.sensors import SensorType
from repro.environment.campus import STUDY_SITES, default_campus
from repro.environment.population import PopulationConfig, build_population
from repro.serverlib import CrowdsensingAppServer
from repro.sim.engine import Simulator

DURATION_S = 5400.0
PERIOD_S = 600.0
RADIUS_M = 500.0
DENSITY = 2
SEED = 99


def run_sense_aid() -> tuple:
    sim = Simulator(seed=SEED)
    campus = default_campus()
    registry = TowerRegistry(grid_towers(campus.width_m, campus.height_m))
    network = CellularNetwork(sim)
    devices = build_population(sim, campus, PopulationConfig(size=20))
    server = SenseAidServer(
        sim, registry, network, SenseAidConfig(mode=ServerMode.COMPLETE)
    )
    for device in devices:
        SenseAidClient(sim, device, server, network).register()
    app = CrowdsensingAppServer(server, "pressure-map")
    site_tasks = {}
    for site_name in STUDY_SITES:
        task_id = app.task(
            SensorType.BAROMETER,
            campus.site(site_name).position,
            area_radius_m=RADIUS_M,
            spatial_density=DENSITY,
            sampling_period_s=PERIOD_S,
            sampling_duration_s=DURATION_S,
        )
        site_tasks[site_name] = task_id
    sim.run(until=DURATION_S + 60.0)
    server.shutdown()
    energy = sum(d.crowdsensing_energy_j() for d in devices)
    return app, site_tasks, energy


def run_periodic_comparison() -> float:
    sim = Simulator(seed=SEED)
    campus = default_campus()
    network = CellularNetwork(sim)
    devices = build_population(sim, campus, PopulationConfig(size=20))
    framework = PeriodicFramework(sim, network, devices)
    for site_name in STUDY_SITES:
        framework.add_task(
            TaskSpec(
                sensor_type=SensorType.BAROMETER,
                center=campus.site(site_name).position,
                area_radius_m=RADIUS_M,
                spatial_density=DENSITY,
                sampling_period_s=PERIOD_S,
                sampling_duration_s=DURATION_S,
                origin="pressure-map",
            )
        )
    sim.run(until=DURATION_S + 60.0)
    return framework.total_crowdsensing_energy_j()


def main() -> None:
    app, site_tasks, sense_aid_energy = run_sense_aid()

    print("Hyperlocal pressure map (90 minutes, 4 sites):")
    campus = default_campus()
    pressure_by_site = defaultdict(list)
    for site_name, task_id in site_tasks.items():
        for point in app.readings_for_task(task_id):
            pressure_by_site[site_name].append(point.value)
    samples = []
    for site_name in STUDY_SITES:
        values = pressure_by_site[site_name]
        if values:
            mean = sum(values) / len(values)
            print(f"  {site_name:15s} {mean:8.2f} hPa  ({len(values)} readings)")
            samples.append(
                SpatialSample(campus.site(site_name).position, mean)
            )
        else:
            print(f"  {site_name:15s}  (no qualified devices this run)")

    if samples:
        print()
        print(
            render_heatmap(
                samples,
                campus.width_m,
                campus.height_m,
                cols=48,
                rows=14,
                title="interpolated campus pressure field (hPa):",
                legend_format="{:.2f}",
            )
        )

    periodic_energy = run_periodic_comparison()
    saving = (1.0 - sense_aid_energy / periodic_energy) * 100.0
    print()
    print(f"Sense-Aid energy : {sense_aid_energy:8.1f} J")
    print(f"Periodic energy  : {periodic_energy:8.1f} J")
    print(f"energy saving    : {saving:.1f}%")


if __name__ == "__main__":
    main()
