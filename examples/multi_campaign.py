"""Multiple concurrent crowdsensing campaigns sharing one device fleet.

The paper's vision is that Sense-Aid lets campaigns be rolled out
cheaply, so several applications — here a weather mapper, a noise
mapper, and an air-quality campaign — run tasks over the *same*
population concurrently.  Sense-Aid schedules all of them, devices
batch whatever is pending into each radio tail, and the selector keeps
the load spread fairly.

Run:  python examples/multi_campaign.py
"""

from __future__ import annotations

from repro.analysis.fairness import fairness_report, jain_index
from repro.cellular.enodeb import TowerRegistry, grid_towers
from repro.cellular.network import CellularNetwork
from repro.clientlib import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer
from repro.devices.sensors import SensorType
from repro.environment.campus import CS_DEPARTMENT, STUDENT_UNION, default_campus
from repro.environment.population import PopulationConfig, build_population
from repro.serverlib import CrowdsensingAppServer
from repro.sim.engine import Simulator

DURATION_S = 5400.0


def main() -> None:
    sim = Simulator(seed=2024)
    campus = default_campus()
    registry = TowerRegistry(grid_towers(campus.width_m, campus.height_m))
    network = CellularNetwork(sim)
    devices = build_population(sim, campus, PopulationConfig(size=20))
    server = SenseAidServer(
        sim, registry, network, SenseAidConfig(mode=ServerMode.COMPLETE)
    )
    for device in devices:
        SenseAidClient(sim, device, server, network).register()

    # Three independent applications, staggered sampling instants.
    weather = CrowdsensingAppServer(server, "weather")
    noise = CrowdsensingAppServer(server, "noise-map")
    air = CrowdsensingAppServer(server, "air-quality")

    weather.task(
        SensorType.BAROMETER,
        campus.site(CS_DEPARTMENT).position,
        area_radius_m=800.0,
        spatial_density=3,
        sampling_period_s=300.0,
        sampling_duration_s=DURATION_S,
    )
    noise.task(
        SensorType.MICROPHONE,
        campus.site(STUDENT_UNION).position,
        area_radius_m=800.0,
        spatial_density=2,
        start_time=100.0,
        end_time=100.0 + DURATION_S,
        sampling_period_s=300.0,
    )
    air.task(
        SensorType.HYGROMETER,
        campus.site(CS_DEPARTMENT).position,
        area_radius_m=800.0,
        spatial_density=2,
        start_time=200.0,
        end_time=200.0 + DURATION_S,
        sampling_period_s=300.0,
    )

    sim.run(until=DURATION_S + 300.0)
    server.shutdown()

    print("Concurrent campaigns over one 20-device fleet (90 min):")
    for app in (weather, noise, air):
        print(f"  {app.name:12s} {len(app.readings):3d} readings "
              f"from {app.distinct_devices()} devices")

    counts = server.selections_per_device()
    report = fairness_report(counts)
    print()
    print(f"selector executions : {len(server.selection_log)}")
    print(f"devices used        : {report['devices']}")
    print(f"selections/device   : min={report['min_selections']} "
          f"max={report['max_selections']}")
    print(f"Jain fairness index : {report['jain_index']:.3f}")

    energies = [d.crowdsensing_energy_j() for d in devices]
    print(f"energy jain index   : {jain_index([e for e in energies if e > 0]):.3f}")
    print(f"total energy        : {sum(energies):.1f} J "
          f"(max device {max(energies):.1f} J, "
          f"budget 496 J per device)")


if __name__ == "__main__":
    main()
