"""Quickstart: one crowdsensing task through the full Sense-Aid stack.

Builds a simulated campus world (LTE towers, 20 users with phones,
background traffic), starts a Sense-Aid server at the cellular edge,
registers every device, submits one barometer task from an application
server, and prints what came back and what it cost.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.cellular.enodeb import TowerRegistry, grid_towers
from repro.cellular.network import CellularNetwork
from repro.clientlib import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer
from repro.devices.sensors import SensorType
from repro.environment.campus import CS_DEPARTMENT, default_campus
from repro.environment.population import PopulationConfig, build_population
from repro.serverlib import CrowdsensingAppServer
from repro.sim.engine import Simulator


def main() -> None:
    # --- the world -----------------------------------------------------
    sim = Simulator(seed=42)
    campus = default_campus()
    registry = TowerRegistry(grid_towers(campus.width_m, campus.height_m))
    network = CellularNetwork(sim)
    devices = build_population(sim, campus, PopulationConfig(size=20))

    # --- Sense-Aid at the cellular edge ---------------------------------
    server = SenseAidServer(
        sim, registry, network, SenseAidConfig(mode=ServerMode.COMPLETE)
    )
    for device in devices:
        SenseAidClient(sim, device, server, network).register()

    # --- a crowdsensing application -------------------------------------
    app = CrowdsensingAppServer(server, "weather-map")
    task_id = app.task(
        SensorType.BAROMETER,
        campus.site(CS_DEPARTMENT).position,
        area_radius_m=1000.0,
        spatial_density=2,           # only 2 devices needed per sample
        sampling_period_s=600.0,     # one sample every 10 minutes
        sampling_duration_s=5400.0,  # for 90 minutes
    )

    # --- run 90 simulated minutes ---------------------------------------
    sim.run(until=5460.0)
    server.shutdown()

    # --- results ---------------------------------------------------------
    print(f"task {task_id}: {len(app.readings)} readings delivered")
    print(f"mean pressure: {app.mean_value(task_id):.2f} hPa")
    print(f"distinct devices used: {app.distinct_devices()}")
    total = sum(d.crowdsensing_energy_j() for d in devices)
    print(f"total crowdsensing energy across 20 devices: {total:.2f} J")
    print(f"requests satisfied: {server.stats.requests_satisfied}"
          f"/{server.stats.requests_issued}")
    print("selection counts (fairness):", server.selections_per_device())


if __name__ == "__main__":
    main()
