"""Reliable, private crowdsensing: truth discovery + k-anonymity.

Demonstrates the reliability/privacy extension set on one campaign:

- one participant's barometer is broken (reads ~40 hPa high);
- the Sense-Aid server runs with a k-anonymity privacy filter, so the
  application only ever sees per-application pseudonyms, and only once
  two distinct devices have reported per sampling instant;
- the application runs CRH truth discovery over the readings it
  received, identifies the unreliable pseudonym, and recovers a clean
  pressure estimate despite the faulty sensor.

Run:  python examples/reliable_sensing.py
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.truth import discover_truth, reliability_scores
from repro.cellular.enodeb import TowerRegistry, grid_towers
from repro.cellular.network import CellularNetwork
from repro.clientlib import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.privacy import PrivacyPolicy
from repro.core.server import SenseAidServer
from repro.devices.sensors import SensorType
from repro.environment.campus import CS_DEPARTMENT, default_campus
from repro.environment.population import PopulationConfig, build_population
from repro.serverlib import CrowdsensingAppServer
from repro.sim.engine import Simulator

DURATION_S = 3 * 3600.0
BROKEN_BIAS_HPA = 40.0


def main() -> None:
    sim = Simulator(seed=17)
    campus = default_campus()
    registry = TowerRegistry(grid_towers(campus.width_m, campus.height_m))
    network = CellularNetwork(sim)
    devices = build_population(
        sim,
        campus,
        PopulationConfig(size=12, heavy_user_fraction=0.25),
    )

    # Break one phone's barometer: a large constant bias.
    broken = devices[0]
    broken.sensors._pressure_bias = BROKEN_BIAS_HPA  # simulated hw fault
    print(f"{broken.device_id}'s barometer reads ~{BROKEN_BIAS_HPA:.0f} hPa high")

    server = SenseAidServer(
        sim,
        registry,
        network,
        SenseAidConfig(mode=ServerMode.COMPLETE),
        privacy_policy=PrivacyPolicy(k_anonymity=2),
    )
    for device in devices:
        SenseAidClient(sim, device, server, network).register()

    app = CrowdsensingAppServer(server, "clean-weather")
    task_id = app.task(
        SensorType.BAROMETER,
        campus.site(CS_DEPARTMENT).position,
        area_radius_m=1500.0,
        spatial_density=3,
        sampling_period_s=600.0,
        sampling_duration_s=DURATION_S,
    )
    sim.run(until=DURATION_S + 120.0)
    server.shutdown()

    readings = app.readings_for_task(task_id)
    print(f"readings delivered: {len(readings)} "
          f"(k=2 anonymity; {server.privacy.suppressed} suppressed)")

    # The app sees pseudonyms only — confirm nothing raw leaked.
    raw = {d.device_id for d in devices} | {d.imei_hash for d in devices}
    assert all(p.device_hash not in raw for p in readings)

    # Truth discovery over (pseudonym -> {request -> value}).
    claims = defaultdict(dict)
    for point in readings:
        claims[point.device_hash][point.request_id] = point.value
    result = discover_truth(claims)
    scores = reliability_scores(result)
    worst = min(scores, key=scores.get)
    print(f"least reliable pseudonym: {worst[:8]}… "
          f"(score {scores[worst]:.3f}; best peers ~1.0)")

    naive = sum(p.value for p in readings) / len(readings)
    robust = sum(result.truths.values()) / len(result.truths)
    print(f"naive mean pressure : {naive:8.2f} hPa (polluted by the fault)")
    print(f"robust truth        : {robust:8.2f} hPa")
    assert abs(robust - 1013.0) < abs(naive - 1013.0)


if __name__ == "__main__":
    main()
