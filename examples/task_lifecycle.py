"""Task lifecycle: dynamic updates, one-shot supplements, and deletion.

Exercises the rest of the paper's application API on a live campaign:
a road/traffic-condition application starts an accelerometer task,
tightens its spatial density mid-run with ``update_task_param()``,
fires a one-shot supplemental task (the paper's "tasks can be one-time
... to supplement data already being collected"), and finally retires
everything with ``delete_task()``.

Run:  python examples/task_lifecycle.py
"""

from __future__ import annotations

from repro.cellular.enodeb import TowerRegistry, grid_towers
from repro.cellular.network import CellularNetwork
from repro.clientlib import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer
from repro.devices.sensors import SensorType
from repro.environment.campus import EE_DEPARTMENT, default_campus
from repro.environment.population import PopulationConfig, build_population
from repro.serverlib import CrowdsensingAppServer
from repro.sim.engine import Simulator


def main() -> None:
    sim = Simulator(seed=7)
    campus = default_campus()
    registry = TowerRegistry(grid_towers(campus.width_m, campus.height_m))
    network = CellularNetwork(sim)
    devices = build_population(sim, campus, PopulationConfig(size=20))
    server = SenseAidServer(
        sim, registry, network, SenseAidConfig(mode=ServerMode.COMPLETE)
    )
    for device in devices:
        SenseAidClient(sim, device, server, network).register()

    app = CrowdsensingAppServer(server, "road-conditions")
    center = campus.site(EE_DEPARTMENT).position

    # Phase 1: a continuous vibration-sensing task.
    task_id = app.task(
        SensorType.ACCELEROMETER,
        center,
        area_radius_m=1000.0,
        spatial_density=2,
        sampling_period_s=300.0,
        sampling_duration_s=3600.0,
    )
    sim.run(until=1200.0)
    phase1 = len(app.readings_for_task(task_id))
    print(f"phase 1 (density 2): {phase1} readings after 20 min")

    # Phase 2: something interesting happened — densify the campaign.
    app.update_task_param(task_id, spatial_density=4, sampling_duration_s=1800.0)
    print("updated task: spatial density 2 -> 4")

    # And grab an immediate one-shot pressure snapshot at the same spot.
    one_shot = app.task(
        SensorType.BAROMETER,
        center,
        area_radius_m=1000.0,
        spatial_density=3,
    )
    sim.run(until=sim.now + 1800.0 + 120.0)
    phase2 = len(app.readings_for_task(task_id)) - phase1
    snapshot = app.readings_for_task(one_shot)
    print(f"phase 2 (density 4): {phase2} more readings")
    print(f"one-shot snapshot  : {len(snapshot)} pressure values "
          f"(mean {app.mean_value(one_shot):.1f} hPa)")

    # Phase 3: retire the campaign; nothing more should arrive.
    app.delete_task(task_id)
    before = len(app.readings)
    sim.run(until=sim.now + 1200.0)
    server.shutdown()
    print(f"after delete_task: {len(app.readings) - before} new readings (expect 0)")

    total = sum(d.crowdsensing_energy_j() for d in devices)
    print(f"total campaign energy: {total:.1f} J across {len(devices)} devices")


if __name__ == "__main__":
    main()
