"""Thin setup.py shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on environments whose setuptools predates
PEP 660 editable wheels (no ``wheel`` package available offline).
"""

from setuptools import setup

setup()
