"""Sense-Aid (Middleware '17) reproduction.

A network-as-a-service middleware for energy-efficient participatory
sensing, reproduced end-to-end on a deterministic discrete-event
simulation of a campus, an LTE RRC radio stack, and a fleet of mobile
devices.  See README.md for the architecture and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"

from repro.sim import Simulator

__all__ = ["Simulator", "__version__"]
