"""Analysis utilities: energy summaries, fairness metrics, radio-state
traces (the ARO-tool stand-in), and paper-style table rendering."""

from repro.analysis.energy import EnergySummary, savings_pct, summarize_devices
from repro.analysis.fairness import jain_index, selection_spread
from repro.analysis.tables import format_table
from repro.analysis.trace import RadioTraceRecorder, TraceSegment

__all__ = [
    "EnergySummary",
    "RadioTraceRecorder",
    "TraceSegment",
    "format_table",
    "jain_index",
    "savings_pct",
    "selection_spread",
    "summarize_devices",
]
