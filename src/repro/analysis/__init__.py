"""Analysis utilities: energy summaries, fairness metrics, radio-state
traces (the ARO-tool stand-in), paper-style table rendering, and
streaming accumulators for backend-resident data (see
:mod:`repro.analysis.streaming`)."""

from repro.analysis.energy import EnergySummary, savings_pct, summarize_devices
from repro.analysis.fairness import jain_index, selection_spread
from repro.analysis.streaming import (
    ClaimsAccumulator,
    StreamingHeatmap,
    StreamingLatency,
    StreamingMean,
    StreamingSelectionCounts,
    StreamingStateTime,
)
from repro.analysis.tables import format_table
from repro.analysis.trace import RadioTraceRecorder, TraceSegment

__all__ = [
    "ClaimsAccumulator",
    "EnergySummary",
    "RadioTraceRecorder",
    "StreamingHeatmap",
    "StreamingLatency",
    "StreamingMean",
    "StreamingSelectionCounts",
    "StreamingStateTime",
    "TraceSegment",
    "format_table",
    "jain_index",
    "savings_pct",
    "selection_spread",
    "summarize_devices",
]
