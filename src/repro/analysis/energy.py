"""Energy accounting helpers used by every experiment."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

from repro.devices.battery import TWO_PERCENT_BUDGET_J
from repro.devices.device import SimDevice


@dataclass(frozen=True)
class EnergySummary:
    """Crowdsensing energy across one framework arm's devices."""

    total_j: float
    per_device_j: Dict[str, float]
    device_count: int

    @property
    def mean_per_device_j(self) -> float:
        if self.device_count == 0:
            return 0.0
        return self.total_j / self.device_count

    @property
    def max_per_device_j(self) -> float:
        if not self.per_device_j:
            return 0.0
        return max(self.per_device_j.values())

    def devices_over_2pct(self) -> int:
        """How many devices exceeded the paper's 496 J tolerance bar."""
        return sum(
            1 for j in self.per_device_j.values() if j > TWO_PERCENT_BUDGET_J
        )


def summarize_devices(devices: Sequence[SimDevice]) -> EnergySummary:
    """Aggregate crowdsensing energy over a device list."""
    per_device = {d.device_id: d.crowdsensing_energy_j() for d in devices}
    return EnergySummary(
        total_j=sum(per_device.values()),
        per_device_j=per_device,
        device_count=len(devices),
    )


def savings_pct(sense_aid_j: float, other_j: float) -> float:
    """The paper's energy-saving metric: ``1 − E_SA / E_other``, in %.

    Positive means Sense-Aid used less energy.  Returns 0.0 when the
    comparison framework used no energy (nothing to save against).
    """
    if sense_aid_j < 0 or other_j < 0:
        raise ValueError("energies must be non-negative")
    if other_j == 0:
        return 0.0
    return (1.0 - sense_aid_j / other_j) * 100.0


def summarize_savings(
    sense_aid: EnergySummary, others: Dict[str, EnergySummary]
) -> Dict[str, float]:
    """Savings of Sense-Aid over each comparison framework (totals)."""
    return {
        name: savings_pct(sense_aid.total_j, other.total_j)
        for name, other in others.items()
    }


def min_mean_max(values: Iterable[float]) -> tuple:
    """(min, mean, max) of a value sweep — Table 2's reporting shape."""
    values = list(values)
    if not values:
        raise ValueError("need at least one value")
    return (min(values), sum(values) / len(values), max(values))
