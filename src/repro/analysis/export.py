"""CSV export of experiment results.

Experiment `run()` functions return structured dataclasses; this
module flattens the common result shapes into CSV files so downstream
users can plot the reproduced figures with their tool of choice.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Sequence


def rows_to_csv(header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as CSV text (RFC-4180 quoting)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(header))
    for row in rows:
        if len(row) != len(header):
            raise ValueError(
                f"row has {len(row)} fields but header has {len(header)}"
            )
        writer.writerow(list(row))
    return buffer.getvalue()


def write_csv(
    path: str, header: Sequence[str], rows: Iterable[Sequence[object]]
) -> None:
    """Write rows to a CSV file."""
    with open(path, "w", encoding="utf-8", newline="") as f:
        f.write(rows_to_csv(header, rows))


def exp1_to_csv(result) -> str:
    """Experiment-1 result → CSV: one row per radius with all arms."""
    header = [
        "radius_m",
        "qualified_mean",
        "periodic_j",
        "pcs_j",
        "sense_aid_basic_j",
        "sense_aid_complete_j",
    ]
    rows = [
        (
            point.radius_m,
            round(point.qualified_mean, 2),
            round(point.periodic.energy.total_j, 3),
            round(point.pcs.energy.total_j, 3),
            round(point.basic.energy.total_j, 3),
            round(point.complete.energy.total_j, 3),
        )
        for point in result.points
    ]
    return rows_to_csv(header, rows)


def exp2_to_csv(result) -> str:
    """Experiment-2 result → CSV: per-device energy per period."""
    header = [
        "period_s",
        "periodic_j_per_device",
        "pcs_j_per_device",
        "sense_aid_basic_j_per_device",
        "sense_aid_complete_j_per_device",
    ]
    rows = []
    for point in result.points:
        energy = point.energy_per_device()
        rows.append(
            (
                point.period_s,
                round(energy["periodic"], 3),
                round(energy["pcs"], 3),
                round(energy["basic"], 3),
                round(energy["complete"], 3),
            )
        )
    return rows_to_csv(header, rows)


def exp3_to_csv(result) -> str:
    """Experiment-3 result → CSV: per-device energy per task count."""
    header = [
        "tasks",
        "periodic_j_per_device",
        "pcs_j_per_device",
        "sense_aid_basic_j_per_device",
        "sense_aid_complete_j_per_device",
    ]
    rows = []
    for point in result.points:
        energy = point.energy_per_device()
        rows.append(
            (
                point.task_count,
                round(energy["periodic"], 3),
                round(energy["pcs"], 3),
                round(energy["basic"], 3),
                round(energy["complete"], 3),
            )
        )
    return rows_to_csv(header, rows)


def fig14_to_csv(result) -> str:
    """Figure-14 result → CSV: PCS energy and ratios per accuracy."""
    header = ["accuracy", "pcs_j_per_device", "ratio_vs_basic", "ratio_vs_complete"]
    rows = [
        (
            point.accuracy,
            round(point.pcs_energy_per_device_j, 3),
            round(point.ratio_vs_basic, 4),
            round(point.ratio_vs_complete, 4),
        )
        for point in result.points
    ]
    return rows_to_csv(header, rows)


def selection_log_to_csv(selection_log) -> str:
    """A Sense-Aid selection log (Fig. 9) → CSV, one row per round."""
    header = ["time_s", "request_id", "qualified", "selected"]
    rows = [
        (
            event.time,
            event.request_id,
            ";".join(event.qualified),
            ";".join(event.selected),
        )
        for event in selection_log
    ]
    return rows_to_csv(header, rows)
