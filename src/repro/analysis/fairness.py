"""Fairness metrics for the device selector.

The paper's Fig. 9 argues fairness by showing each of 11 qualified
devices being selected "either once or twice" across 9 rounds of 2
picks.  We quantify the same property two ways: the spread between the
most- and least-selected device, and Jain's fairness index over
selection counts.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple


def jain_index(counts: Iterable[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n·Σx²)`` ∈ (0, 1].

    1.0 means perfectly even allocation.  An empty or all-zero input
    returns 1.0 (nothing was allocated, so nothing was unfair).
    """
    values = [float(c) for c in counts]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 1.0
    return total * total / (len(values) * squares)


def selection_spread(counts: Iterable[int]) -> Tuple[int, int]:
    """(min, max) selections across devices; equal values = fair."""
    values = list(counts)
    if not values:
        return (0, 0)
    return (min(values), max(values))


def ideal_spread(total_selections: int, device_count: int) -> Tuple[int, int]:
    """The fairest possible (min, max) for a given workload.

    E.g. 18 selections over 11 devices can at best be (1, 2) — exactly
    the Fig. 9 outcome.
    """
    if device_count <= 0:
        raise ValueError("device_count must be positive")
    if total_selections < 0:
        raise ValueError("total_selections must be non-negative")
    base, extra = divmod(total_selections, device_count)
    if extra == 0:
        return (base, base)
    return (base, base + 1)


def is_fair_rotation(
    per_device_counts: Dict[str, int], total_selections: int
) -> bool:
    """Whether selection counts match the ideal rotation's spread.

    Devices that were never qualified are not in ``per_device_counts``
    and do not count against fairness.
    """
    if not per_device_counts:
        return total_selections == 0
    lo, hi = ideal_spread(total_selections, len(per_device_counts))
    actual_lo, actual_hi = selection_spread(per_device_counts.values())
    return actual_lo >= lo and actual_hi <= hi


def fairness_report(per_device_counts: Dict[str, int]) -> Dict[str, float]:
    """A compact fairness summary for experiment output."""
    counts = list(per_device_counts.values())
    lo, hi = selection_spread(counts)
    return {
        "devices": len(counts),
        "total_selections": sum(counts),
        "min_selections": lo,
        "max_selections": hi,
        "jain_index": jain_index(counts),
    }
