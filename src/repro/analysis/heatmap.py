"""Spatial interpolation and ASCII heat maps.

The paper's motivating applications build *hyperlocal maps* (pressure
maps, noise maps) from point readings.  This module turns a handful of
georeferenced readings into a gridded field via inverse-distance
weighting and renders it as an ASCII heat map — the closest a terminal
gets to Pressurenet's pressure overlay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.environment.geometry import Point

#: Glyph ramp from low to high values.
_RAMP = " .:-=+*#%@"


@dataclass(frozen=True)
class SpatialSample:
    """One georeferenced reading."""

    position: Point
    value: float


def idw_interpolate(
    samples: Sequence[SpatialSample],
    at: Point,
    *,
    power: float = 2.0,
    epsilon_m: float = 1.0,
) -> float:
    """Inverse-distance-weighted estimate of the field at ``at``."""
    if not samples:
        raise ValueError("need at least one sample")
    if power <= 0:
        raise ValueError("power must be positive")
    numerator = 0.0
    denominator = 0.0
    for sample in samples:
        distance = max(epsilon_m, sample.position.distance_to(at))
        weight = 1.0 / distance**power
        numerator += weight * sample.value
        denominator += weight
    return numerator / denominator


def grid_field(
    samples: Sequence[SpatialSample],
    width_m: float,
    height_m: float,
    *,
    cols: int = 40,
    rows: int = 16,
) -> List[List[float]]:
    """Interpolate the field onto a rows×cols grid over a rectangle."""
    if cols < 1 or rows < 1:
        raise ValueError("grid must have at least one cell")
    grid = []
    for r in range(rows):
        # Row 0 at the top (max y) so the rendering reads like a map.
        y = height_m * (rows - 0.5 - r) / rows
        row = []
        for c in range(cols):
            x = width_m * (c + 0.5) / cols
            row.append(idw_interpolate(samples, Point(x, y)))
        grid.append(row)
    return grid


def render_heatmap(
    samples: Sequence[SpatialSample],
    width_m: float,
    height_m: float,
    *,
    cols: int = 40,
    rows: int = 16,
    title: str = "",
    legend_format: str = "{:.1f}",
) -> str:
    """ASCII heat map of the interpolated field, with a value legend."""
    grid = grid_field(samples, width_m, height_m, cols=cols, rows=rows)
    flat = [v for row in grid for v in row]
    lo, hi = min(flat), max(flat)
    span = hi - lo

    def glyph(value: float) -> str:
        if span == 0.0:
            return _RAMP[len(_RAMP) // 2]
        index = int((value - lo) / span * (len(_RAMP) - 1))
        return _RAMP[index]

    lines = []
    if title:
        lines.append(title)
    border = "+" + "-" * cols + "+"
    lines.append(border)
    for row in grid:
        lines.append("|" + "".join(glyph(v) for v in row) + "|")
    lines.append(border)
    lines.append(
        f"low {legend_format.format(lo)} {_RAMP[0]!r} … "
        f"{_RAMP[-1]!r} {legend_format.format(hi)} high"
    )
    return "\n".join(lines)
