"""Data-quality metrics: completeness, density satisfaction, latency.

The paper's energy comparisons all carry the caveat "under the
prerequisite of not harming crowdsensing data": Sense-Aid is only
allowed to win on energy if applications still get the samples they
asked for, on time.  This module quantifies that prerequisite so
experiments and benchmarks can assert it instead of assuming it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.baselines.common import BaselineFramework
from repro.core.server import SenseAidServer, SensedDataPoint


@dataclass(frozen=True)
class QualityReport:
    """How well a framework met a campaign's data requirements."""

    requests_total: int
    requests_satisfied: int
    data_points: int

    @property
    def completeness(self) -> float:
        """Fraction of sampling instants that got their full density."""
        if self.requests_total == 0:
            return 1.0
        return self.requests_satisfied / self.requests_total


def sense_aid_quality(server: SenseAidServer) -> QualityReport:
    """Quality from a Sense-Aid server's own accounting.

    A request counts as satisfied when every assigned device's reading
    arrived (the server's ``requests_satisfied`` counter); waitlisted
    requests that expired count against completeness.
    """
    return QualityReport(
        requests_total=server.stats.requests_issued,
        requests_satisfied=server.stats.requests_satisfied,
        data_points=server.stats.data_points,
    )


def baseline_quality(framework: BaselineFramework) -> QualityReport:
    """Quality for a baseline, from its collector's delivered uploads.

    A request is satisfied when at least the task's spatial density of
    distinct devices delivered readings for it.
    """
    density_by_task: Dict[int, int] = {
        task.task_id: task.spatial_density for task in framework.tasks
    }
    devices_per_request: Dict[str, set] = defaultdict(set)
    task_of_request: Dict[str, int] = {}
    for message in framework.collector.delivered:
        request_id = message.payload.get("request_id")
        device_id = message.payload.get("device_id")
        if request_id is None or device_id is None:
            continue
        devices_per_request[request_id].add(device_id)
        task_id = int(request_id.split("-")[0][len("task"):])
        task_of_request[request_id] = task_id
    satisfied = 0
    for request_id in framework.stats.participants_per_request:
        task_id = task_of_request.get(request_id)
        needed = density_by_task.get(task_id, 1) if task_id is not None else 1
        if len(devices_per_request.get(request_id, ())) >= needed:
            satisfied += 1
    return QualityReport(
        requests_total=framework.stats.requests_issued,
        requests_satisfied=satisfied,
        data_points=framework.stats.data_points_delivered,
    )


@dataclass(frozen=True)
class LatencyStats:
    """Distribution of sensing→delivery latency, in seconds."""

    count: int
    mean_s: float
    max_s: float
    p95_s: float


def delivery_latency(points: Sequence[SensedDataPoint]) -> LatencyStats:
    """Latency from sensor acquisition to application delivery."""
    if not points:
        return LatencyStats(count=0, mean_s=0.0, max_s=0.0, p95_s=0.0)
    latencies: List[float] = sorted(
        max(0.0, p.delivered_at - p.sensed_at) for p in points
    )
    index_95 = min(len(latencies) - 1, int(0.95 * len(latencies)))
    return LatencyStats(
        count=len(latencies),
        mean_s=sum(latencies) / len(latencies),
        max_s=latencies[-1],
        p95_s=latencies[index_95],
    )
