"""One-shot reproduction report.

Runs a chosen set of experiments and assembles their printed outputs
into a single text report, with a header recording the seed and
package version — the artifact a reviewer asks for ("send me the run
that produced these numbers").
"""

from __future__ import annotations

import io
import sys
from contextlib import redirect_stdout
from typing import List, Optional, Sequence

import repro
from repro.cli import RUN_ORDER, run_experiment
from repro.runner import ExperimentEngine

HEADER_RULE = "=" * 72


def generate_report(
    *,
    seed: int = 7,
    experiments: Optional[Sequence[str]] = None,
    engine: Optional["ExperimentEngine"] = None,
) -> str:
    """Run ``experiments`` (default: everything) and build the report."""
    names: List[str] = list(experiments) if experiments is not None else list(RUN_ORDER)
    sections = [
        "Sense-Aid reproduction report",
        f"package version: {repro.__version__}",
        f"scenario seed: {seed}",
        f"python: {sys.version.split()[0]}",
        HEADER_RULE,
    ]
    for name in names:
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            run_experiment(name, seed=seed, engine=engine)
        sections.append(f"[{name}]")
        sections.append(buffer.getvalue().rstrip())
        sections.append(HEADER_RULE)
    return "\n\n".join(sections) + "\n"


def write_report(
    path: str,
    *,
    seed: int = 7,
    experiments: Optional[Sequence[str]] = None,
    engine: Optional[ExperimentEngine] = None,
) -> str:
    """Generate and save a report; returns the report text."""
    report = generate_report(seed=seed, experiments=experiments, engine=engine)
    with open(path, "w", encoding="utf-8") as f:
        f.write(report)
    return report
