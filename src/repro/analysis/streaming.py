"""Streaming/incremental analysis accumulators.

The batch analysis helpers (:mod:`repro.analysis.fairness`,
``quality``, ``heatmap``, ``trace``, ``truth``) all take fully
materialised sequences — fine for a 9-round campaign, hopeless for a
million-reading soak on the sqlite backend, where the whole point is
that readings never sit in process memory at once.  Each accumulator
here folds one observation at a time and holds only O(state) memory:

* :class:`StreamingSelectionCounts` — per-device selection counts and
  the Fig. 9 fairness report, folded from
  :class:`~repro.core.server.SelectionEvent` s (or their dicts as
  stored on the backend's ``selection_log``).
* :class:`StreamingMean` — running mean over values in arrival order;
  the same left-to-right additions the batch ``sum()`` performs, so
  the result is bit-identical to the batch mean on every backend.
* :class:`StreamingLatency` — count/mean/max and *exact* p95 of
  delivery latency.  Exact quantiles of an arbitrary stream require
  retaining the values (any one-pass selection needs Ω(n) memory —
  a kept-tail heap breaks the moment its target size grows past an
  already-discarded element), so each latency is retained as one
  compact 8-byte double rather than the reading that carried it;
  count/mean/max still fold in O(1).  (The batch mean sums in
  *sorted* order, so the streaming mean matches it to float
  tolerance, not bit-for-bit.)
* :class:`StreamingHeatmap` — per-cell IDW numerator/denominator
  accumulators.  Bit-identical to :func:`~repro.analysis.heatmap.
  grid_field`, because for each cell the weighted sums accumulate in
  sample order either way.
* :class:`StreamingStateTime` — per-radio-state occupancy totals
  folded from transitions, no segment list retained.
* :class:`ClaimsAccumulator` — builds the truth-discovery claims
  matrix incrementally from a reading stream (O(sources × items), not
  O(readings)).
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.analysis.fairness import fairness_report
from repro.analysis.heatmap import SpatialSample
from repro.analysis.quality import LatencyStats
from repro.analysis.truth import TruthDiscoveryResult, discover_truth
from repro.environment.geometry import Point


class StreamingSelectionCounts:
    """Fold selection events into per-device counts, one at a time."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self.events = 0

    def add(self, selected: Iterable[str]) -> None:
        """Fold one selector execution's picked device ids."""
        self.events += 1
        for device_id in selected:
            self._counts[device_id] = self._counts.get(device_id, 0) + 1

    def add_event(self, event) -> None:
        """Fold a ``SelectionEvent`` (or its stored dict form)."""
        selected = event["selected"] if isinstance(event, dict) else event.selected
        self.add(selected)

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def report(self) -> Dict[str, float]:
        """The same summary ``fairness_report`` computes in batch."""
        return fairness_report(self._counts)


class StreamingMean:
    """Running mean with the batch ``sum()``'s exact addition order."""

    def __init__(self) -> None:
        self.count = 0
        self._total = 0.0

    def add(self, value: float) -> None:
        self._total += value
        self.count += 1

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self._total / self.count


class StreamingLatency:
    """Exact count/mean/max/p95 of delivery latency.

    Feed it latencies (or reading points) in arrival order.  Count,
    mean, and max fold in O(1).  The p95 is exact, which on an
    arbitrary stream forces retaining the values: a "keep only the
    top ``n - int(0.95·n)``" heap fails when that target size grows
    past an element it already discarded (twenty 1.0s then 0.0s —
    the second 1.0 becomes the p95 but is gone).  So each latency is
    kept as one clamped 8-byte double in an ``array('d')`` — the
    readings themselves still never materialise — and ``stats()``
    picks the same ``min(n-1, int(0.95·n))`` sorted element the batch
    :func:`repro.analysis.quality.delivery_latency` picks.
    """

    def __init__(self) -> None:
        self.count = 0
        self._sum = 0.0
        self._max = 0.0
        #: One clamped latency per observation, 8 bytes each.
        self._values = array("d")

    def add(self, latency_s: float) -> None:
        value = max(0.0, latency_s)
        self.count += 1
        self._sum += value
        if value > self._max:
            self._max = value
        self._values.append(value)

    def add_point(self, point) -> None:
        """Fold one ``SensedDataPoint`` (sensing→delivery latency)."""
        self.add(point.delivered_at - point.sensed_at)

    def stats(self) -> LatencyStats:
        if self.count == 0:
            return LatencyStats(count=0, mean_s=0.0, max_s=0.0, p95_s=0.0)
        ordered = sorted(self._values)
        index_95 = min(self.count - 1, int(0.95 * self.count))
        return LatencyStats(
            count=self.count,
            mean_s=self._sum / self.count,
            max_s=self._max,
            p95_s=ordered[index_95],
        )


class StreamingHeatmap:
    """Incremental IDW field on a fixed grid.

    Equivalent to running :func:`repro.analysis.heatmap.grid_field`
    over the full sample list — bit-identical, in fact, because each
    cell's weighted numerator/denominator accumulate in sample order
    under both formulations.
    """

    def __init__(
        self,
        width_m: float,
        height_m: float,
        *,
        cols: int = 40,
        rows: int = 16,
        power: float = 2.0,
        epsilon_m: float = 1.0,
    ) -> None:
        if cols < 1 or rows < 1:
            raise ValueError("grid must have at least one cell")
        if power <= 0:
            raise ValueError("power must be positive")
        self.cols = cols
        self.rows = rows
        self.power = power
        self.epsilon_m = epsilon_m
        self.samples = 0
        self._centers: List[List[Point]] = []
        self._num: List[List[float]] = []
        self._den: List[List[float]] = []
        for r in range(rows):
            # Row 0 at the top (max y), exactly like ``grid_field``.
            y = height_m * (rows - 0.5 - r) / rows
            self._centers.append(
                [Point(width_m * (c + 0.5) / cols, y) for c in range(cols)]
            )
            self._num.append([0.0] * cols)
            self._den.append([0.0] * cols)

    def add(self, sample: SpatialSample) -> None:
        self.add_value(sample.position, sample.value)

    def add_value(self, position: Point, value: float) -> None:
        self.samples += 1
        power = self.power
        epsilon = self.epsilon_m
        for r in range(self.rows):
            centers = self._centers[r]
            num = self._num[r]
            den = self._den[r]
            for c in range(self.cols):
                distance = max(epsilon, position.distance_to(centers[c]))
                weight = 1.0 / distance**power
                num[c] += weight * value
                den[c] += weight

    def grid(self) -> List[List[float]]:
        """The interpolated field; needs at least one sample."""
        if self.samples == 0:
            raise ValueError("need at least one sample")
        return [
            [self._num[r][c] / self._den[r][c] for c in range(self.cols)]
            for r in range(self.rows)
        ]


class StreamingStateTime:
    """Per-radio-state occupancy totals folded from transitions.

    A memory-flat replacement for summing
    :class:`~repro.analysis.trace.RadioTraceRecorder` segments: feed
    it every ``(old, new, time)`` transition and ask for
    :meth:`time_in_state` at any cut-off.  Attach with
    ``modem.add_state_listener(lambda old, new:
    tracker.transition(old, new, sim.now))``.
    """

    def __init__(self, initial_state, start: float = 0.0) -> None:
        self._totals: Dict[Hashable, float] = {}
        self._open_state = initial_state
        self._open_since = start
        self.transitions = 0

    def transition(self, old, new, now: float) -> None:
        if old is not self._open_state:
            raise ValueError(
                f"transition from {old!r} but {self._open_state!r} is open"
            )
        self.transitions += 1
        held = max(0.0, now - self._open_since)
        self._totals[old] = self._totals.get(old, 0.0) + held
        self._open_state = new
        self._open_since = now

    @property
    def current_state(self):
        return self._open_state

    def time_in_state(self, state, *, until: float) -> float:
        total = self._totals.get(state, 0.0)
        if state is self._open_state:
            total += max(0.0, until - self._open_since)
        return total

    def totals(self, *, until: float) -> Dict[Hashable, float]:
        states = set(self._totals) | {self._open_state}
        return {s: self.time_in_state(s, until=until) for s in states}


class ClaimsAccumulator:
    """Build the truth-discovery claims matrix from a reading stream.

    Memory is O(sources × items) — the matrix itself — regardless of
    how many readings flow through; a source re-claiming an item
    overwrites (last write wins), matching how a claims mapping would
    be built from a stream anyway.
    """

    def __init__(self) -> None:
        self._claims: Dict[Hashable, Dict[Hashable, float]] = {}
        self.readings = 0

    def add_claim(self, source: Hashable, item: Hashable, value: float) -> None:
        self.readings += 1
        self._claims.setdefault(source, {})[item] = value

    def add_point(self, point, *, item: Optional[Hashable] = None) -> None:
        """Fold one ``SensedDataPoint``; ``item`` defaults to task id."""
        self.add_claim(
            point.device_hash,
            point.task_id if item is None else item,
            point.value,
        )

    @property
    def sources(self) -> int:
        return len(self._claims)

    def claims(self) -> Dict[Hashable, Dict[Hashable, float]]:
        return {s: dict(c) for s, c in self._claims.items()}

    def discover(
        self, *, max_iterations: int = 50, tolerance: float = 1e-6
    ) -> TruthDiscoveryResult:
        return discover_truth(
            self._claims, max_iterations=max_iterations, tolerance=tolerance
        )
