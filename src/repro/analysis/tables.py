"""Plain-text table rendering for experiment output.

Every experiment's ``main()`` prints the rows the corresponding paper
table/figure reports; this module keeps the formatting uniform.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
    float_format: str = "{:.1f}",
) -> str:
    """Render an aligned monospace table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_bar_chart(
    rows: Sequence[tuple],
    *,
    width: int = 50,
    title: str = "",
    value_format: str = "{:.1f}",
) -> str:
    """Horizontal ASCII bars for ``(label, value)`` rows.

    Bars scale to the maximum value; used by experiment ``main()``s to
    echo the paper's bar figures in the terminal.
    """
    rows = list(rows)
    if not rows:
        raise ValueError("need at least one row")
    if width < 1:
        raise ValueError("width must be positive")
    label_width = max(len(str(label)) for label, _ in rows)
    peak = max(value for _, value in rows)
    lines = [title] if title else []
    for label, value in rows:
        if peak <= 0:
            bar = ""
        else:
            bar = "#" * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(
            f"{str(label).rjust(label_width)} | "
            f"{bar.ljust(width)} {value_format.format(value)}"
        )
    return "\n".join(lines)


def format_percent(value: float) -> str:
    """Render a percentage the way the paper's Table 2 does."""
    return f"{value:.1f}%"


def format_min_mean_max(lo: float, mean: float, hi: float) -> str:
    """Table 2's "Average (Min, Max)" cell format."""
    return f"{mean:.1f}% ({lo:.1f}%, {hi:.1f}%)"
