"""Radio-state trace recording — the stand-in for AT&T's ARO tool.

The paper's Fig. 6 is an ARO screenshot of one device's LTE radio
states around a crowdsensing upload in the tail.  The recorder attaches
to a modem, logs every state transition, and renders the timeline as
segments or as an ASCII strip chart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cellular.rrc import RadioModem, RRCState
from repro.sim.engine import Simulator

_STATE_GLYPH = {
    RRCState.IDLE: ".",
    RRCState.PROMOTING: "P",
    RRCState.ACTIVE: "A",
    RRCState.TAIL: "t",
}


@dataclass(frozen=True)
class TraceSegment:
    """One contiguous occupancy of a radio state."""

    state: RRCState
    start: float
    end: Optional[float]  # None while the occupancy is still open

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start


class RadioTraceRecorder:
    """Attach to a modem; collect its state timeline."""

    def __init__(self, sim: Simulator, modem: RadioModem) -> None:
        self._sim = sim
        self._modem = modem
        self._segments: List[TraceSegment] = [
            TraceSegment(modem.state, sim.now, None)
        ]
        modem.add_state_listener(self._on_transition)

    def _on_transition(self, old: RRCState, new: RRCState) -> None:
        now = self._sim.now
        open_segment = self._segments[-1]
        self._segments[-1] = TraceSegment(open_segment.state, open_segment.start, now)
        self._segments.append(TraceSegment(new, now, None))

    def segments(self, *, closed_at: Optional[float] = None) -> List[TraceSegment]:
        """The timeline; optionally close the open segment at a time."""
        result = list(self._segments)
        if closed_at is not None and result and result[-1].end is None:
            last = result[-1]
            result[-1] = TraceSegment(
                last.state, last.start, max(last.start, closed_at)
            )
        return result

    def time_in_state(self, state: RRCState, *, until: float) -> float:
        """Total seconds in ``state`` up to time ``until``."""
        total = 0.0
        for segment in self.segments(closed_at=until):
            end = segment.end if segment.end is not None else until
            if segment.state is state:
                total += max(0.0, min(end, until) - segment.start)
        return total

    def tail_segments(self, *, until: float) -> List[TraceSegment]:
        """The tail occupancies (the Fig. 6 object of interest)."""
        return [
            s for s in self.segments(closed_at=until) if s.state is RRCState.TAIL
        ]

    def render_ascii(
        self,
        *,
        until: float,
        start: float = 0.0,
        resolution_s: float = 0.5,
        width: int = 120,
    ) -> str:
        """An ASCII strip chart: one glyph per ``resolution_s``.

        ``.`` idle, ``P`` promoting, ``A`` active, ``t`` tail — the
        same visual story Fig. 6 tells.  Rendering begins at ``start``.
        """
        if resolution_s <= 0:
            raise ValueError("resolution_s must be positive")
        if start < 0 or start > until:
            raise ValueError("start must be within [0, until]")
        segments = self.segments(closed_at=until)
        glyphs = []
        t = max(start, segments[0].start)
        index = 0
        while t < until and len(glyphs) < width:
            while index < len(segments) - 1 and (
                segments[index].end is not None and segments[index].end <= t
            ):
                index += 1
            glyphs.append(_STATE_GLYPH[segments[index].state])
            t += resolution_s
        return "".join(glyphs)
