"""Truth discovery over crowdsensed readings.

Paper §7 points at truth-discovery work (Meng et al., SenSys'15) for
collecting *reliable* data and notes it "can be incorporated as
another factor in our device selector".  This module supplies the
algorithmic half: CRH-style iterative truth discovery over continuous
readings — alternately estimating per-item truths as reliability-
weighted means and per-source weights from each source's distance to
the truths.  The resulting weights can seed
``DeviceRecord.reliability`` (the selector factor) and the truths give
an application a robust aggregate even with faulty or lying sensors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Tuple

#: Claims shape: source -> {item -> claimed value}.
Claims = Mapping[Hashable, Mapping[Hashable, float]]


@dataclass(frozen=True)
class TruthDiscoveryResult:
    """Converged truths and source weights."""

    truths: Dict[Hashable, float]
    weights: Dict[Hashable, float]
    iterations: int

    def normalized_weights(self) -> Dict[Hashable, float]:
        """Weights scaled to sum to 1 (a reliability distribution)."""
        total = sum(self.weights.values())
        if total <= 0:
            n = len(self.weights)
            return {s: 1.0 / n for s in self.weights} if n else {}
        return {s: w / total for s, w in self.weights.items()}


def discover_truth(
    claims: Claims,
    *,
    max_iterations: int = 50,
    tolerance: float = 1e-6,
) -> TruthDiscoveryResult:
    """Run CRH truth discovery on continuous claims.

    Each source claims values for some items.  Returns per-item truth
    estimates and per-source weights; a source whose claims sit far
    from consensus gets a low weight and barely influences the truths.
    """
    if not claims:
        raise ValueError("need at least one source")
    sources = list(claims)
    items: List[Hashable] = sorted(
        {item for source_claims in claims.values() for item in source_claims},
        key=repr,
    )
    if not items:
        raise ValueError("sources made no claims")

    weights = {s: 1.0 for s in sources}
    truths = _weighted_truths(claims, weights, items)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        weights = _crh_weights(claims, truths)
        new_truths = _weighted_truths(claims, weights, items)
        delta = max(
            abs(new_truths[item] - truths[item]) for item in items
        )
        truths = new_truths
        if delta < tolerance:
            break
    return TruthDiscoveryResult(truths=truths, weights=weights, iterations=iterations)


def _weighted_truths(
    claims: Claims, weights: Mapping[Hashable, float], items: List[Hashable]
) -> Dict[Hashable, float]:
    truths: Dict[Hashable, float] = {}
    for item in items:
        numerator = 0.0
        denominator = 0.0
        for source, source_claims in claims.items():
            if item not in source_claims:
                continue
            w = weights[source]
            numerator += w * source_claims[item]
            denominator += w
        if denominator == 0.0:
            # All claiming sources have zero weight; fall back to the
            # unweighted mean so the item still gets an estimate.
            values = [c[item] for c in claims.values() if item in c]
            truths[item] = sum(values) / len(values)
        else:
            truths[item] = numerator / denominator
    return truths


def _crh_weights(
    claims: Claims, truths: Mapping[Hashable, float]
) -> Dict[Hashable, float]:
    # Per-source loss: mean squared distance to the current truths.
    losses: Dict[Hashable, float] = {}
    for source, source_claims in claims.items():
        if not source_claims:
            losses[source] = float("inf")
            continue
        losses[source] = sum(
            (value - truths[item]) ** 2 for item, value in source_claims.items()
        ) / len(source_claims)
    # CRH weight: w_s = log(sum of losses / own loss); clamp for
    # perfect sources (zero loss) and hopeless ones.
    floor = 1e-12
    total_loss = sum(min(l, 1e18) for l in losses.values()) + floor
    weights = {}
    for source, loss in losses.items():
        ratio = total_loss / max(loss, floor)
        weights[source] = max(math.log(ratio), floor)
    return weights


def reliability_scores(result: TruthDiscoveryResult) -> Dict[Hashable, float]:
    """Map weights to [0, 1] reliability scores (max weight -> 1.0).

    Suitable for seeding the device selector's reliability factor.
    """
    if not result.weights:
        return {}
    top = max(result.weights.values())
    if top <= 0:
        return {s: 0.0 for s in result.weights}
    return {s: w / top for s, w in result.weights.items()}
