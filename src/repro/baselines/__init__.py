"""Baseline frameworks the paper compares against.

- **Periodic** — the state of practice: every device running the app
  senses and uploads at a fixed period, regardless of radio state.
  Each upload from an idle radio pays promotion + transfer + a full
  tail.
- **PCS** (Piggyback CrowdSensing, Lane et al., SenSys'13) — the state
  of the art: each device predicts the user's next app session and
  piggybacks its upload onto that traffic; a misprediction (or no
  traffic arriving) falls back to a deadline upload from idle.  The
  predictor's accuracy is a knob, defaulted to the 40% top-1-app
  saturation accuracy the paper reads off Lane et al.'s Figure 8.

Neither baseline orchestrates across devices: *every* qualified device
in the task region performs every sample — the behaviour Figs. 10 and
12 show.
"""

from repro.baselines.common import BaselineCollector, FrameworkStats
from repro.baselines.coverage import CoverageFramework
from repro.baselines.pcs import PCSFramework
from repro.baselines.periodic import PeriodicFramework

__all__ = [
    "BaselineCollector",
    "CoverageFramework",
    "FrameworkStats",
    "PCSFramework",
    "PeriodicFramework",
]
