"""Shared plumbing for the baseline frameworks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cellular.network import CellularNetwork, DeliveryReceipt
from repro.cellular.packets import Message, sensor_data_message
from repro.core.tasks import SensingRequest, TaskSpec
from repro.devices.device import SimDevice
from repro.sim.engine import Simulator


@dataclass
class FrameworkStats:
    """Outcome counters shared by both baselines."""

    requests_issued: int = 0
    uploads: int = 0
    uploads_piggybacked: int = 0
    uploads_forced: int = 0
    data_points_delivered: int = 0
    #: Devices that participated in each request (Figs. 10 and 12).
    participants_per_request: Dict[str, int] = field(default_factory=dict)

    def mean_participants(self) -> float:
        if not self.participants_per_request:
            return 0.0
        counts = self.participants_per_request.values()
        return sum(counts) / len(counts)

    def distinct_participation_counts(self) -> List[int]:
        return sorted(self.participants_per_request.values())


class BaselineCollector:
    """The baselines' stand-in application server: receives uploads."""

    def __init__(self) -> None:
        self.delivered: List[Message] = []

    def on_delivered(self, message: Message, receipt: DeliveryReceipt) -> None:
        self.delivered.append(message)

    def __len__(self) -> int:
        return len(self.delivered)


class BaselineFramework:
    """Common task expansion and per-request participant computation.

    A baseline has no server-side orchestration: at each sampling
    instant every device currently inside the task region (and carrying
    the sensor) owes one sample.  Subclasses decide *when and how* the
    sample is uploaded.
    """

    name = "baseline"

    def __init__(
        self,
        sim: Simulator,
        network: CellularNetwork,
        devices: Sequence[SimDevice],
        collector: Optional[BaselineCollector] = None,
    ) -> None:
        self._sim = sim
        self._network = network
        self._devices = list(devices)
        self.collector = collector if collector is not None else BaselineCollector()
        self.stats = FrameworkStats()
        self._tasks: List[TaskSpec] = []

    @property
    def devices(self) -> List[SimDevice]:
        return list(self._devices)

    @property
    def tasks(self) -> List[TaskSpec]:
        return list(self._tasks)

    def add_task(self, task: TaskSpec) -> None:
        """Accept a task and schedule its sampling instants."""
        self._tasks.append(task)
        for request in task.expand_requests(self._sim.now):
            delay = max(0.0, request.issue_time - self._sim.now)
            self._sim.schedule(delay, self._tick, request)

    def total_crowdsensing_energy_j(self) -> float:
        """Sum of crowdsensing-attributed Joules across all devices."""
        return sum(d.crowdsensing_energy_j() for d in self._devices)

    def per_device_energy_j(self) -> Dict[str, float]:
        return {d.device_id: d.crowdsensing_energy_j() for d in self._devices}

    # ------------------------------------------------------------------
    # Per-sample machinery
    # ------------------------------------------------------------------

    def _tick(self, request: SensingRequest) -> None:
        self.stats.requests_issued += 1
        participants = self._participants(request)
        self.stats.participants_per_request[request.request_id] = len(participants)
        for device in participants:
            self._handle_obligation(device, request)

    def _participants(self, request: SensingRequest) -> List[SimDevice]:
        task = request.task
        result = []
        for device in self._devices:
            if not device.position().within(task.center, task.area_radius_m):
                continue
            if not device.sensors.has(task.sensor_type):
                continue
            if (
                task.device_type is not None
                and device.profile.model != task.device_type
            ):
                continue
            result.append(device)
        return result

    def _handle_obligation(self, device: SimDevice, request: SensingRequest) -> None:
        raise NotImplementedError

    def _upload(self, device: SimDevice, request: SensingRequest) -> None:
        """Sense and upload one sample right now (stock RRC behaviour)."""
        reading = device.sample(request.task.sensor_type)
        message = sensor_data_message(
            device.device_id,
            {
                "device_id": device.device_id,
                "request_id": request.request_id,
                "value": reading.value,
                "sensed_at": reading.time,
            },
        )
        self.stats.uploads += 1
        self._network.uplink(
            device,
            message,
            on_delivered=self._on_delivered,
            resets_tail=True,
        )

    def _on_delivered(self, message: Message, receipt: DeliveryReceipt) -> None:
        self.stats.data_points_delivered += 1
        self.collector.on_delivered(message, receipt)
