"""Coverage-based participant recruitment (CrowdRecruiter / iCrowd style).

The paper's related-work section describes a family of schedulers that
"select mobile devices so that some level of coverage of a sensed area
is achieved ... the device selection is not done on a fine-grained
basis — once a device is selected to participate in a crowdsensing
task, it is expected to upload the sensed data, independent of its
local state."

:class:`CoverageFramework` implements that design point as a third
comparator: at campaign start it predicts each device's probability of
being inside the task region (from a mobility history window, the way
CrowdRecruiter uses historical call records), greedily recruits the
smallest cohort whose *expected* in-region count meets the spatial
density, and then has exactly that cohort sense and upload at every
tick — no radio awareness, no re-selection.  Its two failure modes are
the ones the paper calls out: uploads from idle radios (energy) and
coverage shortfalls when the predicted users happen to be elsewhere
(data quality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.common import BaselineCollector, BaselineFramework
from repro.cellular.network import CellularNetwork
from repro.core.tasks import SensingRequest, TaskSpec
from repro.devices.device import SimDevice
from repro.sim.engine import Simulator


@dataclass
class RecruitmentPlan:
    """The cohort chosen for one task at campaign start."""

    task_id: int
    recruited: List[str]
    presence_probability: Dict[str, float]
    expected_coverage: float


class CoverageFramework(BaselineFramework):
    """Recruit-once, probabilistic-coverage crowdsensing."""

    name = "coverage"

    def __init__(
        self,
        sim: Simulator,
        network: CellularNetwork,
        devices: Sequence[SimDevice],
        collector: Optional[BaselineCollector] = None,
        *,
        history_window_s: float = 4 * 3600.0,
        history_samples: int = 48,
        coverage_margin: float = 1.0,
    ) -> None:
        if history_samples < 1:
            raise ValueError("history_samples must be positive")
        if coverage_margin <= 0:
            raise ValueError("coverage_margin must be positive")
        super().__init__(sim, network, devices, collector)
        self._history_window = history_window_s
        self._history_samples = history_samples
        self._margin = coverage_margin
        self.plans: Dict[int, RecruitmentPlan] = {}
        self.coverage_shortfalls = 0

    # ------------------------------------------------------------------
    # Recruitment
    # ------------------------------------------------------------------

    def add_task(self, task: TaskSpec) -> None:
        self.plans[task.task_id] = self._recruit(task)
        super().add_task(task)

    def _recruit(self, task: TaskSpec) -> RecruitmentPlan:
        probabilities = {
            device.device_id: self._presence_probability(device, task)
            for device in self._devices
            if device.sensors.has(task.sensor_type)
        }
        # Greedy: keep adding the most-likely-present devices until the
        # expected in-region count reaches density × margin.
        target = task.spatial_density * self._margin
        recruited: List[str] = []
        expected = 0.0
        for device_id, probability in sorted(
            probabilities.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            if expected >= target:
                break
            if probability <= 0.0:
                break
            recruited.append(device_id)
            expected += probability
        return RecruitmentPlan(
            task_id=task.task_id,
            recruited=recruited,
            presence_probability=probabilities,
            expected_coverage=expected,
        )

    def _presence_probability(self, device: SimDevice, task: TaskSpec) -> float:
        """Fraction of a historical window the device spent in-region.

        Stands in for CrowdRecruiter's call-record-based mobility
        prediction; positions before t=0 mirror the start position.
        """
        now = self._sim.now
        hits = 0
        for i in range(self._history_samples):
            t = now - self._history_window * i / self._history_samples
            position = device.mobility.position_at(max(0.0, t))
            if position.within(task.center, task.area_radius_m):
                hits += 1
        return hits / self._history_samples

    # ------------------------------------------------------------------
    # Per-tick behaviour
    # ------------------------------------------------------------------

    def _tick(self, request: SensingRequest) -> None:
        self.stats.requests_issued += 1
        plan = self.plans[request.task.task_id]
        recruited = {d for d in plan.recruited}
        present = [
            device
            for device in self._devices
            if device.device_id in recruited
            and device.position().within(
                request.task.center, request.task.area_radius_m
            )
        ]
        self.stats.participants_per_request[request.request_id] = len(present)
        if len(present) < request.task.spatial_density:
            self.coverage_shortfalls += 1
        for device in present:
            self._handle_obligation(device, request)

    def _handle_obligation(self, device: SimDevice, request: SensingRequest) -> None:
        # Recruited devices upload immediately, radio state be damned —
        # the behaviour the paper contrasts against.
        self._upload(device, request)
        self.stats.uploads_forced += 1
