"""Piggyback CrowdSensing (PCS) — Lane et al., SenSys'13.

At each sampling instant every participating device consults its app-
usage predictor:

- With probability ``accuracy`` the prediction is *correct*: the
  client holds the sample and piggybacks the upload onto the user's
  next app session (the upload rides the already-active radio, costing
  only the marginal transfer).  If no session materialises before the
  sample's deadline, the client falls back to a deadline upload.
- With probability ``1 − accuracy`` the prediction is *wrong*: the
  client learns nothing useful and uploads at the deadline from an
  idle radio, paying the full promotion + tail.

The paper evaluates PCS at the 40% top-1-app saturation accuracy it
reads off Lane et al.'s Figure 8 and sweeps the knob to 100% in its
Figure 14; :class:`PCSFramework` exposes the same knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.common import BaselineCollector, BaselineFramework
from repro.cellular.network import CellularNetwork
from repro.cellular.packets import TrafficCategory
from repro.cellular.rrc import RRCState
from repro.core.tasks import SensingRequest
from repro.devices.device import SimDevice
from repro.sim.engine import Simulator
from repro.sim.events import Event

#: How long after a session opens the piggybacked upload goes out —
#: enough for the session's own packets to have activated the radio.
PIGGYBACK_DELAY_S = 0.5

#: Safety margin before the deadline for fallback uploads.
FALLBACK_GRACE_S = 2.0


@dataclass
class _Obligation:
    """One pending sample on one device."""

    request: SensingRequest
    piggyback: bool
    fallback_timer: Optional[Event] = None
    done: bool = False


class PCSFramework(BaselineFramework):
    """PCS with a configurable prediction accuracy."""

    name = "pcs"

    def __init__(
        self,
        sim: Simulator,
        network: CellularNetwork,
        devices: Sequence[SimDevice],
        collector: Optional[BaselineCollector] = None,
        *,
        accuracy: float = 0.40,
        oracle_sessions: bool = False,
    ) -> None:
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy!r}")
        super().__init__(sim, network, devices, collector)
        self.accuracy = accuracy
        #: The paper's Fig.-14 "energy cost model for PCS": a correct
        #: prediction *guarantees* a piggyback opportunity (the user
        #: session the predictor foresaw materialises somewhere in the
        #: window).  Under the default (False), a correct prediction
        #: only pays off if the user actually opens an app before the
        #: deadline — the physically honest model.
        self.oracle_sessions = oracle_sessions
        self._pending: Dict[str, List[_Obligation]] = {
            d.device_id: [] for d in self._devices
        }
        self._rngs = {
            d.device_id: sim.rng.stream(f"pcs:{d.device_id}") for d in self._devices
        }
        self._by_id = {d.device_id: d for d in self._devices}
        for device in self._devices:
            device.traffic.add_session_listener(
                self._make_session_listener(device.device_id)
            )

    def pending_count(self, device_id: str) -> int:
        return sum(1 for ob in self._pending[device_id] if not ob.done)

    # ------------------------------------------------------------------
    # Obligation lifecycle
    # ------------------------------------------------------------------

    def _handle_obligation(self, device: SimDevice, request: SensingRequest) -> None:
        rng = self._rngs[device.device_id]
        predicted_correctly = rng.random() < self.accuracy
        obligation = _Obligation(request=request, piggyback=predicted_correctly)
        self._pending[device.device_id].append(obligation)
        if predicted_correctly and device.modem.state in (
            RRCState.ACTIVE,
            RRCState.PROMOTING,
        ):
            # The predicted session is happening right now.
            self._complete(device, obligation, piggybacked=True)
            return
        if predicted_correctly and self.oracle_sessions:
            self._schedule_oracle_session(device, obligation)
            return
        fire_at = max(self._sim.now, request.deadline - FALLBACK_GRACE_S)
        obligation.fallback_timer = self._sim.schedule_at(
            fire_at, self._fallback, device.device_id, obligation
        )

    def _schedule_oracle_session(
        self, device: SimDevice, obligation: _Obligation
    ) -> None:
        """Materialise the predicted user session somewhere in the window.

        The session's own traffic is the user's (background category);
        the upload rides it and is charged only the piggyback marginal
        — exactly the assumption behind the paper's Fig.-14 model.
        """
        rng = self._rngs[device.device_id]
        window = max(0.0, obligation.request.deadline - self._sim.now)
        offset = rng.uniform(0.0, 0.8 * window)
        obligation.done = True

        def run_session() -> None:
            device.modem.transmit(2000, TrafficCategory.BACKGROUND)
            self._sim.schedule(
                PIGGYBACK_DELAY_S, self._finish_piggyback, device, obligation
            )

        self._sim.schedule(offset, run_session)

    def _make_session_listener(self, device_id: str):
        def on_session(start_time: float) -> None:
            self._on_session(device_id)

        return on_session

    def _on_session(self, device_id: str) -> None:
        device = self._by_id[device_id]
        for obligation in list(self._pending[device_id]):
            if obligation.done or not obligation.piggyback:
                continue
            if self._sim.now + PIGGYBACK_DELAY_S >= obligation.request.deadline:
                continue  # too late to ride this session; fallback will fire
            obligation.done = True
            self._cancel_timer(obligation)
            self._sim.schedule(
                PIGGYBACK_DELAY_S, self._finish_piggyback, device, obligation
            )
        self._prune(device_id)

    def _finish_piggyback(self, device: SimDevice, obligation: _Obligation) -> None:
        self.stats.uploads_piggybacked += 1
        self._upload(device, obligation.request)

    def _fallback(self, device_id: str, obligation: _Obligation) -> None:
        if obligation.done:
            return
        device = self._by_id[device_id]
        self._complete(device, obligation, piggybacked=False)
        self._prune(device_id)

    def _complete(
        self, device: SimDevice, obligation: _Obligation, *, piggybacked: bool
    ) -> None:
        obligation.done = True
        self._cancel_timer(obligation)
        if piggybacked:
            self.stats.uploads_piggybacked += 1
        else:
            self.stats.uploads_forced += 1
        self._upload(device, obligation.request)

    def _cancel_timer(self, obligation: _Obligation) -> None:
        if obligation.fallback_timer is not None:
            self._sim.cancel(obligation.fallback_timer)
            obligation.fallback_timer = None

    def _prune(self, device_id: str) -> None:
        self._pending[device_id] = [
            ob for ob in self._pending[device_id] if not ob.done
        ]
