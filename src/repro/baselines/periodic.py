"""The Periodic baseline: sense and upload at every sampling instant.

This is the paper's state-of-practice comparator — what Pressurenet
and WeatherSignal do.  No radio awareness: if the radio is idle (the
common case), every upload pays the IDLE→CONNECTED promotion and drags
the radio through a full high-power tail.
"""

from __future__ import annotations

from repro.baselines.common import BaselineFramework
from repro.core.tasks import SensingRequest
from repro.devices.device import SimDevice


class PeriodicFramework(BaselineFramework):
    """Fixed-period sensing and immediate upload on every device."""

    name = "periodic"

    def _handle_obligation(self, device: SimDevice, request: SensingRequest) -> None:
        self._upload(device, request)
        self.stats.uploads_forced += 1
