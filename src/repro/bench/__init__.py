"""Benchmark-regression tooling.

The benchmark book emits ``BENCH_*.json`` scorecards; this package
compares a fresh run against the committed baselines under
``benchmarks/baselines/`` with per-metric tolerances — the engine
behind ``repro bench compare`` and the CI regression gate.
"""

from repro.bench.compare import (
    ARTIFACT_SCHEMA_VERSION,
    Artifact,
    CompareReport,
    MetricDelta,
    TolerancePolicy,
    compare_dirs,
    load_artifact,
    load_artifacts,
    update_baselines,
    write_markdown,
)

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "Artifact",
    "CompareReport",
    "MetricDelta",
    "TolerancePolicy",
    "compare_dirs",
    "load_artifact",
    "load_artifacts",
    "update_baselines",
    "write_markdown",
]
