"""Compare benchmark scorecards against committed baselines.

Loads two sets of ``BENCH_*.json`` artifacts — a fresh run and the
baselines under ``benchmarks/baselines/`` — flattens each scorecard's
metrics to dotted paths, and applies a per-metric tolerance policy.
The result is a pass/fail report plus a markdown delta table, which
``repro bench compare`` prints and the CI ``bench-regression`` job
posts to the job summary.

Tolerance policy (``tolerances.json`` next to the baselines)::

    {
      "default": {"rel": 0.05, "abs": 1e-09},
      "overrides": [
        {"pattern": "*:*wall_s*", "skip": true},
        {"pattern": "BENCH_scalability:*throughput*", "skip": true},
        {"pattern": "BENCH_robustness*:*std*", "abs": 2.0}
      ]
    }

Patterns are ``fnmatch`` globs over ``<artifact>:<metric.path>``; the
last matching override wins.  ``skip: true`` makes a metric
informational (machine-dependent timings); a relative tolerance is a
fraction of the baseline magnitude; the absolute tolerance dominates
near zero.  Cross-schema comparisons are refused: a scorecard written
under a different artifact schema version fails the gate outright
rather than producing a nonsense delta table.
"""

from __future__ import annotations

import fnmatch
import json
import math
import os
import shutil
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Version of the on-disk scorecard envelope.  v1 scorecards were the
#: bare metric payloads of PRs 2-4; v2 stamps name, git SHA, and this
#: schema version so the regression gate can refuse stale comparisons.
ARTIFACT_SCHEMA_VERSION = 2

DEFAULT_REL_TOL = 0.05
DEFAULT_ABS_TOL = 1e-9


@dataclass(frozen=True)
class Artifact:
    """One loaded ``BENCH_*.json`` scorecard."""

    name: str
    schema_version: int
    git_sha: str
    metrics: Dict[str, Any]


@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline/current comparison."""

    artifact: str
    path: str
    baseline: Any
    current: Any
    status: str  # ok | fail | skipped | missing | new
    allowed: str = ""
    note: str = ""

    @property
    def delta(self) -> Optional[float]:
        if isinstance(self.baseline, (int, float)) and isinstance(
            self.current, (int, float)
        ) and not isinstance(self.baseline, bool) and not isinstance(
            self.current, bool
        ):
            return float(self.current) - float(self.baseline)
        return None


@dataclass
class TolerancePolicy:
    """Per-metric tolerances resolved by glob pattern."""

    rel: float = DEFAULT_REL_TOL
    abs: float = DEFAULT_ABS_TOL
    overrides: List[Dict[str, Any]] = field(default_factory=list)

    @classmethod
    def load(cls, path: str) -> "TolerancePolicy":
        with open(path, "r", encoding="utf-8") as f:
            raw = json.load(f)
        default = raw.get("default", {})
        return cls(
            rel=float(default.get("rel", DEFAULT_REL_TOL)),
            abs=float(default.get("abs", DEFAULT_ABS_TOL)),
            overrides=list(raw.get("overrides", [])),
        )

    def resolve(self, artifact: str, path: str) -> Tuple[float, float, bool]:
        """``(rel, abs, skip)`` for one metric; last matching override wins."""
        rel, abs_tol, skip = self.rel, self.abs, False
        target = f"{artifact}:{path}"
        for override in self.overrides:
            pattern = override.get("pattern", "")
            if fnmatch.fnmatchcase(target, pattern):
                rel = float(override.get("rel", rel))
                abs_tol = float(override.get("abs", abs_tol))
                skip = bool(override.get("skip", skip))
        return rel, abs_tol, skip


@dataclass
class CompareReport:
    """Everything the gate decided, ready to render."""

    baseline_dir: str
    current_dir: str
    deltas: List[MetricDelta] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)
    artifacts_compared: int = 0

    @property
    def failures(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status == "fail"]

    @property
    def passed(self) -> bool:
        return not self.failures and not self.problems

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for delta in self.deltas:
            out[delta.status] = out.get(delta.status, 0) + 1
        return out

    def summary(self) -> str:
        counts = self.counts()
        lines = [
            f"benchmark regression gate: {'PASS' if self.passed else 'FAIL'}",
            f"  artifacts compared: {self.artifacts_compared}",
            f"  metrics: {counts.get('ok', 0)} ok, {counts.get('fail', 0)} failed, "
            f"{counts.get('skipped', 0)} skipped, {counts.get('new', 0)} new, "
            f"{counts.get('missing', 0)} missing",
        ]
        for problem in self.problems:
            lines.append(f"  problem: {problem}")
        for delta in self.failures:
            lines.append(
                f"  FAIL {delta.artifact}:{delta.path} "
                f"baseline={_fmt(delta.baseline)} current={_fmt(delta.current)} "
                f"(allowed {delta.allowed})"
            )
        return "\n".join(lines)

    def markdown(self) -> str:
        counts = self.counts()
        verdict = "✅ PASS" if self.passed else "❌ FAIL"
        lines = [
            "## Benchmark regression gate",
            "",
            f"**{verdict}** — {self.artifacts_compared} artifacts, "
            f"{counts.get('ok', 0)} metrics ok, {counts.get('fail', 0)} failed, "
            f"{counts.get('skipped', 0)} skipped (informational), "
            f"{counts.get('new', 0)} new, {counts.get('missing', 0)} missing.",
            "",
        ]
        for problem in self.problems:
            lines.append(f"- ⚠️ {problem}")
        if self.problems:
            lines.append("")
        rows = self.failures + [d for d in self.deltas if d.status == "missing"]
        if rows:
            lines += [
                "| artifact | metric | baseline | current | Δ | allowed | status |",
                "|---|---|---:|---:|---:|---|---|",
            ]
            for d in rows:
                delta = d.delta
                lines.append(
                    f"| {d.artifact} | `{d.path}` | {_fmt(d.baseline)} | "
                    f"{_fmt(d.current)} | "
                    f"{_fmt(delta) if delta is not None else '—'} | "
                    f"{d.allowed or '—'} | {d.status} |"
                )
            lines.append("")
        by_artifact: Dict[str, Dict[str, int]] = {}
        for d in self.deltas:
            bucket = by_artifact.setdefault(d.artifact, {})
            bucket[d.status] = bucket.get(d.status, 0) + 1
        lines += [
            "<details><summary>Per-artifact breakdown</summary>",
            "",
            "| artifact | ok | failed | skipped | new | missing |",
            "|---|---:|---:|---:|---:|---:|",
        ]
        for name in sorted(by_artifact):
            b = by_artifact[name]
            lines.append(
                f"| {name} | {b.get('ok', 0)} | {b.get('fail', 0)} | "
                f"{b.get('skipped', 0)} | {b.get('new', 0)} | {b.get('missing', 0)} |"
            )
        lines += ["", "</details>", ""]
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, int):
        return str(value)
    return f"{value:.6g}"


def load_artifact(path: str) -> Artifact:
    """Load one scorecard, accepting stamped (v2+) and legacy payloads."""
    with open(path, "r", encoding="utf-8") as f:
        payload = json.load(f)
    name = os.path.splitext(os.path.basename(path))[0]
    if (
        isinstance(payload, dict)
        and "schema_version" in payload
        and "metrics" in payload
    ):
        return Artifact(
            name=payload.get("name", name),
            schema_version=int(payload["schema_version"]),
            git_sha=str(payload.get("git_sha", "unknown")),
            metrics=payload["metrics"],
        )
    return Artifact(name=name, schema_version=1, git_sha="unknown", metrics=payload)


def load_artifacts(directory: str) -> Dict[str, Artifact]:
    """All ``BENCH_*.json`` scorecards in ``directory``, keyed by stem."""
    out: Dict[str, Artifact] = {}
    if not os.path.isdir(directory):
        return out
    for entry in sorted(os.listdir(directory)):
        if entry.startswith("BENCH_") and entry.endswith(".json"):
            stem = os.path.splitext(entry)[0]
            out[stem] = load_artifact(os.path.join(directory, entry))
    return out


def flatten_metrics(metrics: Any, prefix: str = "") -> Dict[str, Any]:
    """Leaf values of a nested scorecard keyed by dotted path."""
    if isinstance(metrics, dict):
        out: Dict[str, Any] = {}
        for key in metrics:
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_metrics(metrics[key], path))
        return out
    if isinstance(metrics, (list, tuple)):
        out = {}
        for i, item in enumerate(metrics):
            out.update(flatten_metrics(item, f"{prefix}[{i}]"))
        return out
    return {prefix or "value": metrics}


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _compare_leaf(
    name: str,
    path: str,
    base: Any,
    cur: Any,
    policy: TolerancePolicy,
) -> MetricDelta:
    rel, abs_tol, skip = policy.resolve(name, path)
    if skip:
        return MetricDelta(name, path, base, cur, "skipped")
    if _is_number(base) and _is_number(cur):
        if math.isnan(float(base)) and math.isnan(float(cur)):
            return MetricDelta(name, path, base, cur, "ok")
        allowed = max(abs_tol, rel * abs(float(base)))
        status = "ok" if abs(float(cur) - float(base)) <= allowed else "fail"
        return MetricDelta(
            name, path, base, cur, status,
            allowed=f"±{allowed:.6g} (rel {rel:g}, abs {abs_tol:g})",
        )
    status = "ok" if base == cur else "fail"
    return MetricDelta(name, path, base, cur, status, allowed="exact match")


def compare_artifact(
    baseline: Artifact, current: Artifact, policy: TolerancePolicy
) -> Tuple[List[MetricDelta], List[str]]:
    """All metric deltas for one artifact pair, plus schema problems."""
    if baseline.schema_version != current.schema_version:
        return [], [
            f"{baseline.name}: refusing cross-schema comparison "
            f"(baseline schema v{baseline.schema_version}, "
            f"current v{current.schema_version}) — regenerate the baseline"
        ]
    base_flat = flatten_metrics(baseline.metrics)
    cur_flat = flatten_metrics(current.metrics)
    deltas = []
    for path in base_flat:
        if path in cur_flat:
            deltas.append(
                _compare_leaf(
                    baseline.name, path, base_flat[path], cur_flat[path], policy
                )
            )
        else:
            deltas.append(
                MetricDelta(
                    baseline.name, path, base_flat[path], None, "missing",
                    note="metric present in baseline but absent from current run",
                )
            )
    for path in cur_flat:
        if path not in base_flat:
            deltas.append(MetricDelta(baseline.name, path, None, cur_flat[path], "new"))
    return deltas, []


def compare_dirs(
    baseline_dir: str,
    current_dir: str,
    *,
    tolerances_path: Optional[str] = None,
    strict_missing: bool = False,
) -> CompareReport:
    """Compare every baseline scorecard against the current run.

    Artifacts present only in the current run are informational (new
    benchmarks land before their baselines); baseline artifacts the
    current run did not produce are a problem only under
    ``strict_missing`` — the PR gate reruns just the figure book, not
    the chaos/scalability tiers.
    """
    report = CompareReport(baseline_dir=baseline_dir, current_dir=current_dir)
    baselines = load_artifacts(baseline_dir)
    currents = load_artifacts(current_dir)
    if not baselines:
        report.problems.append(f"no BENCH_*.json baselines found in {baseline_dir}")
        return report
    if tolerances_path is None:
        candidate = os.path.join(baseline_dir, "tolerances.json")
        tolerances_path = candidate if os.path.isfile(candidate) else None
    policy = (
        TolerancePolicy.load(tolerances_path)
        if tolerances_path
        else TolerancePolicy()
    )
    for stem in sorted(baselines):
        if stem not in currents:
            message = f"baseline artifact {stem} was not produced by the current run"
            if strict_missing:
                report.problems.append(message)
            continue
        deltas, problems = compare_artifact(baselines[stem], currents[stem], policy)
        report.deltas.extend(deltas)
        report.problems.extend(problems)
        report.artifacts_compared += 1
    # Metric-level "missing" entries fail the gate: a metric silently
    # vanishing from a scorecard is exactly the regression class the
    # gate exists to catch.
    for delta in report.deltas:
        if delta.status == "missing":
            report.problems.append(
                f"{delta.artifact}:{delta.path} disappeared from the current scorecard"
            )
    return report


def write_markdown(report: CompareReport, dest: str) -> None:
    """Write the delta table to a file, stdout (``-``), or the CI job
    summary (``GITHUB_STEP_SUMMARY``)."""
    text = report.markdown()
    if dest == "-":
        sys.stdout.write(text)
        return
    if dest == "GITHUB_STEP_SUMMARY":
        dest = os.environ.get("GITHUB_STEP_SUMMARY", "")
        if not dest:
            sys.stdout.write(text)
            return
        with open(dest, "a", encoding="utf-8") as f:
            f.write(text)
        return
    with open(dest, "w", encoding="utf-8") as f:
        f.write(text)


def update_baselines(*, current_dir: str, baseline_dir: str) -> List[str]:
    """Copy the current run's scorecards over the baselines; returns
    the artifact stems copied (sorted)."""
    copied = []
    if not os.path.isdir(current_dir):
        return copied
    os.makedirs(baseline_dir, exist_ok=True)
    for entry in sorted(os.listdir(current_dir)):
        if entry.startswith("BENCH_") and entry.endswith(".json"):
            shutil.copyfile(
                os.path.join(current_dir, entry), os.path.join(baseline_dir, entry)
            )
            copied.append(os.path.splitext(entry)[0])
    return copied
