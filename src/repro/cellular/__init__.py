"""Cellular (LTE / 3G) network substrate.

The paper's energy argument rests on the Radio Resource Control (RRC)
protocol: a device pays a large *promotion* cost to move from
``RRC_IDLE`` to ``RRC_CONNECTED``, and then remains in a high-power
*tail* for ~11 s after the last packet.  This subpackage models that
state machine per device, the per-state power draw (figures from Huang
et al., MobiSys'12, which the paper cites), the eNodeB/tower layer that
gives the Sense-Aid server visibility into device location and radio
state, and a message-passing network between devices and servers.
"""

from repro.cellular.enodeb import ENodeB, TowerRegistry
from repro.cellular.network import CellularNetwork, DeliveryReceipt
from repro.cellular.spatial import UniformGridIndex
from repro.cellular.packets import Message, MessageKind, TrafficCategory
from repro.cellular.power import (
    LTE_POWER_PROFILE,
    THREEG_POWER_PROFILE,
    RadioPowerProfile,
)
from repro.cellular.rrc import RadioModem, RRCState, TailPolicy

__all__ = [
    "CellularNetwork",
    "DeliveryReceipt",
    "ENodeB",
    "LTE_POWER_PROFILE",
    "Message",
    "MessageKind",
    "RadioModem",
    "RadioPowerProfile",
    "RRCState",
    "THREEG_POWER_PROFILE",
    "TailPolicy",
    "TowerRegistry",
    "TrafficCategory",
    "UniformGridIndex",
]
