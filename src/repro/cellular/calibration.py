"""Power-profile calibration from power traces.

The paper's power numbers trace back to Huang et al., who recovered
the LTE RRC parameters (promotion/active/tail/idle power levels and
timer lengths) from physical power-meter traces.  This module closes
the same loop inside the reproduction:

- :func:`generate_power_trace` samples a modem's instantaneous power
  while replaying a transfer schedule — a synthetic power-meter trace;
- :func:`fit_profile` recovers the four power plateaus and the
  promotion/tail timer lengths back out of such a trace, by 1-D
  k-means clustering of the power samples into levels and measuring
  level residency around an isolated upload.

The test suite round-trips: trace generated from the canonical profile
→ fitted parameters ≈ the profile.  That guards the energy model
against regressions that would silently change every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.cellular.packets import TrafficCategory
from repro.cellular.power import RadioPowerProfile
from repro.cellular.rrc import RadioModem, RRCState
from repro.sim.engine import Simulator

_STATE_TO_POWER = {
    RRCState.IDLE: "idle_mw",
    RRCState.PROMOTING: "promotion_mw",
    RRCState.ACTIVE: "active_mw",
    RRCState.TAIL: "tail_mw",
}


def generate_power_trace(
    profile: RadioPowerProfile,
    sends: Sequence[Tuple[float, int]],
    duration_s: float,
    dt_s: float = 0.05,
) -> np.ndarray:
    """Replay ``(time, size_bytes)`` sends; return an (N, 2) trace of
    ``(t, power_mw)`` samples, like a bench power meter would record."""
    if dt_s <= 0:
        raise ValueError("dt_s must be positive")
    sim = Simulator(seed=0)
    modem = RadioModem(sim, profile, "calibration")
    transitions: List[Tuple[float, RRCState]] = [(0.0, RRCState.IDLE)]
    modem.add_state_listener(
        lambda old, new: transitions.append((sim.now, new))
    )
    for at, size in sends:
        sim.schedule_at(at, modem.transmit, size, TrafficCategory.BACKGROUND)
    sim.run(until=duration_s)

    times = np.arange(0.0, duration_s, dt_s)
    powers = np.empty_like(times)
    boundary_times = [t for t, _ in transitions]
    states = [s for _, s in transitions]
    index = 0
    for i, t in enumerate(times):
        while index + 1 < len(boundary_times) and boundary_times[index + 1] <= t:
            index += 1
        powers[i] = getattr(profile, _STATE_TO_POWER[states[index]])
    return np.column_stack([times, powers])


@dataclass(frozen=True)
class FittedProfile:
    """Parameters recovered from a power trace."""

    idle_mw: float
    promotion_mw: float
    active_mw: float
    tail_mw: float
    promotion_s: float
    tail_s: float


def _initial_centroids(values: np.ndarray, k: int) -> np.ndarray:
    """Histogram-peak seeding: the k most-populated, well-separated
    power bins.  Plateau durations differ by orders of magnitude
    (promotion is ~0.26 s vs an 11.5 s tail), so uniform seeding merges
    the nearby tail/promotion levels; peak seeding does not."""
    lo, hi = float(values.min()), float(values.max())
    if hi == lo:
        return np.full(k, lo)
    bins = 200
    counts, edges = np.histogram(values, bins=bins, range=(lo, hi))
    centers = (edges[:-1] + edges[1:]) / 2.0
    min_separation = (hi - lo) / (4.0 * k)
    chosen: List[float] = []
    for index in np.argsort(counts)[::-1]:
        if counts[index] == 0:
            break
        center = centers[index]
        if all(abs(center - c) >= min_separation for c in chosen):
            chosen.append(float(center))
        if len(chosen) == k:
            break
    while len(chosen) < k:  # degenerate trace; pad with spread values
        chosen.append(lo + (hi - lo) * len(chosen) / k)
    return np.sort(np.array(chosen))


def _kmeans_1d(values: np.ndarray, k: int, iterations: int = 100) -> np.ndarray:
    """1-D k-means with histogram-peak seeding; returns sorted centroids."""
    centroids = _initial_centroids(values, k)
    for _ in range(iterations):
        assignment = np.argmin(
            np.abs(values[:, None] - centroids[None, :]), axis=1
        )
        new_centroids = centroids.copy()
        for j in range(k):
            members = values[assignment == j]
            if len(members):
                new_centroids[j] = members.mean()
        if np.allclose(new_centroids, centroids):
            break
        centroids = new_centroids
    return np.sort(centroids)


def fit_profile(trace: np.ndarray, dt_s: float = 0.05) -> FittedProfile:
    """Recover RRC parameters from a trace containing one isolated
    cold upload (IDLE → PROMOTING → ACTIVE → TAIL → IDLE)."""
    if trace.ndim != 2 or trace.shape[1] != 2:
        raise ValueError("trace must be an (N, 2) array of (t, power_mw)")
    powers = trace[:, 1]
    levels = _kmeans_1d(powers, k=4)
    idle_mw, tail_mw, promotion_mw, active_mw = levels

    # Assign every sample to its nearest level, then measure plateau
    # residency.
    assignment = np.argmin(np.abs(powers[:, None] - levels[None, :]), axis=1)
    promotion_s = float(np.sum(assignment == 2) * dt_s)
    tail_s = float(np.sum(assignment == 1) * dt_s)
    return FittedProfile(
        idle_mw=float(idle_mw),
        promotion_mw=float(promotion_mw),
        active_mw=float(active_mw),
        tail_mw=float(tail_mw),
        promotion_s=promotion_s,
        tail_s=tail_s,
    )


def calibration_error(profile: RadioPowerProfile, fitted: FittedProfile) -> dict:
    """Relative error of each fitted parameter vs the source profile."""
    def rel(fit: float, true: float) -> float:
        return abs(fit - true) / true

    return {
        "idle_mw": rel(fitted.idle_mw, profile.idle_mw),
        "promotion_mw": rel(fitted.promotion_mw, profile.promotion_mw),
        "active_mw": rel(fitted.active_mw, profile.active_mw),
        "tail_mw": rel(fitted.tail_mw, profile.tail_mw),
        "promotion_s": rel(fitted.promotion_s, profile.promotion_s),
        "tail_s": rel(fitted.tail_s, profile.tail_s),
    }
