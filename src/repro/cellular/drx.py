"""LTE DRX (Discontinuous Reception) cycle model.

The RRC_CONNECTED tail is not a flat power plateau: after the last
packet the radio runs *continuous reception* for a short inactivity
window, then cycles through **Short DRX** (fast on/off cycles) and
**Long DRX** (slower cycles) until the inactivity timer expires and
the radio demotes to RRC_IDLE.  Huang et al. (MobiSys'12) measured the
Galaxy-phone LTE stack the paper builds on; this module encodes that
structure for two purposes:

1. **Deriving the flat-tail approximation** used by
   :class:`~repro.cellular.power.RadioPowerProfile`: the profile's
   ``tail_mw``/``tail_s`` should equal the duty-cycle-weighted average
   of the DRX phases (:func:`derive_tail_parameters` checks this).
2. **Paging latency**: a device in DRX hears the network only during
   its on-durations, so a downlink page waits for the next wake —
   :meth:`DRXConfig.paging_delay` quantifies the latency cost that
   motivates Sense-Aid's pull-style (device-initiated) control plane.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DRXPhase:
    """One DRX phase: cycles of ``on_ms`` awake out of ``cycle_ms``."""

    name: str
    cycle_ms: float
    on_ms: float
    duration_s: float
    on_power_mw: float
    sleep_power_mw: float

    def __post_init__(self) -> None:
        if not 0.0 < self.on_ms <= self.cycle_ms:
            raise ValueError("need 0 < on_ms <= cycle_ms")
        if self.duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        if self.sleep_power_mw > self.on_power_mw:
            raise ValueError("sleep power must not exceed on power")

    @property
    def duty_cycle(self) -> float:
        return self.on_ms / self.cycle_ms

    def average_power_mw(self) -> float:
        """Duty-cycle-weighted mean power across the phase."""
        return (
            self.duty_cycle * self.on_power_mw
            + (1.0 - self.duty_cycle) * self.sleep_power_mw
        )

    def energy_j(self) -> float:
        return self.average_power_mw() / 1000.0 * self.duration_s


@dataclass(frozen=True)
class DRXConfig:
    """The tail's phase sequence: continuous RX → short DRX → long DRX."""

    continuous_rx: DRXPhase
    short_drx: DRXPhase
    long_drx: DRXPhase

    def phases(self) -> tuple:
        return (self.continuous_rx, self.short_drx, self.long_drx)

    def total_tail_s(self) -> float:
        return sum(p.duration_s for p in self.phases())

    def total_tail_energy_j(self) -> float:
        return sum(p.energy_j() for p in self.phases())

    def average_tail_power_mw(self) -> float:
        """The flat-tail power equivalent to the full phase sequence."""
        total = self.total_tail_s()
        if total == 0.0:
            return 0.0
        return self.total_tail_energy_j() * 1000.0 / total

    def phase_at(self, seconds_into_tail: float) -> DRXPhase:
        """Which phase the radio is in, ``seconds_into_tail`` after the
        last packet.  Past the tail end, stays in long DRX (the caller
        should have demoted to IDLE)."""
        if seconds_into_tail < 0:
            raise ValueError("seconds_into_tail must be non-negative")
        elapsed = 0.0
        for phase in self.phases():
            elapsed += phase.duration_s
            if seconds_into_tail < elapsed:
                return phase
        return self.long_drx

    def paging_delay(self, seconds_into_tail: float) -> float:
        """Seconds until the radio next listens for a page.

        0.0 while in an on-duration; otherwise the remainder of the
        current DRX cycle's sleep period.
        """
        phase = self.phase_at(seconds_into_tail)
        start = 0.0
        for p in self.phases():
            if p is phase:
                break
            start += p.duration_s
        into_phase_ms = (seconds_into_tail - start) * 1000.0
        position_ms = into_phase_ms % phase.cycle_ms
        if position_ms < phase.on_ms:
            return 0.0
        return (phase.cycle_ms - position_ms) / 1000.0


#: Huang et al.'s measured LTE DRX structure (rounded): ~1 s of
#: continuous reception after the last packet, ~1 s of short DRX
#: (20 ms on / 100 ms cycle), then long DRX (43 ms on / 320 ms cycle)
#: until the ~11.5 s inactivity timer fires.  On-power matches the
#: connected-idle plateau; sleep power is the RF-off floor.
LTE_DRX = DRXConfig(
    continuous_rx=DRXPhase(
        name="continuous_rx",
        cycle_ms=1.0,
        on_ms=1.0,
        duration_s=1.0,
        on_power_mw=1210.0,
        sleep_power_mw=1210.0,
    ),
    short_drx=DRXPhase(
        name="short_drx",
        cycle_ms=100.0,
        on_ms=45.0,
        duration_s=1.0,
        on_power_mw=1210.0,
        sleep_power_mw=900.0,
    ),
    long_drx=DRXPhase(
        name="long_drx",
        cycle_ms=320.0,
        on_ms=60.0,
        duration_s=9.5,
        on_power_mw=1210.0,
        sleep_power_mw=1008.0,
    ),
)


def derive_tail_parameters(config: DRXConfig = LTE_DRX) -> tuple:
    """(tail_s, tail_mw) implied by a DRX phase sequence.

    The repository's flat LTE profile (``tail_s=11.5``,
    ``tail_mw=1060``) is the flat-tail equivalent of :data:`LTE_DRX`;
    the test suite asserts the two agree.
    """
    return (config.total_tail_s(), config.average_tail_power_mw())
