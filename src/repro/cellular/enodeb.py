"""eNodeBs (cell towers) and the registry the Sense-Aid server queries.

The paper's design point is that the cellular edge *already knows* each
device's coarse location (which cell it is attached to) and its RRC
state, so the middleware gets both for free, without any GPS cost on
the device.  :class:`TowerRegistry` is that source of truth: it tracks
which tower each registered device is attached to and exposes
location/radio-state lookups to the server side.

Devices are referenced by duck type: anything with a ``device_id``
attribute, a ``position()`` method returning an
:class:`~repro.environment.geometry.Point`, and a ``modem`` attribute
(a :class:`~repro.cellular.rrc.RadioModem`).

Scale-out design (see ``docs/performance.md``): the registry keeps a
:class:`~repro.cellular.spatial.UniformGridIndex` of last-observed
device positions, so ``devices_within`` is a bucket lookup bounded by
local occupancy instead of an O(fleet) scan, and position refreshes
are incremental — devices whose mobility model reports them mid-pause
(``position_valid_until``) are skipped outright.  Per-tower member
sets are maintained on every attachment change, giving the server
tower-granularity candidate batches for free.  All of it is exact:
indexed queries return bit-identical results to the brute-force scan
(``devices_within_scan``), which stays available for verification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.cellular.spatial import Cell, UniformGridIndex
from repro.environment.geometry import Point
from repro.sim.perf import PerfRegistry


@dataclass(eq=False)
class ENodeB:
    """One cell tower.

    ``operational`` models whole-tower outages (power loss, backhaul
    cut): a failed tower serves no traffic, and the registry
    re-associates its devices with the nearest surviving tower.
    Compared by identity, so towers stay usable as dict keys across
    fail/restore transitions.
    """

    tower_id: str
    position: Point
    coverage_radius_m: float = 1500.0
    operational: bool = True

    def covers(self, point: Point) -> bool:
        return point.within(self.position, self.coverage_radius_m)

    def fail(self) -> None:
        """Take this tower out of service."""
        self.operational = False

    def restore(self) -> None:
        """Bring this tower back into service."""
        self.operational = True


class TowerRegistry:
    """Tracks towers and device attachments.

    Attachment is nearest-tower.  ``refresh_attachments`` re-evaluates
    devices against the towers; the experiments call it whenever the
    server takes a location snapshot, which mirrors how a handover
    updates the network's view.  With a bound clock the refresh is
    memoised per simulation instant and skips provably-stationary
    devices, so repeated snapshots within one scheduling round are
    free.

    ``use_spatial_index`` selects the grid-backed ``devices_within``
    (the default); the brute-force scan remains available both as the
    fallback and as the reference implementation the property tests
    compare against.  ``version`` counts membership/topology changes
    and keys the server's qualification caches.
    """

    def __init__(
        self,
        towers: Sequence[ENodeB],
        *,
        cell_size_m: float = 500.0,
        use_spatial_index: bool = True,
        clock: Optional[object] = None,
        perf: Optional[PerfRegistry] = None,
    ) -> None:
        if not towers:
            raise ValueError("at least one tower is required")
        ids = [t.tower_id for t in towers]
        if len(set(ids)) != len(ids):
            raise ValueError("tower ids must be unique")
        self._towers: Dict[str, ENodeB] = {t.tower_id: t for t in towers}
        self._devices: Dict[str, object] = {}
        self._attachment: Dict[str, str] = {}
        self._tower_members: Dict[str, Set[str]] = {t.tower_id: set() for t in towers}
        self.use_spatial_index = use_spatial_index
        self._grid = UniformGridIndex(cell_size_m)
        #: Until when each device's observed position is provably fresh.
        self._position_expiry: Dict[str, float] = {}
        #: Devices re-read since their attachment was last recomputed.
        self._attach_dirty: Set[str] = set()
        self._clock = clock  # anything with a ``now`` attribute
        self._perf = perf if perf is not None else PerfRegistry()
        #: Membership/topology change counter (cache key for callers).
        self._version = 0
        #: Bumped by tower fail/restore — invalidates nearest-tower caches.
        self._topology_version = 0
        self._attachments_topology = 0
        #: Per-grid-cell unique nearest tower ("" = ambiguous cell).
        self._cell_tower_cache: Dict[Cell, str] = {}
        self._positions_time: Optional[float] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def bind(self, sim: object) -> None:
        """Adopt a simulator's clock (and perf registry, if it has one).

        Idempotent; the server calls this at construction so every
        registry in a run shares the simulation clock for per-instant
        refresh memoisation.  Explicit constructor arguments win.
        """
        if self._clock is None:
            self._clock = sim
        perf = getattr(sim, "perf", None)
        if perf is not None:
            self._perf = perf

    @property
    def perf(self) -> PerfRegistry:
        """Perf probes for the registry's hot paths."""
        return self._perf

    @property
    def version(self) -> int:
        """Monotone counter of membership and topology changes."""
        return self._version

    def grid_stats(self) -> Dict[str, float]:
        """Spatial-index occupancy statistics (benchmark gates)."""
        return self._grid.occupancy_stats()

    def _now(self) -> Optional[float]:
        return self._clock.now if self._clock is not None else None

    # ------------------------------------------------------------------
    # Towers
    # ------------------------------------------------------------------

    @property
    def towers(self) -> List[ENodeB]:
        return list(self._towers.values())

    def tower(self, tower_id: str) -> ENodeB:
        try:
            return self._towers[tower_id]
        except KeyError:
            raise KeyError(
                f"unknown tower {tower_id!r}; available: {sorted(self._towers)}"
            ) from None

    def nearest_tower(self, point: Point) -> ENodeB:
        """Nearest *operational* tower to a point.

        During a total outage (no tower operational) the plain nearest
        tower is returned — devices stay nominally attached, and the
        fault layer drops their traffic until a tower is restored.
        """
        candidates = [t for t in self._towers.values() if t.operational]
        if not candidates:
            candidates = list(self._towers.values())
        return min(candidates, key=lambda t: t.position.distance_to(point))

    def operational_towers(self) -> List[ENodeB]:
        return [t for t in self._towers.values() if t.operational]

    def fail_tower(self, tower_id: str) -> None:
        """Fail a tower and re-associate its devices (handover storm)."""
        self.tower(tower_id).fail()
        self._note_topology_change()
        self.refresh_attachments()

    def restore_tower(self, tower_id: str) -> None:
        """Restore a tower; devices re-associate by proximity."""
        self.tower(tower_id).restore()
        self._note_topology_change()
        self.refresh_attachments()

    def _note_topology_change(self) -> None:
        self._version += 1
        self._topology_version += 1
        self._cell_tower_cache.clear()

    def towers_covering(self, center: Point, radius_m: float) -> List[ENodeB]:
        """Towers whose coverage intersects a task's circular region."""
        if radius_m < 0:
            raise ValueError(f"radius must be non-negative, got {radius_m!r}")
        return [
            t
            for t in self._towers.values()
            if t.position.distance_to(center) <= t.coverage_radius_m + radius_m
        ]

    # ------------------------------------------------------------------
    # Devices
    # ------------------------------------------------------------------

    def attach_device(self, device: object) -> ENodeB:
        """Register a device with the network; returns its serving tower."""
        device_id = getattr(device, "device_id")
        self._devices[device_id] = device
        position = self._observe_position(device_id, device, self._now())
        tower = self.nearest_tower(position)
        self._set_attachment(device_id, tower.tower_id)
        self._attach_dirty.discard(device_id)
        self._version += 1
        return tower

    def detach_device(self, device_id: str) -> None:
        if self._devices.pop(device_id, None) is None:
            return
        old_tower = self._attachment.pop(device_id, None)
        if old_tower is not None:
            self._tower_members[old_tower].discard(device_id)
        self._grid.remove(device_id)
        self._position_expiry.pop(device_id, None)
        self._attach_dirty.discard(device_id)
        self._version += 1

    def device(self, device_id: str) -> object:
        try:
            return self._devices[device_id]
        except KeyError:
            raise KeyError(f"device {device_id!r} is not attached") from None

    def device_ids(self) -> List[str]:
        return sorted(self._devices)

    def devices_on_tower(self, tower_id: str) -> List[str]:
        """Device ids currently attached to a tower, sorted.

        Maintained incrementally on every attachment change — the
        tower-granularity candidate set Azari-style grouped scheduling
        batches on, with no scan to build it.
        """
        self.tower(tower_id)  # raise on unknown id
        return sorted(self._tower_members[tower_id])

    # ------------------------------------------------------------------
    # Position observation (spatial index maintenance)
    # ------------------------------------------------------------------

    def _observe_position(
        self, device_id: str, device: object, now: Optional[float]
    ) -> Point:
        """Read a device's position into the grid; returns it."""
        position = device.position()
        self._grid.update(device_id, position)
        expiry = float("-inf")  # unknown mobility: always re-read
        if now is not None:
            mobility = getattr(device, "mobility", None)
            valid_until = getattr(mobility, "position_valid_until", None)
            if valid_until is not None:
                expiry = valid_until(now)
        self._position_expiry[device_id] = expiry
        return position

    def refresh_positions(self) -> None:
        """Bring observed positions up to date with the mobility models.

        Memoised per simulation instant (positions are pure functions
        of time), and incremental within an instant change: devices
        whose mobility model guarantees they have not moved since the
        last observation are skipped without a position read.
        """
        now = self._now()
        if now is not None and self._positions_time == now:
            self._perf.count("registry.refresh_positions.memo_hit")
            return
        with self._perf.measure("registry.refresh_positions") as m:
            reread = 0
            for device_id, device in self._devices.items():
                if now is not None and self._position_expiry.get(
                    device_id, float("-inf")
                ) > now:
                    continue
                reread += 1
                self._observe_position(device_id, device, now)
                self._attach_dirty.add(device_id)
            m.items = reread
        self._positions_time = now

    def refresh_attachments(self) -> None:
        """Re-associate devices with their nearest towers (handover).

        Only devices that may have moved since their last attachment
        decision (plus everyone after a tower fail/restore) are
        re-evaluated; per-grid-cell nearest-tower caching answers most
        of those without touching every tower.
        """
        self.refresh_positions()
        with self._perf.measure("registry.refresh_attachments") as m:
            if self._attachments_topology != self._topology_version:
                dirty = list(self._devices)
                self._attachments_topology = self._topology_version
            else:
                dirty = [d for d in self._attach_dirty if d in self._devices]
            for device_id in dirty:
                position = self._grid.position(device_id)
                self._set_attachment(device_id, self._tower_id_for(position))
            self._attach_dirty.clear()
            m.items = len(dirty)

    def _set_attachment(self, device_id: str, tower_id: str) -> None:
        old = self._attachment.get(device_id)
        if old == tower_id:
            return
        if old is not None:
            self._tower_members[old].discard(device_id)
        self._attachment[device_id] = tower_id
        self._tower_members[tower_id].add(device_id)

    def _tower_id_for(self, position: Point) -> str:
        """Nearest-tower id, via the per-cell cache when unambiguous."""
        cell = self._grid.cell_of(position)
        cached = self._cell_tower_cache.get(cell)
        if cached is None:
            cached = self._unique_tower_for_cell(cell)
            self._cell_tower_cache[cell] = cached
        if cached:
            return cached
        return self.nearest_tower(position).tower_id

    def _unique_tower_for_cell(self, cell: Cell) -> str:
        """The tower nearest to *every* point of a cell, or ``""``.

        A tower is provably nearest for the whole cell when its margin
        over the runner-up (measured from the cell centre) exceeds the
        cell diagonal — then no point of the cell can flip the order,
        and the cached answer matches the exact per-device computation.
        """
        size = self._grid.cell_size_m
        center = Point((cell[0] + 0.5) * size, (cell[1] + 0.5) * size)
        candidates = self.operational_towers()
        if not candidates:
            candidates = list(self._towers.values())
        if len(candidates) == 1:
            return candidates[0].tower_id
        ranked = sorted(
            (t.position.distance_to(center), t.tower_id) for t in candidates
        )
        if ranked[1][0] - ranked[0][0] > size * math.sqrt(2.0):
            return ranked[0][1]
        return ""

    def serving_tower(self, device_id: str) -> ENodeB:
        self._require(device_id)
        return self._towers[self._attachment[device_id]]

    def serving_tower_operational(self, device_id: str) -> bool:
        """Whether the device's serving tower is currently in service."""
        return self.serving_tower(device_id).operational

    # ------------------------------------------------------------------
    # Edge visibility used by the Sense-Aid server
    # ------------------------------------------------------------------

    def device_position(self, device_id: str) -> Point:
        """The network's view of a device's location."""
        return self._require(device_id).position()

    def devices_within(self, center: Point, radius_m: float) -> List[str]:
        """Device ids currently inside a circular region.

        Ordered by distance from the centre, then id — a deterministic
        contract shared with :meth:`devices_within_scan`, so indexed
        and scanned results are interchangeable under the same seed.
        With the spatial index (the default) the query touches only
        the grid buckets intersecting the circle; the perf probe
        ``registry.devices_within`` records how many candidates each
        query actually examined.
        """
        if radius_m < 0:
            raise ValueError(f"radius must be non-negative, got {radius_m!r}")
        if not self.use_spatial_index:
            return self.devices_within_scan(center, radius_m)
        self.refresh_positions()
        with self._perf.measure("registry.devices_within") as m:
            touched = 0
            results = []
            for device_id in self._grid.candidates_in_circle(center, radius_m):
                touched += 1
                distance = self._grid.position(device_id).distance_to(center)
                if distance <= radius_m:
                    results.append((distance, device_id))
            results.sort()
            m.items = touched
        return [device_id for _, device_id in results]

    def devices_within_scan(self, center: Point, radius_m: float) -> List[str]:
        """Reference O(fleet) implementation of :meth:`devices_within`.

        Reads live positions from every device; kept as the fallback
        (``use_spatial_index=False``) and as the ground truth the
        property tests compare the grid against.
        """
        if radius_m < 0:
            raise ValueError(f"radius must be non-negative, got {radius_m!r}")
        with self._perf.measure("registry.devices_within_scan") as m:
            results = []
            for device_id, device in self._devices.items():
                distance = device.position().distance_to(center)
                if distance <= radius_m:
                    results.append((distance, device_id))
            results.sort()
            m.items = len(self._devices)
        return [device_id for _, device_id in results]

    def candidate_count_within(self, center: Point, radius_m: float) -> int:
        """Cheap upper bound on ``len(devices_within(center, radius_m))``.

        Counts grid candidates without distance tests — every in-region
        device is a candidate, so a count below a request's density
        proves the request unsatisfiable without scoring anyone.
        """
        if radius_m < 0:
            raise ValueError(f"radius must be non-negative, got {radius_m!r}")
        if not self.use_spatial_index:
            return len(self._devices)
        self.refresh_positions()
        return sum(1 for _ in self._grid.candidates_in_circle(center, radius_m))

    def radio_state(self, device_id: str):
        """The RRC state of a device, as visible to its eNodeB."""
        return self._require(device_id).modem.state

    def seconds_since_last_comm(self, device_id: str) -> Optional[float]:
        """The TTL selector factor: age of the device's last transfer."""
        return self._require(device_id).modem.seconds_since_last_comm()

    def _require(self, device_id: str) -> object:
        if device_id not in self._devices:
            raise KeyError(f"device {device_id!r} is not attached")
        return self._devices[device_id]


def grid_towers(
    width_m: float,
    height_m: float,
    rows: int = 2,
    cols: int = 2,
    coverage_radius_m: float = 1500.0,
) -> List[ENodeB]:
    """Lay out a rows×cols grid of towers covering a rectangle."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    towers = []
    for r in range(rows):
        for c in range(cols):
            x = width_m * (2 * c + 1) / (2 * cols)
            y = height_m * (2 * r + 1) / (2 * rows)
            towers.append(
                ENodeB(
                    tower_id=f"enb-{r}{c}",
                    position=Point(x, y),
                    coverage_radius_m=coverage_radius_m,
                )
            )
    return towers
