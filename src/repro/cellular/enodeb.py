"""eNodeBs (cell towers) and the registry the Sense-Aid server queries.

The paper's design point is that the cellular edge *already knows* each
device's coarse location (which cell it is attached to) and its RRC
state, so the middleware gets both for free, without any GPS cost on
the device.  :class:`TowerRegistry` is that source of truth: it tracks
which tower each registered device is attached to and exposes
location/radio-state lookups to the server side.

Devices are referenced by duck type: anything with a ``device_id``
attribute, a ``position()`` method returning an
:class:`~repro.environment.geometry.Point`, and a ``modem`` attribute
(a :class:`~repro.cellular.rrc.RadioModem`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.environment.geometry import Point


@dataclass(eq=False)
class ENodeB:
    """One cell tower.

    ``operational`` models whole-tower outages (power loss, backhaul
    cut): a failed tower serves no traffic, and the registry
    re-associates its devices with the nearest surviving tower.
    Compared by identity, so towers stay usable as dict keys across
    fail/restore transitions.
    """

    tower_id: str
    position: Point
    coverage_radius_m: float = 1500.0
    operational: bool = True

    def covers(self, point: Point) -> bool:
        return point.within(self.position, self.coverage_radius_m)

    def fail(self) -> None:
        """Take this tower out of service."""
        self.operational = False

    def restore(self) -> None:
        """Bring this tower back into service."""
        self.operational = True


class TowerRegistry:
    """Tracks towers and device attachments.

    Attachment is nearest-tower.  ``refresh_attachments`` re-evaluates
    every device against the towers; the experiments call it whenever
    the server takes a location snapshot, which mirrors how a handover
    updates the network's view.
    """

    def __init__(self, towers: Sequence[ENodeB]) -> None:
        if not towers:
            raise ValueError("at least one tower is required")
        ids = [t.tower_id for t in towers]
        if len(set(ids)) != len(ids):
            raise ValueError("tower ids must be unique")
        self._towers: Dict[str, ENodeB] = {t.tower_id: t for t in towers}
        self._devices: Dict[str, object] = {}
        self._attachment: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Towers
    # ------------------------------------------------------------------

    @property
    def towers(self) -> List[ENodeB]:
        return list(self._towers.values())

    def tower(self, tower_id: str) -> ENodeB:
        try:
            return self._towers[tower_id]
        except KeyError:
            raise KeyError(
                f"unknown tower {tower_id!r}; available: {sorted(self._towers)}"
            ) from None

    def nearest_tower(self, point: Point) -> ENodeB:
        """Nearest *operational* tower to a point.

        During a total outage (no tower operational) the plain nearest
        tower is returned — devices stay nominally attached, and the
        fault layer drops their traffic until a tower is restored.
        """
        candidates = [t for t in self._towers.values() if t.operational]
        if not candidates:
            candidates = list(self._towers.values())
        return min(candidates, key=lambda t: t.position.distance_to(point))

    def operational_towers(self) -> List[ENodeB]:
        return [t for t in self._towers.values() if t.operational]

    def fail_tower(self, tower_id: str) -> None:
        """Fail a tower and re-associate its devices (handover storm)."""
        self.tower(tower_id).fail()
        self.refresh_attachments()

    def restore_tower(self, tower_id: str) -> None:
        """Restore a tower; devices re-associate by proximity."""
        self.tower(tower_id).restore()
        self.refresh_attachments()

    def towers_covering(self, center: Point, radius_m: float) -> List[ENodeB]:
        """Towers whose coverage intersects a task's circular region."""
        if radius_m < 0:
            raise ValueError(f"radius must be non-negative, got {radius_m!r}")
        return [
            t
            for t in self._towers.values()
            if t.position.distance_to(center) <= t.coverage_radius_m + radius_m
        ]

    # ------------------------------------------------------------------
    # Devices
    # ------------------------------------------------------------------

    def attach_device(self, device: object) -> ENodeB:
        """Register a device with the network; returns its serving tower."""
        device_id = getattr(device, "device_id")
        self._devices[device_id] = device
        tower = self.nearest_tower(device.position())
        self._attachment[device_id] = tower.tower_id
        return tower

    def detach_device(self, device_id: str) -> None:
        self._devices.pop(device_id, None)
        self._attachment.pop(device_id, None)

    def device(self, device_id: str) -> object:
        try:
            return self._devices[device_id]
        except KeyError:
            raise KeyError(f"device {device_id!r} is not attached") from None

    def device_ids(self) -> List[str]:
        return sorted(self._devices)

    def refresh_attachments(self) -> None:
        """Re-associate every device with its nearest tower (handover)."""
        for device_id, device in self._devices.items():
            tower = self.nearest_tower(device.position())
            self._attachment[device_id] = tower.tower_id

    def serving_tower(self, device_id: str) -> ENodeB:
        self._require(device_id)
        return self._towers[self._attachment[device_id]]

    def serving_tower_operational(self, device_id: str) -> bool:
        """Whether the device's serving tower is currently in service."""
        return self.serving_tower(device_id).operational

    # ------------------------------------------------------------------
    # Edge visibility used by the Sense-Aid server
    # ------------------------------------------------------------------

    def device_position(self, device_id: str) -> Point:
        """The network's view of a device's location."""
        return self._require(device_id).position()

    def devices_within(self, center: Point, radius_m: float) -> List[str]:
        """Device ids currently inside a circular region, sorted."""
        if radius_m < 0:
            raise ValueError(f"radius must be non-negative, got {radius_m!r}")
        return sorted(
            device_id
            for device_id, device in self._devices.items()
            if device.position().within(center, radius_m)
        )

    def radio_state(self, device_id: str):
        """The RRC state of a device, as visible to its eNodeB."""
        return self._require(device_id).modem.state

    def seconds_since_last_comm(self, device_id: str) -> Optional[float]:
        """The TTL selector factor: age of the device's last transfer."""
        return self._require(device_id).modem.seconds_since_last_comm()

    def _require(self, device_id: str) -> object:
        if device_id not in self._devices:
            raise KeyError(f"device {device_id!r} is not attached")
        return self._devices[device_id]


def grid_towers(
    width_m: float,
    height_m: float,
    rows: int = 2,
    cols: int = 2,
    coverage_radius_m: float = 1500.0,
) -> List[ENodeB]:
    """Lay out a rows×cols grid of towers covering a rectangle."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    towers = []
    for r in range(rows):
        for c in range(cols):
            x = width_m * (2 * c + 1) / (2 * cols)
            y = height_m * (2 * r + 1) / (2 * rows)
            towers.append(
                ENodeB(
                    tower_id=f"enb-{r}{c}",
                    position=Point(x, y),
                    coverage_radius_m=coverage_radius_m,
                )
            )
    return towers
