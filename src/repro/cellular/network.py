"""Message transport between devices and the server side.

The network models two things the experiments need: (1) every transfer
exercises the sending/receiving device's radio (and therefore its
energy ledger), and (2) traffic is routed over the paper's two eNodeB→
core paths — *path 1* straight to the S-GW, or *path 2* through the
Sense-Aid server when the traffic is crowdsensing-related.  Path
counters let tests assert the interposition behaviour; a fail-safe
flag models the paper's "path 1 if the Sense-Aid server crashes".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cellular.packets import Message, TrafficCategory
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class DeliveryReceipt:
    """Outcome of one transfer: when the radio finished, when delivered."""

    message_id: int
    radio_complete_at: float
    delivered_at: float
    path: str


class CellularNetwork:
    """Uplink/downlink transport with core-network latency."""

    PATH_DIRECT = "path1"
    PATH_SENSE_AID = "path2"

    def __init__(
        self,
        sim: Simulator,
        core_latency_s: float = 0.05,
        *,
        loss_probability: float = 0.0,
    ) -> None:
        if core_latency_s < 0:
            raise ValueError(
                f"core latency must be non-negative, got {core_latency_s!r}"
            )
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {loss_probability!r}"
            )
        self._sim = sim
        self._latency = core_latency_s
        #: Probability an uplink message is lost in the core after the
        #: radio transmitted it (energy spent, delivery never happens) —
        #: exercises the data-collection failure handling of §8.
        self.loss_probability = loss_probability
        self._loss_rng = sim.rng.stream("network:loss")
        self._sense_aid_up = True
        self.path1_messages = 0
        self.path2_messages = 0
        self.messages_lost = 0

    @property
    def sense_aid_path_available(self) -> bool:
        return self._sense_aid_up

    def set_sense_aid_path_available(self, available: bool) -> None:
        """Simulate a Sense-Aid server crash / recovery (fail-safe path 1)."""
        self._sense_aid_up = bool(available)

    def route_for(self, message: Message) -> str:
        """Crowdsensing/control traffic interposes through Sense-Aid."""
        crowdsensing = message.category in (
            TrafficCategory.CROWDSENSING,
            TrafficCategory.CONTROL,
        )
        if crowdsensing and self._sense_aid_up:
            return self.PATH_SENSE_AID
        return self.PATH_DIRECT

    def uplink(
        self,
        device: object,
        message: Message,
        on_delivered: Optional[Callable[[Message, DeliveryReceipt], None]] = None,
        *,
        resets_tail: Optional[bool] = None,
    ) -> None:
        """Send ``message`` from ``device`` to the server side.

        Drives the device's radio (which performs energy attribution)
        and delivers the message after the core-network latency.
        """
        self._count_path(message)
        path = self.route_for(message)
        message.created_at = self._sim.now

        def radio_done() -> None:
            radio_complete = self._sim.now
            if (
                self.loss_probability > 0.0
                and self._loss_rng.random() < self.loss_probability
            ):
                self.messages_lost += 1
                return
            if on_delivered is None:
                return

            def deliver() -> None:
                receipt = DeliveryReceipt(
                    message_id=message.message_id,
                    radio_complete_at=radio_complete,
                    delivered_at=self._sim.now,
                    path=path,
                )
                on_delivered(message, receipt)

            self._sim.schedule(self._latency, deliver)

        device.modem.transmit(
            message.size_bytes,
            message.category,
            uplink=True,
            resets_tail=resets_tail,
            on_complete=radio_done,
        )

    def downlink(
        self,
        device: object,
        message: Message,
        on_delivered: Optional[Callable[[Message, DeliveryReceipt], None]] = None,
        *,
        resets_tail: Optional[bool] = None,
    ) -> None:
        """Push ``message`` from the server side down to ``device``."""
        self._count_path(message)
        path = self.route_for(message)
        message.created_at = self._sim.now

        def delivered_to_radio() -> None:
            if on_delivered is None:
                return
            receipt = DeliveryReceipt(
                message_id=message.message_id,
                radio_complete_at=self._sim.now,
                delivered_at=self._sim.now,
                path=path,
            )
            on_delivered(message, receipt)

        def start_radio() -> None:
            device.modem.receive(
                message.size_bytes,
                message.category,
                resets_tail=resets_tail,
                on_complete=delivered_to_radio,
            )

        self._sim.schedule(self._latency, start_radio)

    def _count_path(self, message: Message) -> None:
        if self.route_for(message) == self.PATH_SENSE_AID:
            self.path2_messages += 1
        else:
            self.path1_messages += 1
