"""Message transport between devices and the server side.

The network models two things the experiments need: (1) every transfer
exercises the sending/receiving device's radio (and therefore its
energy ledger), and (2) traffic is routed over the paper's two eNodeB→
core paths — *path 1* straight to the S-GW, or *path 2* through the
Sense-Aid server when the traffic is crowdsensing-related.  Path
counters let tests assert the interposition behaviour; a fail-safe
flag models the paper's "path 1 if the Sense-Aid server crashes".

Failure semantics live in two places, deliberately separated:

- the network's own i.i.d. ``loss_probability`` and optional
  ``delay_jitter_s`` draw from the dedicated ``network:loss`` and
  ``network:delay`` streams, so enabling either never perturbs the
  mobility/traffic/sensor streams of a same-seed run;
- richer, correlated failures (bursty loss, duplication, reordering,
  tower outages) are delegated to an installed **fault hook** (see
  :mod:`repro.faults`), which draws from its own ``faults:*`` streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cellular.packets import Message, TrafficCategory
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class DeliveryReceipt:
    """Outcome of one transfer: when the radio finished, when delivered."""

    message_id: int
    radio_complete_at: float
    delivered_at: float
    path: str


class CellularNetwork:
    """Uplink/downlink transport with core-network latency."""

    PATH_DIRECT = "path1"
    PATH_SENSE_AID = "path2"

    def __init__(
        self,
        sim: Simulator,
        core_latency_s: float = 0.05,
        *,
        loss_probability: float = 0.0,
        delay_jitter_s: float = 0.0,
    ) -> None:
        if core_latency_s < 0:
            raise ValueError(
                f"core latency must be non-negative, got {core_latency_s!r}"
            )
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {loss_probability!r}"
            )
        if delay_jitter_s < 0:
            raise ValueError(
                f"delay_jitter_s must be non-negative, got {delay_jitter_s!r}"
            )
        self._sim = sim
        self._latency = core_latency_s
        #: Probability an uplink message is lost in the core after the
        #: radio transmitted it (energy spent, delivery never happens) —
        #: exercises the data-collection failure handling of §8.
        self.loss_probability = loss_probability
        #: Uniform extra core delay in [0, delay_jitter_s) per delivery.
        self.delay_jitter_s = delay_jitter_s
        self._loss_rng = sim.rng.stream("network:loss")
        self._delay_rng = sim.rng.stream("network:delay")
        self._fault_hook = None
        self._sense_aid_up = True
        self._path_listeners: List[Callable[[bool], None]] = []
        self.path1_messages = 0
        self.path2_messages = 0
        self.messages_lost = 0
        self.messages_dropped_by_faults = 0
        self.messages_duplicated = 0

    @property
    def core_latency_s(self) -> float:
        return self._latency

    # ------------------------------------------------------------------
    # Fault layer attachment
    # ------------------------------------------------------------------

    def install_fault_hook(self, hook) -> None:
        """Attach a fault layer.

        The hook duck-types two methods, ``on_uplink(device, message)``
        and ``on_downlink(device, message)``, each returning either
        ``None`` (no injection) or a decision object with ``drop``
        (bool), ``extra_delay_s`` (float) and ``copy_delays`` (extra
        deliveries, each with its own additional delay — duplication,
        and through unequal delays, reordering).
        """
        if self._fault_hook is not None and hook is not None:
            raise RuntimeError("a fault hook is already installed")
        self._fault_hook = hook

    def clear_fault_hook(self) -> None:
        self._fault_hook = None

    # ------------------------------------------------------------------
    # Sense-Aid path availability (crash / partition fail-safe)
    # ------------------------------------------------------------------

    @property
    def sense_aid_path_available(self) -> bool:
        return self._sense_aid_up

    def set_sense_aid_path_available(self, available: bool) -> None:
        """Simulate a Sense-Aid server crash / recovery (fail-safe path 1)."""
        available = bool(available)
        if available == self._sense_aid_up:
            return
        self._sense_aid_up = available
        for listener in list(self._path_listeners):
            listener(available)

    def add_path_listener(self, listener: Callable[[bool], None]) -> None:
        """Subscribe to Sense-Aid path up/down transitions.

        Clients use this to enter/leave degraded mode when the control
        plane becomes unreachable (crash or partition).
        """
        self._path_listeners.append(listener)

    def remove_path_listener(self, listener: Callable[[bool], None]) -> None:
        if listener in self._path_listeners:
            self._path_listeners.remove(listener)

    def route_for(self, message: Message) -> str:
        """Crowdsensing/control traffic interposes through Sense-Aid."""
        crowdsensing = message.category in (
            TrafficCategory.CROWDSENSING,
            TrafficCategory.CONTROL,
        )
        if crowdsensing and self._sense_aid_up:
            return self.PATH_SENSE_AID
        return self.PATH_DIRECT

    def uplink(
        self,
        device: object,
        message: Message,
        on_delivered: Optional[Callable[[Message, DeliveryReceipt], None]] = None,
        *,
        resets_tail: Optional[bool] = None,
    ) -> None:
        """Send ``message`` from ``device`` to the server side.

        Drives the device's radio (which performs energy attribution)
        and delivers the message after the core-network latency.  Loss
        (i.i.d. or injected) strikes *after* the radio transmitted:
        energy is spent either way.
        """
        self._count_path(message)
        path = self.route_for(message)
        message.created_at = self._sim.now

        def radio_done() -> None:
            radio_complete = self._sim.now
            if (
                self.loss_probability > 0.0
                and self._loss_rng.random() < self.loss_probability
            ):
                self.messages_lost += 1
                return
            decision = (
                self._fault_hook.on_uplink(device, message)
                if self._fault_hook is not None
                else None
            )
            if decision is not None and decision.drop:
                self.messages_dropped_by_faults += 1
                return
            if on_delivered is None:
                return

            def deliver() -> None:
                receipt = DeliveryReceipt(
                    message_id=message.message_id,
                    radio_complete_at=radio_complete,
                    delivered_at=self._sim.now,
                    path=path,
                )
                on_delivered(message, receipt)

            for delay in self._delivery_delays(decision):
                self._sim.schedule(delay, deliver)

        device.modem.transmit(
            message.size_bytes,
            message.category,
            uplink=True,
            resets_tail=resets_tail,
            on_complete=radio_done,
        )

    def downlink(
        self,
        device: object,
        message: Message,
        on_delivered: Optional[Callable[[Message, DeliveryReceipt], None]] = None,
        *,
        resets_tail: Optional[bool] = None,
    ) -> None:
        """Push ``message`` from the server side down to ``device``."""
        self._count_path(message)
        path = self.route_for(message)
        message.created_at = self._sim.now

        def delivered_to_radio() -> None:
            if on_delivered is None:
                return
            receipt = DeliveryReceipt(
                message_id=message.message_id,
                radio_complete_at=self._sim.now,
                delivered_at=self._sim.now,
                path=path,
            )
            on_delivered(message, receipt)

        def start_radio() -> None:
            device.modem.receive(
                message.size_bytes,
                message.category,
                resets_tail=resets_tail,
                on_complete=delivered_to_radio,
            )

        decision = (
            self._fault_hook.on_downlink(device, message)
            if self._fault_hook is not None
            else None
        )
        if decision is not None and decision.drop:
            self.messages_dropped_by_faults += 1
            return
        for delay in self._delivery_delays(decision):
            self._sim.schedule(delay, start_radio)

    def _delivery_delays(self, decision) -> List[float]:
        """Core-transit delays for one message's deliveries.

        One entry per copy: the original plus any injected duplicates.
        The i.i.d. jitter is drawn once per message from the dedicated
        ``network:delay`` stream (and only when the feature is on, so a
        jitter-free run makes zero draws).
        """
        base = self._latency
        if self.delay_jitter_s > 0.0:
            base += self._delay_rng.random() * self.delay_jitter_s
        if decision is None:
            return [base]
        delays = [base + decision.extra_delay_s]
        for copy_delay in decision.copy_delays:
            self.messages_duplicated += 1
            delays.append(base + copy_delay)
        return delays

    def _count_path(self, message: Message) -> None:
        if self.route_for(message) == self.PATH_SENSE_AID:
            self.path2_messages += 1
        else:
            self.path1_messages += 1
