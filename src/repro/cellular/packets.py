"""Message types exchanged between devices, the Sense-Aid server, and
crowdsensing application servers.

Sizes matter only insofar as they determine radio transfer time; the
paper reports ~600-byte crowdsensing uploads in its user study, so that
is the default payload size for sensor data.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

#: Payload size of one crowdsensing upload in the paper's user study.
SENSOR_UPLOAD_BYTES = 600

#: A control ping (battery level, IMEI hash, budget) is tiny.
CONTROL_PING_BYTES = 96

#: A task assignment pushed down to a device.
ASSIGNMENT_BYTES = 128


class TrafficCategory(Enum):
    """Energy-attribution category for a radio transfer."""

    BACKGROUND = "background"
    CROWDSENSING = "crowdsensing"
    CONTROL = "control"


class MessageKind(Enum):
    """Application-level meaning of a message."""

    REGISTER = "register"
    DEREGISTER = "deregister"
    PREFERENCES = "preferences"
    CONTROL_PING = "control_ping"
    TASK_ASSIGNMENT = "task_assignment"
    SENSOR_DATA = "sensor_data"
    TASK_SUBMISSION = "task_submission"
    TASK_UPDATE = "task_update"
    TASK_DELETE = "task_delete"
    APP_TRAFFIC = "app_traffic"


_message_ids = itertools.count(1)


def reset_message_ids(start: int = 1) -> None:
    """Rewind the global message-id counter.

    Message ids come from a process-global counter; replay harnesses
    comparing runs bit-for-bit should reset it before each run (see
    also :func:`repro.core.tasks.reset_task_ids`).
    """
    global _message_ids
    _message_ids = itertools.count(start)


@dataclass
class Message:
    """One application message travelling over the simulated network."""

    kind: MessageKind
    sender: str
    size_bytes: int
    category: TrafficCategory = TrafficCategory.BACKGROUND
    payload: Dict[str, Any] = field(default_factory=dict)
    created_at: Optional[float] = None
    message_id: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(
                f"size_bytes must be non-negative, got {self.size_bytes!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Message #{self.message_id} {self.kind.value} from={self.sender} "
            f"{self.size_bytes}B {self.category.value}>"
        )


def sensor_data_message(sender: str, payload: Dict[str, Any]) -> Message:
    """Build a crowdsensing data upload (600 B, crowdsensing category)."""
    return Message(
        kind=MessageKind.SENSOR_DATA,
        sender=sender,
        size_bytes=SENSOR_UPLOAD_BYTES,
        category=TrafficCategory.CROWDSENSING,
        payload=payload,
    )


def control_ping_message(sender: str, payload: Dict[str, Any]) -> Message:
    """Build a device→server state ping (control category)."""
    return Message(
        kind=MessageKind.CONTROL_PING,
        sender=sender,
        size_bytes=CONTROL_PING_BYTES,
        category=TrafficCategory.CONTROL,
        payload=payload,
    )
