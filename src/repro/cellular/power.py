"""Radio power profiles.

Per-state power draws and timer lengths for 4G LTE and 3G radios.  The
LTE numbers follow Huang et al., *A Close Examination of Performance
and Power Characteristics of 4G LTE Networks* (MobiSys'12), the source
the paper itself cites for its 1,300 mW connected vs 11 mW idle
comparison and the ~11 s tail.  The 3G numbers follow the same study's
UMTS measurements and are used only by the Figure-2 motivation case
study (3G vs LTE bars).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class TailStage:
    """One phase of a structured tail (e.g. UMTS DCH-tail then FACH)."""

    name: str
    duration_s: float
    power_mw: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.power_mw <= 0:
            raise ValueError("tail stage duration and power must be positive")


@dataclass(frozen=True)
class RadioPowerProfile:
    """Power/time parameters of one radio access technology.

    All powers are milliwatts; all durations seconds.  ``active_mw`` is
    the draw while user data is actually being transferred;
    ``tail_mw`` is the average draw across the post-transfer tail
    (short DRX + long DRX for LTE); ``promotion_mw`` is the draw during
    the IDLE→CONNECTED control-plane exchange.
    """

    name: str
    idle_mw: float
    promotion_mw: float
    promotion_s: float
    active_mw: float
    tail_mw: float
    tail_s: float
    uplink_bps: float
    downlink_bps: float
    min_transfer_s: float
    #: Optional fine structure of the tail (UMTS: a high-power DCH tail
    #: followed by a low-power FACH phase).  When given, the stages'
    #: total duration must equal ``tail_s`` and their energy must match
    #: ``tail_mw × tail_s`` (the flat average), so coarse and fine
    #: accounting agree.
    tail_stages: Tuple[TailStage, ...] = field(default=())

    def __post_init__(self) -> None:
        for field_name in (
            "idle_mw",
            "promotion_mw",
            "promotion_s",
            "active_mw",
            "tail_mw",
            "tail_s",
            "uplink_bps",
            "downlink_bps",
            "min_transfer_s",
        ):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value!r}")
        if self.idle_mw >= self.tail_mw:
            raise ValueError("idle power must be below tail power")
        if self.tail_mw > self.active_mw:
            raise ValueError("tail power must not exceed active power")
        if self.tail_stages:
            total_s = sum(s.duration_s for s in self.tail_stages)
            if abs(total_s - self.tail_s) > 1e-6:
                raise ValueError(
                    f"tail stages sum to {total_s}s but tail_s is {self.tail_s}s"
                )
            staged_energy = sum(
                s.power_mw * s.duration_s for s in self.tail_stages
            )
            flat_energy = self.tail_mw * self.tail_s
            if abs(staged_energy - flat_energy) > 0.01 * flat_energy:
                raise ValueError(
                    "tail stages' energy must match the flat tail average"
                )

    def transfer_time(self, size_bytes: int, *, uplink: bool = True) -> float:
        """Seconds of ACTIVE state needed to move ``size_bytes``.

        Small transfers are dominated by scheduling-grant latency, so a
        floor of ``min_transfer_s`` applies.
        """
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be non-negative, got {size_bytes!r}")
        rate = self.uplink_bps if uplink else self.downlink_bps
        return max(self.min_transfer_s, size_bytes * 8.0 / rate)

    # -- closed-form energy helpers (Joules), relative to idle baseline --

    def promotion_energy_j(self) -> float:
        """Marginal energy of one IDLE→CONNECTED promotion."""
        return (self.promotion_mw - self.idle_mw) / 1000.0 * self.promotion_s

    def tail_energy_j(self, duration_s: float | None = None) -> float:
        """Marginal energy of ``duration_s`` seconds of tail (default: full tail)."""
        duration = self.tail_s if duration_s is None else duration_s
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration!r}")
        return (self.tail_mw - self.idle_mw) / 1000.0 * duration

    def tail_energy_between(self, start_s: float, end_s: float) -> float:
        """Marginal (over idle) tail energy between two offsets from
        the tail's start, respecting stage structure; offsets are
        clamped to ``[0, tail_s]``."""
        start = max(0.0, min(start_s, self.tail_s))
        end = max(start, min(end_s, self.tail_s))
        if end <= start:
            return 0.0
        if not self.tail_stages:
            return (self.tail_mw - self.idle_mw) / 1000.0 * (end - start)
        energy = 0.0
        offset = 0.0
        for stage in self.tail_stages:
            stage_start = offset
            stage_end = offset + stage.duration_s
            lo = max(start, stage_start)
            hi = min(end, stage_end)
            if hi > lo:
                energy += (stage.power_mw - self.idle_mw) / 1000.0 * (hi - lo)
            offset = stage_end
        return energy

    def tail_power_at(self, offset_s: float) -> float:
        """Instantaneous tail power ``offset_s`` after the tail began."""
        if not self.tail_stages:
            return self.tail_mw
        offset = max(0.0, min(offset_s, self.tail_s))
        elapsed = 0.0
        for stage in self.tail_stages:
            elapsed += stage.duration_s
            if offset < elapsed:
                return stage.power_mw
        return self.tail_stages[-1].power_mw

    def active_energy_j(self, duration_s: float, *, over_tail: bool = False) -> float:
        """Marginal energy of ``duration_s`` seconds of data transfer.

        ``over_tail=True`` computes the increment over tail power (the
        cost of transferring *during* an already-running tail) rather
        than over idle.
        """
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s!r}")
        baseline = self.tail_mw if over_tail else self.idle_mw
        return (self.active_mw - baseline) / 1000.0 * duration_s

    def cold_upload_energy_j(self, size_bytes: int) -> float:
        """Marginal energy of one upload starting from IDLE.

        promotion + transfer + one full tail — the cost the Periodic
        baseline pays for every sample, and the cost PCS pays on a
        misprediction.
        """
        transfer = self.transfer_time(size_bytes)
        return (
            self.promotion_energy_j()
            + self.active_energy_j(transfer)
            + self.tail_energy_j()
        )


#: 4G LTE profile (Huang et al., MobiSys'12, Table 4 / Fig. 7; the paper
#: quotes the same study: ~1,300 mW promotion/connected vs 11 mW idle,
#: tail of about 11 s for the LTE radio stack).
LTE_POWER_PROFILE = RadioPowerProfile(
    name="LTE",
    idle_mw=11.4,
    promotion_mw=1210.0,
    promotion_s=0.26,
    active_mw=1650.0,
    tail_mw=1060.0,
    tail_s=11.5,
    uplink_bps=2_000_000.0,
    downlink_bps=10_000_000.0,
    min_transfer_s=0.05,
)

#: 3G (UMTS) profile from the same study: slower, lower-power radio
#: whose tail has real structure — a high-power DCH inactivity phase,
#: then a low-power FACH phase before IDLE.  ``tail_mw``/``tail_s`` are
#: the flat average of the two stages.
THREEG_POWER_PROFILE = RadioPowerProfile(
    name="3G",
    idle_mw=10.0,
    promotion_mw=659.0,
    promotion_s=2.0,
    active_mw=800.0,
    tail_mw=558.0,
    tail_s=8.0,
    uplink_bps=500_000.0,
    downlink_bps=2_000_000.0,
    min_transfer_s=0.1,
    tail_stages=(
        TailStage("DCH_tail", duration_s=3.0, power_mw=800.0),
        TailStage("FACH", duration_s=5.0, power_mw=412.8),
    ),
)

PROFILES = {
    "LTE": LTE_POWER_PROFILE,
    "3G": THREEG_POWER_PROFILE,
}


def profile_by_name(name: str) -> RadioPowerProfile:
    """Look up a built-in power profile (``"LTE"`` or ``"3G"``)."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown radio profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
