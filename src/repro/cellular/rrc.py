"""The LTE Radio Resource Control (RRC) state machine, per device.

States modelled (following Huang et al., MobiSys'12, which the paper
cites):

- ``IDLE`` — RRC_IDLE, ~11 mW.
- ``PROMOTING`` — the IDLE→CONNECTED control-plane exchange (~0.26 s at
  ~1,210 mW).
- ``ACTIVE`` — RRC_CONNECTED with user data in flight.
- ``TAIL`` — RRC_CONNECTED after the last packet (short + long DRX,
  ~11.5 s at ~1,060 mW average).  By default *any* transfer resets the
  tail timer; Sense-Aid Complete's defining feature is that a
  crowdsensing upload during the tail does **not** reset it
  (:class:`TailPolicy`).

Besides simulating state transitions, the modem performs **marginal
energy attribution**: every transfer is charged, in closed form, the
energy the radio spends *because of that transfer* relative to the
counterfactual where it never happened.  This is exactly the accounting
the paper uses to compare frameworks:

- upload from IDLE → promotion + transfer + a full tail;
- upload during TAIL with reset (Sense-Aid Basic) → transfer increment
  over tail power + the tail *extension*;
- upload during TAIL without reset (Sense-Aid Complete) → transfer
  increment only;
- upload while ACTIVE (a PCS piggyback hit) → just the transfer-time
  extension.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, List, Optional

from repro.cellular.packets import TrafficCategory
from repro.cellular.power import RadioPowerProfile
from repro.sim.engine import PRIORITY_RADIO, Simulator
from repro.sim.events import Event
from repro.sim.metrics import StateResidency


class RRCState(Enum):
    IDLE = "idle"
    PROMOTING = "promoting"
    ACTIVE = "active"
    TAIL = "tail"


class TailPolicy(Enum):
    """How crowdsensing/control transfers interact with the tail timer.

    ``RESET`` is stock RRC behaviour (Sense-Aid Basic): every transfer
    restarts the tail.  ``NO_RESET`` is the carrier-cooperative mode
    (Sense-Aid Complete): crowdsensing and control transfers leave the
    tail deadline untouched, so the radio drops to IDLE exactly when it
    would have anyway.  Background (regular app) traffic always resets.
    """

    RESET = "reset"
    NO_RESET = "no_reset"


StateListener = Callable[[RRCState, RRCState], None]
EnergyListener = Callable[[TrafficCategory, float, str], None]


class RadioModem:
    """Simulated cellular radio for one device."""

    def __init__(
        self,
        sim: Simulator,
        profile: RadioPowerProfile,
        owner_id: str,
        tail_policy: TailPolicy = TailPolicy.RESET,
    ) -> None:
        self._sim = sim
        self.profile = profile
        self.owner_id = owner_id
        self.tail_policy = tail_policy
        self._residency = StateResidency(sim.clock, RRCState.IDLE)
        self._state = RRCState.IDLE
        self._active_until = 0.0
        self._tail_deadline = 0.0
        self._tail_entered_at = 0.0
        self._tail_offset_base = 0.0
        self._resume_tail_deadline: Optional[float] = None
        self._burst_resets_tail = False
        self._pending_transition: Optional[Event] = None
        self._last_comm_end: Optional[float] = None
        self._state_listeners: List[StateListener] = []
        self._energy_listeners: List[EnergyListener] = []
        self._transfers = 0
        self._promotions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def state(self) -> RRCState:
        return self._state

    @property
    def in_tail(self) -> bool:
        return self._state is RRCState.TAIL

    @property
    def is_connected(self) -> bool:
        """True in any RRC_CONNECTED sub-state (active or tail)."""
        return self._state in (RRCState.ACTIVE, RRCState.TAIL)

    @property
    def promotions(self) -> int:
        return self._promotions

    @property
    def transfers(self) -> int:
        return self._transfers

    def tail_remaining(self) -> float:
        """Seconds of tail left, or 0.0 when not in the tail."""
        if self._state is not RRCState.TAIL:
            return 0.0
        return max(0.0, self._tail_deadline - self._sim.now)

    def seconds_since_last_comm(self) -> Optional[float]:
        """The paper's TTL factor: now minus last transfer completion.

        None if the radio has never communicated.
        """
        if self._last_comm_end is None:
            return None
        return self._sim.now - self._last_comm_end

    def total_energy_j(self) -> float:
        """Total radio energy so far, integrated over state residency."""
        power_mw = {
            RRCState.IDLE: self.profile.idle_mw,
            RRCState.PROMOTING: self.profile.promotion_mw,
            RRCState.ACTIVE: self.profile.active_mw,
            RRCState.TAIL: self.profile.tail_mw,
        }
        snapshot = self._residency.snapshot()
        return sum(
            power_mw[state] / 1000.0 * seconds for state, seconds in snapshot.items()
        )

    def state_residency(self) -> dict:
        """Seconds spent in each RRC state so far."""
        return self._residency.snapshot()

    # ------------------------------------------------------------------
    # Listeners
    # ------------------------------------------------------------------

    def add_state_listener(self, listener: StateListener) -> None:
        """Observe transitions; e.g. clients trigger uploads on TAIL entry."""
        self._state_listeners.append(listener)

    def add_energy_listener(self, listener: EnergyListener) -> None:
        """Observe marginal energy charges ``(category, joules, reason)``."""
        self._energy_listeners.append(listener)

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------

    def transmit(
        self,
        size_bytes: int,
        category: TrafficCategory,
        *,
        uplink: bool = True,
        resets_tail: Optional[bool] = None,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> float:
        """Send/receive ``size_bytes`` of data; returns the completion time.

        ``resets_tail`` defaults from the modem's :class:`TailPolicy`:
        background traffic always resets; crowdsensing/control traffic
        resets only under ``TailPolicy.RESET``.
        """
        if resets_tail is None:
            resets_tail = self._default_resets_tail(category)
        transfer_s = self.profile.transfer_time(size_bytes, uplink=uplink)
        now = self._sim.now
        self._transfers += 1

        if self._state is RRCState.IDLE:
            completion = self._start_from_idle(transfer_s, category)
            self._burst_resets_tail = True  # cold bursts always get a fresh tail
            self._resume_tail_deadline = None
        elif self._state is RRCState.PROMOTING:
            completion = self._extend_active(transfer_s, category)
        elif self._state is RRCState.ACTIVE:
            completion = self._extend_active(transfer_s, category)
            if resets_tail:
                self._burst_resets_tail = True
        else:  # TAIL
            completion = self._start_from_tail(transfer_s, category, resets_tail)

        self._schedule_completion(completion, on_complete)
        return completion

    def receive(
        self,
        size_bytes: int,
        category: TrafficCategory,
        *,
        resets_tail: Optional[bool] = None,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> float:
        """Downlink transfer; a page from IDLE still pays the promotion."""
        return self.transmit(
            size_bytes,
            category,
            uplink=False,
            resets_tail=resets_tail,
            on_complete=on_complete,
        )

    # ------------------------------------------------------------------
    # Internal state machinery
    # ------------------------------------------------------------------

    def _default_resets_tail(self, category: TrafficCategory) -> bool:
        if category is TrafficCategory.BACKGROUND:
            return True
        return self.tail_policy is TailPolicy.RESET

    def _start_from_idle(self, transfer_s: float, category: TrafficCategory) -> float:
        now = self._sim.now
        profile = self.profile
        self._promotions += 1
        self._charge(
            category,
            profile.promotion_energy_j()
            + profile.active_energy_j(transfer_s)
            + profile.tail_energy_j(),
            "cold_upload",
        )
        self._enter(RRCState.PROMOTING)
        self._active_until = now + profile.promotion_s + transfer_s
        self._cancel_pending()
        self._pending_transition = self._sim.schedule(
            profile.promotion_s, self._promotion_done, priority=PRIORITY_RADIO
        )
        return self._active_until

    def _extend_active(self, transfer_s: float, category: TrafficCategory) -> float:
        # The active phase (and everything after it) shifts later by the
        # transfer time, so the marginal cost is active-over-idle time.
        self._charge(
            category, self.profile.active_energy_j(transfer_s), "piggyback"
        )
        self._active_until += transfer_s
        if self._state is RRCState.ACTIVE:
            self._cancel_pending()
            self._pending_transition = self._sim.schedule_at(
                self._active_until, self._active_done, priority=PRIORITY_RADIO
            )
        return self._active_until

    def _start_from_tail(
        self, transfer_s: float, category: TrafficCategory, resets_tail: bool
    ) -> float:
        now = self._sim.now
        profile = self.profile
        old_deadline = self._tail_deadline
        offset_now = self._tail_offset(now)

        # Marginal energy, stage-exact (see power.tail_energy_between):
        # the transfer itself costs active-over-idle; what it changes
        # about the tail depends on whether the timer resets.
        marginal = profile.active_energy_j(transfer_s)
        if resets_tail:
            # Actual: a full fresh tail after the transfer.
            # Counterfactual: the remainder of the old tail.
            marginal += profile.tail_energy_between(0.0, profile.tail_s)
            marginal -= profile.tail_energy_between(offset_now, profile.tail_s)
            self._burst_resets_tail = True
            self._resume_tail_deadline = None
        else:
            # The timer keeps running during the transfer; the radio
            # idles exactly when it would have, so the only tail-side
            # change is the stretch the transfer displaced.
            marginal -= profile.tail_energy_between(
                offset_now, offset_now + transfer_s
            )
            self._burst_resets_tail = False
            self._resume_tail_deadline = old_deadline
        reason = "tail_upload_reset" if resets_tail else "tail_upload_no_reset"
        self._charge(category, max(0.0, marginal), reason)

        self._enter(RRCState.ACTIVE)
        self._active_until = now + transfer_s
        self._cancel_pending()
        self._pending_transition = self._sim.schedule_at(
            self._active_until, self._active_done, priority=PRIORITY_RADIO
        )
        return self._active_until

    def _promotion_done(self) -> None:
        self._enter(RRCState.ACTIVE)
        self._pending_transition = self._sim.schedule_at(
            self._active_until, self._active_done, priority=PRIORITY_RADIO
        )

    def _active_done(self) -> None:
        now = self._sim.now
        self._pending_transition = None
        self._last_comm_end = now
        if self._burst_resets_tail or self._resume_tail_deadline is None:
            deadline = now + self.profile.tail_s
        else:
            deadline = self._resume_tail_deadline
        self._resume_tail_deadline = None
        self._burst_resets_tail = False
        if deadline <= now:
            self._enter(RRCState.IDLE)
            return
        self._tail_deadline = deadline
        # Where in the (possibly staged) tail we are resuming: a fresh
        # tail starts at offset 0; a preserved deadline means the timer
        # kept running while we transferred.
        self._tail_entered_at = now
        self._tail_offset_base = self.profile.tail_s - (deadline - now)
        self._enter(RRCState.TAIL)
        self._pending_transition = self._sim.schedule_at(
            deadline, self._tail_done, priority=PRIORITY_RADIO
        )

    def _tail_offset(self, at_time: float) -> float:
        """Seconds into the tail's (staged) lifetime at ``at_time``."""
        return max(
            0.0,
            min(
                self.profile.tail_s,
                self._tail_offset_base + (at_time - self._tail_entered_at),
            ),
        )

    def _tail_done(self) -> None:
        self._pending_transition = None
        self._enter(RRCState.IDLE)

    def _schedule_completion(
        self, completion: float, on_complete: Optional[Callable[[], None]]
    ) -> None:
        if on_complete is not None:
            # Fire after the radio's own transition at the same instant.
            self._sim.schedule_at(completion, on_complete)

    def _enter(self, new_state: RRCState) -> None:
        old_state = self._state
        if new_state is old_state:
            return
        self._residency.transition(new_state)
        self._state = new_state
        for listener in self._state_listeners:
            listener(old_state, new_state)

    def _cancel_pending(self) -> None:
        if self._pending_transition is not None:
            self._sim.cancel(self._pending_transition)
            self._pending_transition = None

    def _charge(self, category: TrafficCategory, joules: float, reason: str) -> None:
        if joules < 0:  # pragma: no cover - defensive; formulas are non-negative
            raise ValueError(f"negative marginal energy {joules!r} ({reason})")
        for listener in self._energy_listeners:
            listener(category, joules, reason)
