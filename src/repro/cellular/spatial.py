"""Uniform-grid spatial index for the tower registry's device fleet.

``TowerRegistry.devices_within`` answers "which devices are inside this
task's circle right now?" — the single hottest control-plane query.  A
linear scan is O(fleet) per request; at city scale (thousands of
devices, dozens of concurrent campaigns) that dominates the run.  The
fix mirrors cniCloud's lesson for querying cellular state at scale:
index first, scan never.

The index is a uniform grid: the plane is cut into ``cell_size_m``
squares and each device lives in the bucket of its last observed
position.  A circle query touches only the buckets intersecting the
circle's bounding box, so the work per query is bounded by the
occupancy of those buckets — independent of fleet size.  Position
updates are incremental: a device that moved within its cell is a
no-op, a device that crossed a cell border moves between two set
buckets, both O(1).

The index stores *observed* positions; whoever owns it (the registry)
is responsible for refreshing observations before querying.  Exactness
is preserved because the grid only pre-filters: every candidate still
gets the precise circle test against its stored position.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.environment.geometry import Point

Cell = Tuple[int, int]


class UniformGridIndex:
    """Point set with O(1) updates and bucket-bounded circle queries."""

    def __init__(self, cell_size_m: float = 500.0) -> None:
        if cell_size_m <= 0:
            raise ValueError(f"cell_size_m must be positive, got {cell_size_m!r}")
        self.cell_size_m = cell_size_m
        self._buckets: Dict[Cell, Set[str]] = {}
        self._cells: Dict[str, Cell] = {}
        self._points: Dict[str, Point] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def cell_of(self, point: Point) -> Cell:
        size = self.cell_size_m
        return (int(point.x // size), int(point.y // size))

    def update(self, item_id: str, point: Point) -> bool:
        """Observe an item's position; returns True if it changed bucket."""
        cell = self.cell_of(point)
        old = self._cells.get(item_id)
        self._points[item_id] = point
        if old == cell:
            return False
        if old is not None:
            bucket = self._buckets[old]
            bucket.discard(item_id)
            if not bucket:
                del self._buckets[old]
        self._buckets.setdefault(cell, set()).add(item_id)
        self._cells[item_id] = cell
        return True

    def update_many(self, observations: Iterable[Tuple[str, Point]]) -> int:
        """Batched :meth:`update`; returns how many items changed bucket.

        The struct-of-arrays device plane feeds the index with one call
        per refresh instead of one per device, and uses the returned
        churn count to report how much of the fleet actually crossed a
        cell boundary (most walking devices don't, per refresh).
        """
        moved = 0
        for item_id, point in observations:
            if self.update(item_id, point):
                moved += 1
        return moved

    def remove(self, item_id: str) -> None:
        cell = self._cells.pop(item_id, None)
        self._points.pop(item_id, None)
        if cell is None:
            return
        bucket = self._buckets[cell]
        bucket.discard(item_id)
        if not bucket:
            del self._buckets[cell]

    def position(self, item_id: str) -> Optional[Point]:
        """The last observed position, or None if never observed."""
        return self._points.get(item_id)

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._cells

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def candidates_in_circle(self, center: Point, radius_m: float) -> Iterator[str]:
        """Item ids in buckets intersecting the circle's bounding box.

        A superset of the exact answer — callers apply the precise
        distance test.  When the bounding box covers more cells than
        exist (huge radius, sparse world) the occupied buckets are
        walked directly, so a query never costs more than the fleet.
        """
        if radius_m < 0:
            raise ValueError(f"radius must be non-negative, got {radius_m!r}")
        size = self.cell_size_m
        min_cx = int((center.x - radius_m) // size)
        max_cx = int((center.x + radius_m) // size)
        min_cy = int((center.y - radius_m) // size)
        max_cy = int((center.y + radius_m) // size)
        box_cells = (max_cx - min_cx + 1) * (max_cy - min_cy + 1)
        if box_cells >= len(self._buckets):
            for (cx, cy), bucket in self._buckets.items():
                if min_cx <= cx <= max_cx and min_cy <= cy <= max_cy:
                    yield from bucket
            return
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                bucket = self._buckets.get((cx, cy))
                if bucket:
                    yield from bucket

    def query_circle(self, center: Point, radius_m: float) -> List[Tuple[float, str]]:
        """Exact members of the circle as ``(distance, id)``, sorted.

        Sorted by distance then id — the registry's deterministic
        ordering contract (nearest first, ids break ties).
        """
        results = []
        for item_id in self.candidates_in_circle(center, radius_m):
            distance = self._points[item_id].distance_to(center)
            if distance <= radius_m:
                results.append((distance, item_id))
        results.sort()
        return results

    # ------------------------------------------------------------------
    # Introspection (perf gates, tests)
    # ------------------------------------------------------------------

    def bucket_count(self) -> int:
        return len(self._buckets)

    def max_bucket_occupancy(self) -> int:
        return max((len(b) for b in self._buckets.values()), default=0)

    def occupancy_stats(self) -> Dict[str, float]:
        """Bucket statistics for scorecards and gates."""
        occupancies = [len(b) for b in self._buckets.values()]
        total = sum(occupancies)
        return {
            "items": total,
            "buckets": len(occupancies),
            "max_bucket": max(occupancies, default=0),
            "mean_bucket": total / len(occupancies) if occupancies else 0.0,
            "cell_size_m": self.cell_size_m,
        }
