"""Command-line interface: run any paper experiment from the shell.

Usage::

    python -m repro list
    python -m repro run fig7           # one figure
    python -m repro run exp1           # a whole experiment (figs 7-9)
    python -m repro run all            # everything, Table 2 last
    python -m repro run table2 --seed 11
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    diurnal,
    robustness,
    exp1_radius,
    exp2_period,
    exp3_tasks,
    pcs_accuracy,
    power_case_study,
    summary,
    survey,
    tailtime,
    weight_sweep,
)
from repro.experiments.common import ScenarioConfig

#: Experiment name -> (description, needs_scenario, runner).
_SCENARIO_EXPERIMENTS: Dict[str, tuple] = {
    "exp1": ("Experiment 1 / Figs 7-9 (area radius)", exp1_radius.main),
    "exp2": ("Experiment 2 / Figs 10-11 (sampling period)", exp2_period.main),
    "exp3": ("Experiment 3 / Figs 12-13 (concurrent tasks)", exp3_tasks.main),
    "fig14": ("Fig 14 (PCS prediction accuracy)", pcs_accuracy.main),
    "table2": ("Table 2 (energy-savings summary)", summary.main),
    "weights": (
        "Extension: selector-weight sensitivity (fairness vs energy)",
        weight_sweep.main,
    ),
}

_PLAIN_EXPERIMENTS: Dict[str, tuple] = {
    "fig1": ("Fig 1 (energy-tolerance survey)", survey.main),
    "fig2": ("Fig 2 (app power case study)", power_case_study.main),
    "fig6": ("Fig 6 (radio tail trace)", tailtime.main),
}

#: Extension experiments take a bare seed rather than a scenario.
_SEED_EXPERIMENTS: Dict[str, tuple] = {
    "diurnal": ("Extension: savings across a 24 h usage cycle", diurnal.main),
    "robustness": (
        "Extension: savings distribution across seeded worlds",
        robustness.main,
    ),
}

ALIASES = {
    "fig7": "exp1",
    "fig8": "exp1",
    "fig9": "exp1",
    "fig10": "exp2",
    "fig11": "exp2",
    "fig12": "exp3",
    "fig13": "exp3",
}

RUN_ORDER = [
    "fig1", "fig2", "fig6", "exp1", "exp2", "exp3", "fig14", "table2",
    "diurnal", "robustness", "weights",
]


def available_experiments() -> List[str]:
    return RUN_ORDER + sorted(ALIASES)


def _resolve(name: str) -> str:
    name = name.lower()
    name = ALIASES.get(name, name)
    if (
        name not in _SCENARIO_EXPERIMENTS
        and name not in _PLAIN_EXPERIMENTS
        and name not in _SEED_EXPERIMENTS
    ):
        raise KeyError(name)
    return name


def run_experiment(name: str, seed: int = 7) -> str:
    """Run one experiment by name; returns its printed output."""
    resolved = _resolve(name)
    if resolved in _PLAIN_EXPERIMENTS:
        _, runner = _PLAIN_EXPERIMENTS[resolved]
        return runner()
    if resolved in _SEED_EXPERIMENTS:
        _, runner = _SEED_EXPERIMENTS[resolved]
        return runner(seed)
    _, runner = _SCENARIO_EXPERIMENTS[resolved]
    return runner(ScenarioConfig(seed=seed))


def _cmd_list(_args: argparse.Namespace) -> int:
    print("available experiments:")
    for name in RUN_ORDER:
        description = (
            _PLAIN_EXPERIMENTS.get(name)
            or _SCENARIO_EXPERIMENTS.get(name)
            or _SEED_EXPERIMENTS.get(name)
        )[0]
        print(f"  {name:8s} {description}")
    print("aliases:")
    for alias in sorted(ALIASES):
        print(f"  {alias:8s} -> {ALIASES[alias]}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    targets = RUN_ORDER if args.experiment == "all" else [args.experiment]
    for i, target in enumerate(targets):
        if i:
            print("\n" + "=" * 72 + "\n")
        try:
            run_experiment(target, seed=args.seed)
        except KeyError:
            print(
                f"unknown experiment {target!r}; "
                f"choose from: all, {', '.join(available_experiments())}",
                file=sys.stderr,
            )
            return 2
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import write_report

    try:
        write_report(
            args.output, seed=args.seed, experiments=args.experiments
        )
    except KeyError as exc:
        print(
            f"unknown experiment {exc.args[0]!r}; "
            f"choose from: {', '.join(available_experiments())}",
            file=sys.stderr,
        )
        return 2
    print(f"report written to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sense-Aid reproduction: regenerate the paper's tables and figures",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    list_parser = subparsers.add_parser("list", help="list available experiments")
    list_parser.set_defaults(func=_cmd_list)
    run_parser = subparsers.add_parser("run", help="run an experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id (see 'list') or 'all'")
    run_parser.add_argument(
        "--seed", type=int, default=7, help="scenario master seed (default 7)"
    )
    run_parser.set_defaults(func=_cmd_run)
    report_parser = subparsers.add_parser(
        "report", help="run experiments and save a combined report"
    )
    report_parser.add_argument(
        "--output", default="reproduction_report.txt", help="report file path"
    )
    report_parser.add_argument(
        "--seed", type=int, default=7, help="scenario master seed (default 7)"
    )
    report_parser.add_argument(
        "--experiments",
        nargs="*",
        default=None,
        help="experiment ids to include (default: all)",
    )
    report_parser.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
