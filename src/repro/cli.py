"""Command-line interface: run any paper experiment from the shell.

Usage::

    python -m repro list
    python -m repro run fig7           # one figure
    python -m repro run exp1           # a whole experiment (figs 7-9)
    python -m repro run all            # everything, Table 2 last
    python -m repro run table2 --seed 11
    python -m repro run exp1 --workers 4 --cache-dir .repro-cache
    python -m repro bench compare --baseline benchmarks/baselines \\
        --current benchmarks/artifacts
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    diurnal,
    robustness,
    exp1_radius,
    exp2_period,
    exp3_tasks,
    pcs_accuracy,
    power_case_study,
    summary,
    survey,
    tailtime,
    weight_sweep,
)
from repro.experiments.common import ScenarioConfig
from repro.runner import ExperimentEngine

#: Experiment name -> (description, needs_scenario, runner).
_SCENARIO_EXPERIMENTS: Dict[str, tuple] = {
    "exp1": ("Experiment 1 / Figs 7-9 (area radius)", exp1_radius.main),
    "exp2": ("Experiment 2 / Figs 10-11 (sampling period)", exp2_period.main),
    "exp3": ("Experiment 3 / Figs 12-13 (concurrent tasks)", exp3_tasks.main),
    "fig14": ("Fig 14 (PCS prediction accuracy)", pcs_accuracy.main),
    "table2": ("Table 2 (energy-savings summary)", summary.main),
    "weights": (
        "Extension: selector-weight sensitivity (fairness vs energy)",
        weight_sweep.main,
    ),
}

_PLAIN_EXPERIMENTS: Dict[str, tuple] = {
    "fig1": ("Fig 1 (energy-tolerance survey)", survey.main),
    "fig2": ("Fig 2 (app power case study)", power_case_study.main),
    "fig6": ("Fig 6 (radio tail trace)", tailtime.main),
}

#: Extension experiments take a bare seed rather than a scenario.
_SEED_EXPERIMENTS: Dict[str, tuple] = {
    "diurnal": ("Extension: savings across a 24 h usage cycle", diurnal.main),
    "robustness": (
        "Extension: savings distribution across seeded worlds",
        robustness.main,
    ),
}

ALIASES = {
    "fig7": "exp1",
    "fig8": "exp1",
    "fig9": "exp1",
    "fig10": "exp2",
    "fig11": "exp2",
    "fig12": "exp3",
    "fig13": "exp3",
}

RUN_ORDER = [
    "fig1", "fig2", "fig6", "exp1", "exp2", "exp3", "fig14", "table2",
    "diurnal", "robustness", "weights",
]

#: Experiments whose ``main`` accepts the parallel execution engine
#: (the sweeps — everything else is a single short run).
_ENGINE_AWARE = {"exp1", "exp2", "exp3", "weights", "diurnal", "robustness"}


def available_experiments() -> List[str]:
    return RUN_ORDER + sorted(ALIASES)


def _resolve(name: str) -> str:
    name = name.lower()
    name = ALIASES.get(name, name)
    if (
        name not in _SCENARIO_EXPERIMENTS
        and name not in _PLAIN_EXPERIMENTS
        and name not in _SEED_EXPERIMENTS
    ):
        raise KeyError(name)
    return name


def run_experiment(
    name: str, seed: int = 7, engine: Optional[ExperimentEngine] = None
) -> str:
    """Run one experiment by name; returns its printed output.

    ``engine`` (if given) parallelizes and caches the sweep
    experiments; the single-run experiments ignore it.
    """
    resolved = _resolve(name)
    extra = (
        {"engine": engine} if engine is not None and resolved in _ENGINE_AWARE else {}
    )
    if resolved in _PLAIN_EXPERIMENTS:
        _, runner = _PLAIN_EXPERIMENTS[resolved]
        return runner()
    if resolved in _SEED_EXPERIMENTS:
        _, runner = _SEED_EXPERIMENTS[resolved]
        return runner(seed, **extra)
    _, runner = _SCENARIO_EXPERIMENTS[resolved]
    return runner(ScenarioConfig(seed=seed), **extra)


def _engine_from_args(args: argparse.Namespace) -> Optional[ExperimentEngine]:
    workers = getattr(args, "workers", 1)
    cache_dir = getattr(args, "cache_dir", None)
    if workers == 1 and cache_dir is None:
        return None
    return ExperimentEngine(workers=workers, cache_dir=cache_dir)


def _cmd_list(_args: argparse.Namespace) -> int:
    print("available experiments:")
    for name in RUN_ORDER:
        description = (
            _PLAIN_EXPERIMENTS.get(name)
            or _SCENARIO_EXPERIMENTS.get(name)
            or _SEED_EXPERIMENTS.get(name)
        )[0]
        print(f"  {name:8s} {description}")
    print("aliases:")
    for alias in sorted(ALIASES):
        print(f"  {alias:8s} -> {ALIASES[alias]}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    targets = RUN_ORDER if args.experiment == "all" else [args.experiment]
    engine = _engine_from_args(args)
    for i, target in enumerate(targets):
        if i:
            print("\n" + "=" * 72 + "\n")
        try:
            run_experiment(target, seed=args.seed, engine=engine)
        except KeyError:
            print(
                f"unknown experiment {target!r}; "
                f"choose from: all, {', '.join(available_experiments())}",
                file=sys.stderr,
            )
            return 2
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import write_report

    try:
        write_report(
            args.output,
            seed=args.seed,
            experiments=args.experiments,
            engine=_engine_from_args(args),
        )
    except KeyError as exc:
        print(
            f"unknown experiment {exc.args[0]!r}; "
            f"choose from: {', '.join(available_experiments())}",
            file=sys.stderr,
        )
        return 2
    print(f"report written to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sense-Aid reproduction: regenerate the paper's tables and figures",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    list_parser = subparsers.add_parser("list", help="list available experiments")
    list_parser.set_defaults(func=_cmd_list)
    run_parser = subparsers.add_parser("run", help="run an experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id (see 'list') or 'all'")
    run_parser.add_argument(
        "--seed", type=int, default=7, help="scenario master seed (default 7)"
    )
    _add_engine_arguments(run_parser)
    run_parser.set_defaults(func=_cmd_run)
    report_parser = subparsers.add_parser(
        "report", help="run experiments and save a combined report"
    )
    report_parser.add_argument(
        "--output", default="reproduction_report.txt", help="report file path"
    )
    report_parser.add_argument(
        "--seed", type=int, default=7, help="scenario master seed (default 7)"
    )
    report_parser.add_argument(
        "--experiments",
        nargs="*",
        default=None,
        help="experiment ids to include (default: all)",
    )
    _add_engine_arguments(report_parser)
    report_parser.set_defaults(func=_cmd_report)

    bench_parser = subparsers.add_parser(
        "bench", help="benchmark artifact tooling (regression gate)"
    )
    bench_sub = bench_parser.add_subparsers(dest="bench_command", required=True)
    compare_parser = bench_sub.add_parser(
        "compare",
        help="compare BENCH_*.json artifacts against committed baselines",
    )
    compare_parser.add_argument(
        "--baseline",
        default="benchmarks/baselines",
        help="directory of committed baseline artifacts",
    )
    compare_parser.add_argument(
        "--current",
        default="benchmarks/artifacts",
        help="directory of freshly generated artifacts",
    )
    compare_parser.add_argument(
        "--tolerances",
        default=None,
        help="tolerance policy JSON (default: <baseline>/tolerances.json)",
    )
    compare_parser.add_argument(
        "--markdown",
        default=None,
        help="also write the delta table as markdown to this file "
        "('-' for stdout, 'GITHUB_STEP_SUMMARY' for the CI job summary)",
    )
    compare_parser.add_argument(
        "--strict-missing",
        action="store_true",
        help="fail when a baseline artifact was not produced by the current run",
    )
    compare_parser.set_defaults(func=_cmd_bench_compare)
    update_parser = bench_sub.add_parser(
        "update-baselines",
        help="copy current BENCH_*.json artifacts over the committed baselines",
    )
    update_parser.add_argument("--baseline", default="benchmarks/baselines")
    update_parser.add_argument("--current", default="benchmarks/artifacts")
    update_parser.set_defaults(func=_cmd_bench_update)

    soak_parser = subparsers.add_parser(
        "soak",
        help="chaos soak: seeded fault fuzzing + invariant suite "
        "(or --replay a shrunken reproducer)",
    )
    soak_parser.add_argument(
        "--seed", type=int, default=7, help="nemesis master seed (default 7)"
    )
    soak_parser.add_argument(
        "--episodes", type=int, default=4, help="episodes to run (default 4)"
    )
    soak_parser.add_argument(
        "--tier",
        default="medium",
        choices=["light", "medium", "heavy"],
        help="nemesis intensity tier (default medium)",
    )
    soak_parser.add_argument(
        "--first-episode",
        type=int,
        default=0,
        help="starting episode index (default 0)",
    )
    soak_parser.add_argument(
        "--devices", type=int, default=10, help="fleet size (default 10)"
    )
    soak_parser.add_argument(
        "--horizon",
        type=float,
        default=1200.0,
        help="fault horizon per episode in sim seconds (default 1200)",
    )
    soak_parser.add_argument(
        "--settle",
        type=float,
        default=420.0,
        help="fault-free settle window after the horizon (default 420)",
    )
    soak_parser.add_argument(
        "--no-replay-check",
        action="store_true",
        help="skip the same-seed bit-identity re-run of each episode",
    )
    soak_parser.add_argument(
        "--artifact-dir",
        default="soak-failures",
        help="where shrunken reproducer JSONs are written on failure "
        "(default soak-failures/)",
    )
    soak_parser.add_argument(
        "--shrink-budget",
        type=int,
        default=48,
        help="max probe runs the shrinker may spend per failure (default 48)",
    )
    soak_parser.add_argument(
        "--replay",
        metavar="FILE",
        default=None,
        help="replay a shrunken reproducer JSON instead of fuzzing",
    )
    soak_parser.add_argument(
        "--planted-bug",
        default=None,
        help=argparse.SUPPRESS,  # test-only hook: inject a known bug
    )
    soak_parser.set_defaults(func=_cmd_soak)

    plane_parser = subparsers.add_parser(
        "plane",
        help="device-plane tooling: vector-vs-object throughput and "
        "bit-identity cross-check",
    )
    plane_sub = plane_parser.add_subparsers(dest="plane_command", required=True)
    plane_bench = plane_sub.add_parser(
        "bench",
        help="run one campaign on both planes and report device-events/s",
    )
    plane_bench.add_argument(
        "--devices", type=int, default=10_000, help="fleet size (default 10000)"
    )
    plane_bench.add_argument(
        "--rounds", type=int, default=30, help="sensing rounds (default 30)"
    )
    plane_bench.add_argument(
        "--seed", type=int, default=7, help="fleet seed (default 7)"
    )
    plane_bench.add_argument(
        "--kind",
        default=None,
        choices=["object", "vector"],
        help="run a single plane instead of both",
    )
    plane_bench.set_defaults(func=_cmd_plane_bench)
    plane_check = plane_sub.add_parser(
        "check",
        help="assert the vector plane is bit-identical to the object plane",
    )
    plane_check.add_argument(
        "--seed", type=int, default=7, help="fleet seed (default 7)"
    )
    plane_check.add_argument(
        "--devices", type=int, default=200, help="fleet size (default 200)"
    )
    plane_check.add_argument(
        "--rounds", type=int, default=40, help="sensing rounds (default 40)"
    )
    plane_check.set_defaults(func=_cmd_plane_check)

    storage_parser = subparsers.add_parser(
        "storage",
        help="datastore tooling: conformance-check the selected backend",
    )
    storage_sub = storage_parser.add_subparsers(dest="storage_command", required=True)
    storage_check = storage_sub.add_parser(
        "check",
        help="run the conformance kit against the backend REPRO_DATASTORE "
        "selects (or --spec)",
    )
    storage_check.add_argument(
        "--spec",
        default=None,
        help="backend spec to check (memory, sqlite, sqlite:<path>); "
        "default: the REPRO_DATASTORE environment",
    )
    storage_check.set_defaults(func=_cmd_storage_check)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the service front over stdin/stdout: one JSON request "
        "per input line, one JSON response per output line",
    )
    serve_parser.add_argument(
        "--seed", type=int, default=7, help="backend world seed (default 7)"
    )
    serve_parser.add_argument(
        "--consumers", type=int, default=4, help="consumer coroutines (default 4)"
    )
    serve_parser.add_argument(
        "--slots", type=int, default=8, help="concurrency slots (default 8)"
    )
    serve_parser.add_argument(
        "--queue-capacity", type=int, default=256, help="request queue bound"
    )
    serve_parser.add_argument(
        "--service-time",
        type=float,
        default=0.0,
        help="modelled per-request service time in seconds (default 0)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    loadgen_parser = subparsers.add_parser(
        "loadgen",
        help="drive the service front with the seeded load generator "
        "and print the latency/RPS report",
    )
    loadgen_parser.add_argument(
        "--seed", type=int, default=7, help="schedule seed (default 7)"
    )
    loadgen_parser.add_argument(
        "--requests", type=int, default=200, help="requests to send (default 200)"
    )
    loadgen_parser.add_argument(
        "--mode",
        default="open",
        choices=["open", "closed"],
        help="open loop (arrival pressure) or closed loop (throughput)",
    )
    loadgen_parser.add_argument(
        "--rate", type=float, default=200.0, help="open-loop arrival rate in rps"
    )
    loadgen_parser.add_argument(
        "--concurrency", type=int, default=4, help="closed-loop worker count"
    )
    loadgen_parser.add_argument(
        "--consumers", type=int, default=4, help="service consumer coroutines"
    )
    loadgen_parser.add_argument(
        "--slots", type=int, default=8, help="service concurrency slots"
    )
    loadgen_parser.add_argument(
        "--service-time",
        type=float,
        default=0.0,
        help="modelled per-request service time in seconds (default 0)",
    )
    loadgen_parser.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="compress scheduled offsets and retry waits by this factor",
    )
    loadgen_parser.add_argument(
        "--retry",
        action="store_true",
        help="retry shed requests per RetryPolicy, honouring Retry-After",
    )
    loadgen_parser.add_argument(
        "--queue-capacity", type=int, default=64, help="admission queue capacity"
    )
    loadgen_parser.add_argument(
        "--service-rate",
        type=float,
        default=50.0,
        help="admission fluid-drain rate in requests/s",
    )
    loadgen_parser.set_defaults(func=_cmd_loadgen)
    return parser


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sweep experiments (default 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache; re-runs skip computed points",
    )


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench.compare import compare_dirs, write_markdown

    report = compare_dirs(
        baseline_dir=args.baseline,
        current_dir=args.current,
        tolerances_path=args.tolerances,
        strict_missing=args.strict_missing,
    )
    print(report.summary())
    if args.markdown:
        write_markdown(report, args.markdown)
    return 0 if report.passed else 1


def _cmd_bench_update(args: argparse.Namespace) -> int:
    from repro.bench.compare import update_baselines

    copied = update_baselines(current_dir=args.current, baseline_dir=args.baseline)
    if not copied:
        print(f"no BENCH_*.json artifacts found in {args.current}", file=sys.stderr)
        return 2
    for name in copied:
        print(f"updated {name}")
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    import os
    import tempfile

    from repro.soak import (
        SoakHarness,
        build_reproducer,
        load_reproducer,
        replay_reproducer,
        shrink_episode,
        write_reproducer,
    )

    wal_root = tempfile.mkdtemp(prefix="repro-soak-")

    if args.replay is not None:
        try:
            reproducer = load_reproducer(args.replay)
        except (OSError, ValueError) as exc:
            print(f"cannot load reproducer: {exc}", file=sys.stderr)
            return 2
        violations, signature, stats = replay_reproducer(reproducer, wal_root)
        print(
            f"replayed {args.replay}: {len(reproducer['plan']['events'])} "
            f"event(s), seed {reproducer['sim_seed']}"
        )
        for violation in violations:
            print(f"  VIOLATION {violation.code}: {violation.message}")
        if not violations:
            print("  no invariant violations (failure did not reproduce)")
        print(f"  signature {signature[:16]}…  stats {stats}")
        return 1 if violations else 0

    harness = SoakHarness(
        args.seed,
        wal_root=wal_root,
        tier=args.tier,
        n_devices=args.devices,
        horizon_s=args.horizon,
        settle_s=args.settle,
        check_replay=not args.no_replay_check,
        planted_bug=args.planted_bug,
    )
    report = harness.run(args.episodes, first_episode=args.first_episode)
    print(
        f"soak: seed {args.seed}, tier {args.tier}, "
        f"{report.episodes} episode(s), "
        f"pass rate {report.invariant_pass_rate:.0%}"
    )
    for result in report.results:
        verdict = "ok" if result.ok else "FAIL " + ",".join(result.codes())
        print(
            f"  episode {result.episode}: {result.plan_events} fault(s), "
            f"{result.stats['data_points']} data points, "
            f"{result.stats['failovers']} failover(s) — {verdict}"
        )
    failures = report.failures
    if not failures:
        return 0
    os.makedirs(args.artifact_dir, exist_ok=True)
    for result in failures:
        shrunk = shrink_episode(harness, result, max_runs=args.shrink_budget)
        reproducer = build_reproducer(harness, result, shrunk)
        path = os.path.join(
            args.artifact_dir,
            f"soak-seed{args.seed}-ep{result.episode}.json",
        )
        write_reproducer(path, reproducer)
        print(
            f"  episode {result.episode}: shrunk "
            f"{shrunk.original_events} -> {shrunk.shrunk_events} event(s) "
            f"in {shrunk.runs} run(s); reproducer at {path}"
        )
    return 1


def _cmd_storage_check(args: argparse.Namespace) -> int:
    """Conformance-check the backend the current spec resolves to.

    The kit creates and destroys its own scratch instances, so a
    ``sqlite:<path>`` spec is checked on fresh files *next to* the
    named one — never on the live store itself.
    """
    import os
    import tempfile

    from repro.storage import (
        ConformanceError,
        check_backend_conformance,
        default_spec,
        resolve_backend,
    )

    spec = (args.spec or default_spec()).strip()
    if spec.startswith("sqlite"):
        from repro.storage import SqliteBackend

        scratch = tempfile.mkdtemp(prefix="repro-storage-check-")
        counter = iter(range(1_000_000))

        def factory():
            return SqliteBackend(
                os.path.join(scratch, f"conformance-{next(counter)}.sqlite3")
            )

    else:

        def factory():
            return resolve_backend(spec)

    try:
        checks = check_backend_conformance(factory)
    except ConformanceError as exc:
        print(f"storage backend {spec!r} FAILED conformance: {exc}")
        return 1
    except ValueError as exc:
        print(f"bad datastore spec: {exc}", file=sys.stderr)
        return 2
    print(f"storage backend {spec!r} passed {len(checks)} conformance checks")
    return 0


def _cmd_plane_bench(args: argparse.Namespace) -> int:
    import time

    from repro.core.deviceplane import (
        FleetSpec,
        default_campaign,
        make_plane,
        run_campaign,
    )

    spec = FleetSpec(devices=args.devices, seed=args.seed)
    campaign = default_campaign(spec)
    kinds = [args.kind] if args.kind else ["object", "vector"]
    rates = {}
    for kind in kinds:
        plane = make_plane(spec, kind=kind)
        start = time.perf_counter()
        result = run_campaign(plane, campaign, args.rounds)
        wall_s = time.perf_counter() - start
        rates[kind] = result.device_events / wall_s if wall_s > 0 else 0.0
        print(
            f"{kind:6s} plane: {result.device_events} device-events in "
            f"{wall_s:.3f}s = {rates[kind]:,.0f} events/s "
            f"({result.uploads} uploads, {result.selections} selections)"
        )
    if len(rates) == 2 and rates["object"] > 0:
        print(f"speedup: {rates['vector'] / rates['object']:.1f}x")
    return 0


def _cmd_plane_check(args: argparse.Namespace) -> int:
    from repro.soak.invariants import check_plane_equivalence

    violations = check_plane_equivalence(
        args.seed, devices=args.devices, rounds=args.rounds
    )
    if violations:
        for violation in violations:
            print(f"VIOLATION {violation.code}: {violation.message}")
        return 1
    print(
        f"planes bit-identical: seed {args.seed}, {args.devices} devices, "
        f"{args.rounds} rounds"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Newline-delimited-JSON transport for the service front.

    Each stdin line is ``{"kind": ..., "payload": {...}}``; each stdout
    line is the matching :class:`~repro.service.api.ServiceResponse`
    as JSON.  EOF drains the queue and prints the scorecard to stderr —
    a real request/response loop without needing a socket stack.
    """
    import asyncio
    import json

    from repro.core.config import OverloadPolicy
    from repro.service import (
        AppServerBackend,
        RequestKind,
        SenseAidService,
        ServiceConfig,
        build_world,
    )

    kinds = {kind.value: kind for kind in RequestKind}

    async def serve() -> dict:
        sim, _, cas = build_world(seed=args.seed)
        backend = AppServerBackend(sim, cas)
        config = ServiceConfig(
            queue_capacity=args.queue_capacity,
            consumers=args.consumers,
            concurrency_slots=args.slots,
            service_time_s=args.service_time,
            overload=OverloadPolicy(),
        )
        service = SenseAidService(backend.handle, config)
        pending = []
        async with service:
            for line in sys.stdin:
                line = line.strip()
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                    kind = kinds[str(raw["kind"])]
                except (json.JSONDecodeError, KeyError, TypeError) as exc:
                    print(
                        json.dumps({"status": "rejected", "error": str(exc)}),
                        flush=True,
                    )
                    continue

                async def roundtrip(kind=kind, payload=raw.get("payload")):
                    response = await service.submit(kind, payload)
                    print(json.dumps(response.as_dict()), flush=True)

                pending.append(asyncio.ensure_future(roundtrip()))
            if pending:
                await asyncio.gather(*pending)
        service.ledger.assert_accounted()
        return service.scorecard()

    scorecard = asyncio.run(serve())
    print(json.dumps(scorecard, indent=2), file=sys.stderr)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.core.config import OverloadPolicy, RetryPolicy
    from repro.service import (
        AppServerBackend,
        LoadGenerator,
        LoadSpec,
        SenseAidService,
        ServiceConfig,
        build_world,
    )

    spec = LoadSpec(
        seed=args.seed,
        n_requests=args.requests,
        mode=args.mode,
        rate_rps=args.rate,
        concurrency=args.concurrency,
    )
    generator = LoadGenerator(
        spec,
        retry_policy=RetryPolicy() if args.retry else None,
        time_scale=args.time_scale,
    )
    config = ServiceConfig(
        consumers=args.consumers,
        concurrency_slots=args.slots,
        service_time_s=args.service_time,
        overload=OverloadPolicy(
            queue_capacity=args.queue_capacity,
            service_rate_per_s=args.service_rate,
        ),
    )

    async def drive():
        sim, _, cas = build_world(seed=args.seed)
        backend = AppServerBackend(sim, cas)
        service = SenseAidService(backend.handle, config)
        async with service:
            report = await generator.run(service)
        service.ledger.assert_accounted()
        return report, service.scorecard()

    report, scorecard = asyncio.run(drive())
    print(json.dumps({"report": report.as_dict(), "service": scorecard}, indent=2))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
