"""Client-side Sense-Aid library (runs on the device).

Exposes the paper's five-call API — ``register()``, ``deregister()``,
``update_preferences()``, ``start_sensing()``, ``send_sense_data()`` —
and implements the tail-time machinery underneath: pending assignments
are held until the radio enters its tail (or is already connected), at
which point sensing and upload happen nearly for free; a
deadline-grace timer force-uploads if no tail arrives in time.
"""

from repro.clientlib.client import ClientStats, PendingAssignment, SenseAidClient

__all__ = ["ClientStats", "PendingAssignment", "SenseAidClient"]
