"""The Sense-Aid client-side library.

Strategy for an incoming assignment:

- radio already CONNECTED (active or in its tail) → sense and upload
  immediately; the upload is nearly free (and under Sense-Aid Complete
  it does not even extend the tail);
- radio IDLE → hold the assignment and watch radio state; the next
  tail the user's own traffic opens is the upload opportunity;
- deadline approaching with no tail → force the upload anyway (paying
  a promotion) so data quality never suffers — the paper's
  "prerequisite of not harming crowdsensing data".

State reports (battery level, cumulative crowdsensing energy) ride the
control plane at each tail entry, mirroring the paper's service thread
that "sends these control messages to the proxy server only when the
radio tail time is found" — and, like the paper, their energy is
excluded from the crowdsensing account.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cellular.network import CellularNetwork
from repro.cellular.packets import sensor_data_message
from repro.cellular.rrc import RRCState
from repro.core.server import Assignment, SenseAidServer
from repro.devices.device import SimDevice
from repro.devices.sensors import SensorReading
from repro.sim.engine import Simulator
from repro.sim.events import Event


@dataclass
class PendingAssignment:
    """An assignment waiting for an upload opportunity."""

    assignment: Assignment
    force_timer: Optional[Event] = None
    completed: bool = False


@dataclass
class ClientStats:
    """Where this client's uploads happened (for diagnostics/tests)."""

    assignments_received: int = 0
    uploads_in_tail: int = 0
    uploads_piggybacked: int = 0
    uploads_forced: int = 0
    state_reports: int = 0

    @property
    def uploads_total(self) -> int:
        return self.uploads_in_tail + self.uploads_piggybacked + self.uploads_forced


class SenseAidClient:
    """Per-device middleware endpoint."""

    def __init__(
        self,
        sim: Simulator,
        device: SimDevice,
        server: SenseAidServer,
        network: CellularNetwork,
    ) -> None:
        self._sim = sim
        self._device = device
        self._server = server
        self._network = network
        self._pending: Dict[str, PendingAssignment] = {}
        self._registered = False
        self.stats = ClientStats()
        device.modem.add_state_listener(self._on_radio_state)

    @property
    def device(self) -> SimDevice:
        return self._device

    @property
    def server(self) -> SenseAidServer:
        return self._server

    @property
    def registered(self) -> bool:
        return self._registered

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # The paper's five-call client API
    # ------------------------------------------------------------------

    def register(self) -> None:
        """Sign up for crowdsensing campaigns."""
        if self._registered:
            raise RuntimeError(f"{self._device.device_id} is already registered")
        self._server.register_device(self._device, self._on_assignment)
        self._registered = True

    def deregister(self) -> None:
        if not self._registered:
            raise RuntimeError(f"{self._device.device_id} is not registered")
        for pending in self._pending.values():
            self._cancel_force_timer(pending)
        self._pending.clear()
        self._server.deregister_device(self._device.device_id)
        self._registered = False

    def bind_server(self, server: SenseAidServer) -> None:
        """Point this client at a (different) edge instance.

        Only allowed while unregistered; a registered client moves via
        :meth:`migrate`.
        """
        if self._registered:
            raise RuntimeError("deregister (or migrate) before re-binding")
        self._server = server

    def migrate(self, server: SenseAidServer) -> None:
        """Hand this client over to another edge instance.

        Used by the federated deployment when the user walks into a
        different instance's region: pending assignments at the old
        instance are abandoned (its scheduler will see the device as
        unqualified there anyway) and the client re-registers at the
        new one.
        """
        if self._registered:
            self.deregister()
        self._server = server
        self.register()

    def update_preferences(
        self,
        *,
        energy_budget_j: Optional[float] = None,
        critical_battery_pct: Optional[float] = None,
    ) -> None:
        """Change the user's participation preferences, locally and
        at the server."""
        if energy_budget_j is not None:
            self._device.preferences.energy_budget_j = energy_budget_j
        if critical_battery_pct is not None:
            self._device.preferences.critical_battery_pct = critical_battery_pct
        if self._registered:
            self._server.update_preferences(
                self._device.device_id,
                energy_budget_j=energy_budget_j,
                critical_battery_pct=critical_battery_pct,
            )

    def start_sensing(self, assignment: Assignment) -> SensorReading:
        """Sample the sensor an assignment asks for."""
        return self._device.sample(assignment.sensor_type)

    def send_sense_data(
        self, assignment: Assignment, reading: SensorReading
    ) -> None:
        """Upload one reading for an assignment over the data path."""
        message = sensor_data_message(
            self._device.device_id,
            {
                "device_id": self._device.device_id,
                "request_id": assignment.request.request_id,
                "value": reading.value,
                "sensed_at": reading.time,
            },
        )
        self._network.uplink(
            self._device,
            message,
            on_delivered=self._server.receive_sensed_data,
            resets_tail=self._server.crowdsensing_resets_tail(),
        )
        # Stamp the state fields after the radio has accepted (and
        # charged) the transfer, so the server's record reflects this
        # very upload's cost — not the counter from before it.
        message.payload["battery_pct"] = self._device.battery.level_pct
        message.payload["energy_used_j"] = self._device.crowdsensing_energy_j()

    # ------------------------------------------------------------------
    # Assignment handling
    # ------------------------------------------------------------------

    def _on_assignment(self, assignment: Assignment) -> None:
        self.stats.assignments_received += 1
        pending = PendingAssignment(assignment=assignment)
        self._pending[assignment.request.request_id] = pending
        if self._device.modem.state in (RRCState.ACTIVE, RRCState.PROMOTING):
            self._complete(pending, "piggyback")
            return
        if self._device.modem.in_tail:
            self._complete(pending, "tail")
            return
        grace = self._server.config.deadline_grace_s
        fire_at = max(self._sim.now, assignment.deadline - grace)
        pending.force_timer = self._sim.schedule_at(
            fire_at, self._force_upload, assignment.request.request_id
        )

    def _on_radio_state(self, old: RRCState, new: RRCState) -> None:
        if new is not RRCState.TAIL:
            return
        self._flush_pending_in_tail()
        if self._registered:
            self._send_state_report()

    def _flush_pending_in_tail(self) -> None:
        for request_id in list(self._pending):
            pending = self._pending.get(request_id)
            if pending is None or pending.completed:
                continue
            self._complete(pending, "tail")

    def _force_upload(self, request_id: str) -> None:
        pending = self._pending.get(request_id)
        if pending is None or pending.completed:
            return
        self._complete(pending, "forced")

    def _complete(self, pending: PendingAssignment, how: str) -> None:
        pending.completed = True
        self._cancel_force_timer(pending)
        self._pending.pop(pending.assignment.request.request_id, None)
        reading = self.start_sensing(pending.assignment)
        self.send_sense_data(pending.assignment, reading)
        if how == "tail":
            self.stats.uploads_in_tail += 1
        elif how == "piggyback":
            self.stats.uploads_piggybacked += 1
        else:
            self.stats.uploads_forced += 1

    def _cancel_force_timer(self, pending: PendingAssignment) -> None:
        if pending.force_timer is not None:
            self._sim.cancel(pending.force_timer)
            pending.force_timer = None

    def _send_state_report(self) -> None:
        """Control-plane battery/energy report (energy excluded per paper)."""
        self.stats.state_reports += 1
        self._server.report_device_state(
            self._device.device_id,
            self._device.battery.level_pct,
            self._device.crowdsensing_energy_j(),
        )
