"""The Sense-Aid client-side library.

Strategy for an incoming assignment:

- radio already CONNECTED (active or in its tail) → sense and upload
  immediately; the upload is nearly free (and under Sense-Aid Complete
  it does not even extend the tail);
- radio IDLE → hold the assignment and watch radio state; the next
  tail the user's own traffic opens is the upload opportunity;
- deadline approaching with no tail → force the upload anyway (paying
  a promotion) so data quality never suffers — the paper's
  "prerequisite of not harming crowdsensing data".

State reports (battery level, cumulative crowdsensing energy) ride the
control plane at each tail entry, mirroring the paper's service thread
that "sends these control messages to the proxy server only when the
radio tail time is found" — and, like the paper, their energy is
excluded from the crowdsensing account.

Hardening against the chaos layer (see :mod:`repro.faults`):

- with a :class:`~repro.core.config.RetryPolicy`, every upload is
  tracked until the server's ack arrives; unacknowledged uploads are
  retried with exponential backoff and deterministic jitter, capped
  attempts, and tail-aware scheduling (a due retry waits for the next
  CONNECTED window before paying a cold promotion).  Retransmissions
  reuse the original reading and carry an attempt-independent
  ``upload_id``, so the server's idempotency keys count them once;
- with a :class:`~repro.core.config.DegradedModePolicy`, losing the
  Sense-Aid path (crash or partition) drops the client into the
  paper's §3 fail-safe: autonomous periodic path-1 uploads, then a
  resync (state report + replay of unacknowledged uploads) on
  recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.cellular.network import CellularNetwork
from repro.cellular.packets import sensor_data_message
from repro.cellular.rrc import RRCState
from repro.core.config import DegradedModePolicy, RetryPolicy
from repro.core.overload import ServerOverloadedError
from repro.core.server import Assignment, SenseAidServer
from repro.devices.device import SimDevice
from repro.devices.sensors import SensorReading, SensorType
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.simlog import SimLogger


@dataclass
class PendingAssignment:
    """An assignment waiting for an upload opportunity."""

    assignment: Assignment
    force_timer: Optional[Event] = None
    completed: bool = False


@dataclass
class _UploadState:
    """One upload awaiting the server's ack (retry bookkeeping)."""

    assignment: Assignment
    reading: SensorReading
    upload_id: str
    attempts: int = 0
    acked: bool = False
    waiting_for_tail: bool = False
    ack_timer: Optional[Event] = None
    retry_timer: Optional[Event] = None


@dataclass
class ClientStats:
    """Where this client's uploads happened (for diagnostics/tests)."""

    assignments_received: int = 0
    uploads_in_tail: int = 0
    uploads_piggybacked: int = 0
    uploads_forced: int = 0
    state_reports: int = 0
    uploads_retried: int = 0
    uploads_acked: int = 0
    uploads_abandoned: int = 0
    retries_in_tail: int = 0
    degraded_entries: int = 0
    degraded_uploads: int = 0
    resync_uploads: int = 0
    epoch_resyncs: int = 0
    stale_assignments_dropped: int = 0
    uploads_shed: int = 0
    stale_epoch_resends: int = 0
    registrations_deferred: int = 0
    shard_redirects: int = 0

    @property
    def uploads_total(self) -> int:
        return self.uploads_in_tail + self.uploads_piggybacked + self.uploads_forced


class SenseAidClient:
    """Per-device middleware endpoint."""

    def __init__(
        self,
        sim: Simulator,
        device: SimDevice,
        server: SenseAidServer,
        network: CellularNetwork,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        degraded_policy: Optional[DegradedModePolicy] = None,
    ) -> None:
        self._sim = sim
        self._device = device
        self._server = server
        self._network = network
        self._pending: Dict[str, PendingAssignment] = {}
        self._registered = False
        self._powered = True
        self.stats = ClientStats()
        self.retry_policy = retry_policy
        self.degraded_policy = degraded_policy
        self._inflight: Dict[str, _UploadState] = {}
        #: Upload ids the server has *accepted* (ground truth for
        #: anti-entropy reconciliation after partitions/failovers).
        #: Only tracked when a retry policy is active — legacy
        #: fire-and-forget uploads never see their ack.
        self.acked_uploads: Set[str] = set()
        #: How many times each upload id came back with a *fresh*
        #: ``accepted`` verdict (duplicates ack with reason
        #: ``"duplicate"`` and don't count).  Any id at 2+ means a
        #: server double-counted the reading — see
        #: :meth:`double_accepted_uploads`.
        self._accepted_acks: Dict[str, int] = {}
        #: Installed by a sharded fleet: returns the current incumbent
        #: serving this device's ring range, so retries can follow a
        #: failover instead of hammering a deposed instance.
        self._home_resolver: Optional[Callable[[], Optional[SenseAidServer]]] = None
        self._degraded = False
        self._degraded_timer: Optional[Event] = None
        self._last_sensor_type: Optional[SensorType] = None
        self.log = SimLogger(sim, "repro.clientlib")
        # The retry jitter stream is created only when retries are on,
        # so legacy (no-retry) runs make exactly the draws they used to.
        self._retry_rng = (
            sim.rng.stream(f"retry:{device.device_id}")
            if retry_policy is not None
            else None
        )
        #: Last server incarnation this client has synced with; stamped
        #: on every upload so a restarted server can refuse stale ones.
        self._server_epoch = server.epoch
        device.modem.add_state_listener(self._on_radio_state)
        # Always watch the Sense-Aid path: a restoration is how the
        # client learns the server may have restarted (epoch resync);
        # degraded-mode fallback additionally needs the downs.
        network.add_path_listener(self._on_path_change)

    @property
    def device(self) -> SimDevice:
        return self._device

    @property
    def server(self) -> SenseAidServer:
        return self._server

    @property
    def registered(self) -> bool:
        return self._registered

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def inflight_count(self) -> int:
        """Uploads transmitted but not yet acknowledged (retry mode)."""
        return len(self._inflight)

    def double_accepted_uploads(self) -> Dict[str, int]:
        """Upload ids freshly *accepted* more than once by some server.

        A retransmit of an already-accepted upload must come back as
        ``"duplicate"``; a second ``"accepted"`` verdict means the
        reading was counted twice (e.g. by a fenced zombie and its
        successor).  Empty dict == idempotency held for this device.
        """
        return {
            upload_id: count
            for upload_id, count in sorted(self._accepted_acks.items())
            if count > 1
        }

    @property
    def degraded(self) -> bool:
        """True while in autonomous path-1 fallback mode."""
        return self._degraded

    @property
    def powered(self) -> bool:
        return self._powered

    # ------------------------------------------------------------------
    # The paper's five-call client API
    # ------------------------------------------------------------------

    def register(self) -> None:
        """Sign up for crowdsensing campaigns.

        If the server sheds the registration (overload), the attempt is
        deferred and automatically repeated after the server's
        Retry-After hint rather than failing outright.
        """
        if self._registered:
            raise RuntimeError(f"{self._device.device_id} is already registered")
        try:
            self._server.register_device(self._device, self._on_assignment)
        except ServerOverloadedError as exc:
            self.stats.registrations_deferred += 1
            self.log.event(
                "registration_deferred",
                device_id=self._device.device_id,
                retry_after_s=round(exc.retry_after_s, 6),
            )
            self._sim.schedule(max(exc.retry_after_s, 0.1), self._retry_register)
            return
        self._registered = True
        self._server_epoch = self._server.epoch

    def _retry_register(self) -> None:
        if self._registered or not self._powered:
            return
        self.register()

    def deregister(self) -> None:
        if not self._registered:
            raise RuntimeError(f"{self._device.device_id} is not registered")
        for pending in self._pending.values():
            self._cancel_force_timer(pending)
        self._pending.clear()
        self._abandon_inflight()
        # The server may have lost our record independently (fault
        # injection, failover to an instance that never knew us); a
        # goodbye to someone who already forgot us is still a goodbye.
        if self._device.device_id in self._server.devices:
            self._server.deregister_device(self._device.device_id)
        self._registered = False

    def bind_server(self, server: SenseAidServer) -> None:
        """Point this client at a (different) edge instance.

        Only allowed while unregistered; a registered client moves via
        :meth:`migrate`.
        """
        if self._registered:
            raise RuntimeError("deregister (or migrate) before re-binding")
        self._server = server

    def migrate(self, server: SenseAidServer) -> None:
        """Hand this client over to another edge instance.

        Used by the federated deployment when the user walks into a
        different instance's region: pending assignments at the old
        instance are abandoned (its scheduler will see the device as
        unqualified there anyway) and the client re-registers at the
        new one.
        """
        if self._registered:
            self.deregister()
        self._server = server
        self.register()

    def set_home_resolver(
        self, resolver: Optional[Callable[[], Optional[SenseAidServer]]]
    ) -> None:
        """Install the fleet's view of who currently serves this device.

        Consulted on ack timeouts so a retry storm against a deposed
        shard incumbent turns into one redirect to its successor.
        """
        self._home_resolver = resolver

    def redirect(self, server: SenseAidServer) -> None:
        """Follow this device's ring range to a new shard incumbent.

        Unlike :meth:`migrate` (a geographic handover between peers
        that never met this device), the failover target has replayed
        the home shard's WAL and already holds our registration — so
        the session *resyncs* rather than re-registers: handlers are
        re-attached under the new incarnation epoch, a state report is
        sent, and every unacknowledged upload is replayed (idempotency
        keys make the replay safe).
        """
        if not self._powered:
            return
        if server is self._server and self._server_epoch == server.epoch:
            return
        if not self._registered:
            self._server = server
            self.register()
            return
        try:
            server.resync_device(self._device, self._on_assignment)
        except ServerOverloadedError as exc:
            self._sim.schedule(max(exc.retry_after_s, 0.1), self.redirect, server)
            return
        old_epoch = self._server_epoch
        self._server = server
        self._server_epoch = server.epoch
        self.stats.shard_redirects += 1
        self.log.event(
            "shard_redirect",
            device_id=self._device.device_id,
            old_epoch=old_epoch,
            new_epoch=server.epoch,
        )
        if not self._degraded:
            self._send_state_report()
            for state in list(self._inflight.values()):
                self.stats.resync_uploads += 1
                self._transmit_upload(state)

    def update_preferences(
        self,
        *,
        energy_budget_j: Optional[float] = None,
        critical_battery_pct: Optional[float] = None,
    ) -> None:
        """Change the user's participation preferences, locally and
        at the server."""
        if energy_budget_j is not None:
            self._device.preferences.energy_budget_j = energy_budget_j
        if critical_battery_pct is not None:
            self._device.preferences.critical_battery_pct = critical_battery_pct
        if self._registered:
            self._server.update_preferences(
                self._device.device_id,
                energy_budget_j=energy_budget_j,
                critical_battery_pct=critical_battery_pct,
            )

    def start_sensing(self, assignment: Assignment) -> SensorReading:
        """Sample the sensor an assignment asks for."""
        return self._device.sample(assignment.sensor_type)

    def send_sense_data(
        self, assignment: Assignment, reading: SensorReading
    ) -> None:
        """Upload one reading for an assignment over the data path.

        Without a retry policy this is the legacy fire-and-forget
        transfer; with one, the upload is tracked until acknowledged
        and retransmitted on timeout.
        """
        if self.retry_policy is None:
            self._transmit_legacy(assignment, reading)
            return
        request_id = assignment.request.request_id
        state = _UploadState(
            assignment=assignment,
            reading=reading,
            upload_id=f"{self._device.device_id}:{request_id}",
        )
        self._inflight[request_id] = state
        self._transmit_upload(state)

    # ------------------------------------------------------------------
    # Upload transmission, acks, and retries
    # ------------------------------------------------------------------

    def _upload_payload(self, assignment: Assignment, reading: SensorReading) -> dict:
        return {
            "device_id": self._device.device_id,
            "request_id": assignment.request.request_id,
            "value": reading.value,
            "sensed_at": reading.time,
            "epoch": self._server_epoch,
        }

    def _transmit_legacy(
        self, assignment: Assignment, reading: SensorReading
    ) -> None:
        message = sensor_data_message(
            self._device.device_id, self._upload_payload(assignment, reading)
        )
        self._network.uplink(
            self._device,
            message,
            on_delivered=self._server.receive_sensed_data,
            resets_tail=self._server.crowdsensing_resets_tail(),
        )
        # Stamp the state fields after the radio has accepted (and
        # charged) the transfer, so the server's record reflects this
        # very upload's cost — not the counter from before it.
        message.payload["battery_pct"] = self._device.battery.level_pct
        message.payload["energy_used_j"] = self._device.crowdsensing_energy_j()

    def _transmit_upload(self, state: _UploadState) -> None:
        state.attempts += 1
        state.waiting_for_tail = False
        self._cancel_timer(state, "retry_timer")
        request_id = state.assignment.request.request_id
        payload = self._upload_payload(state.assignment, state.reading)
        upload_id = state.upload_id
        payload["upload_id"] = upload_id
        payload["attempt"] = state.attempts
        message = sensor_data_message(self._device.device_id, payload)

        def delivered(msg, receipt) -> None:
            # The server's processing is idempotent; delivery also
            # triggers the ack back to this client after one more core
            # transit.  A duplicated delivery acks twice — harmless.
            # Shed and stale-epoch verdicts route to their handlers so
            # the client backs off (honoring Retry-After) or resyncs.
            ack = self._server.receive_sensed_data(msg, receipt)
            latency = self._network.core_latency_s
            if ack is not None and ack.accepted and ack.reason == "accepted":
                # Ledger for the soak idempotency invariant: a correct
                # server accepts each upload id fresh at most once.
                self._accepted_acks[upload_id] = (
                    self._accepted_acks.get(upload_id, 0) + 1
                )
            if ack is not None and not ack.accepted and ack.reason == "shed":
                self._sim.schedule(
                    latency, self._on_upload_shed, request_id, ack.retry_after_s
                )
            elif ack is not None and not ack.accepted and ack.reason == "stale_epoch":
                self._sim.schedule(latency, self._on_stale_epoch, request_id)
            elif ack is not None and not ack.accepted and ack.reason == "crashed":
                # A dead instance reached over a live radio path (multi-
                # shard topologies): no real ack will ever come.  Leave
                # the upload in flight — the ack timeout drives the
                # retry, by which point the home resolver may already
                # point at the successor.
                pass
            else:
                accepted = ack is None or ack.accepted
                self._sim.schedule(
                    latency, self._on_upload_acked, request_id, accepted
                )

        self._network.uplink(
            self._device,
            message,
            on_delivered=delivered,
            resets_tail=self._server.crowdsensing_resets_tail(),
        )
        message.payload["battery_pct"] = self._device.battery.level_pct
        message.payload["energy_used_j"] = self._device.crowdsensing_energy_j()
        if state.attempts > 1:
            self.stats.uploads_retried += 1
            self.log.event(
                "retry",
                device_id=self._device.device_id,
                request_id=request_id,
                attempt=state.attempts,
            )
        self._cancel_timer(state, "ack_timer")
        state.ack_timer = self._sim.schedule(
            self.retry_policy.ack_timeout_s, self._on_ack_timeout, request_id
        )

    def _on_upload_acked(self, request_id: str, accepted: bool = True) -> None:
        state = self._inflight.pop(request_id, None)
        if state is None:
            return  # already acked (duplicate delivery) or abandoned
        state.acked = True
        self._cancel_timer(state, "ack_timer")
        self._cancel_timer(state, "retry_timer")
        if accepted:
            self.acked_uploads.add(state.upload_id)
        self.stats.uploads_acked += 1
        self.log.event(
            "upload_acked",
            device_id=self._device.device_id,
            request_id=request_id,
            attempts=state.attempts,
        )

    def _maybe_follow_home(self) -> bool:
        """Redirect to the fleet's current incumbent if ours was deposed.

        Returns True when a redirect happened (it replays all in-flight
        uploads itself, so the caller should stop its own retry path).
        """
        if self._home_resolver is None:
            return False
        target = self._home_resolver()
        if target is None or target is self._server:
            return False
        self.redirect(target)
        return True

    def _on_ack_timeout(self, request_id: str) -> None:
        state = self._inflight.get(request_id)
        if state is None or not self._powered:
            return
        if self._degraded:
            # Control plane unreachable: retrying is futile.  Hold the
            # upload; recovery resync will replay it.
            return
        if self._maybe_follow_home():
            return
        if state.attempts >= self.retry_policy.max_attempts:
            self._inflight.pop(request_id, None)
            self.stats.uploads_abandoned += 1
            self.log.event(
                "upload_abandoned",
                device_id=self._device.device_id,
                request_id=request_id,
                attempts=state.attempts,
            )
            return
        backoff = self.retry_policy.backoff_s(state.attempts)
        jitter = self.retry_policy.jitter_fraction
        if jitter > 0.0:
            backoff *= 1.0 + jitter * (2.0 * self._retry_rng.random() - 1.0)
        state.retry_timer = self._sim.schedule(
            backoff, self._on_retry_due, request_id
        )

    def _on_upload_shed(self, request_id: str, retry_after_s: float) -> None:
        """The server refused the upload under overload: back off for at
        least its Retry-After hint, then retry through the normal
        tail-aware path."""
        state = self._inflight.get(request_id)
        if state is None or not self._powered or self._degraded:
            return
        self._cancel_timer(state, "ack_timer")
        self.stats.uploads_shed += 1
        self.log.event(
            "upload_shed",
            device_id=self._device.device_id,
            request_id=request_id,
            attempt=state.attempts,
            retry_after_s=round(retry_after_s, 6),
        )
        if state.attempts >= self.retry_policy.max_attempts:
            self._inflight.pop(request_id, None)
            self.stats.uploads_abandoned += 1
            self.log.event(
                "upload_abandoned",
                device_id=self._device.device_id,
                request_id=request_id,
                attempts=state.attempts,
            )
            return
        self._cancel_timer(state, "retry_timer")
        state.retry_timer = self._sim.schedule(
            self.retry_policy.shed_delay_s(state.attempts, retry_after_s),
            self._on_retry_due,
            request_id,
        )

    def _on_stale_epoch(self, request_id: str) -> None:
        """The upload was stamped with a previous server incarnation:
        resync, then retransmit under the new epoch (the request's
        bookkeeping survived the restart via the WAL)."""
        state = self._inflight.get(request_id)
        if state is None or not self._powered or self._degraded:
            return
        self._cancel_timer(state, "ack_timer")
        self.stats.stale_epoch_resends += 1
        self.log.event(
            "stale_epoch_resend",
            device_id=self._device.device_id,
            request_id=request_id,
            known_epoch=self._server_epoch,
            server_epoch=self._server.epoch,
        )
        self._resync_epoch()
        if state.attempts >= self.retry_policy.max_attempts:
            self._inflight.pop(request_id, None)
            self.stats.uploads_abandoned += 1
            self.log.event(
                "upload_abandoned",
                device_id=self._device.device_id,
                request_id=request_id,
                attempts=state.attempts,
            )
            return
        self._transmit_upload(state)

    def _on_retry_due(self, request_id: str) -> None:
        state = self._inflight.get(request_id)
        if state is None or not self._powered or self._degraded:
            return
        if self._maybe_follow_home():
            return
        if self._device.modem.is_connected or self._device.modem.in_tail:
            self.stats.retries_in_tail += 1
            self._transmit_upload(state)
            return
        # Radio idle: wait for the next CONNECTED window, but never
        # past the deadline-grace point (or the policy's patience cap)
        # — retries keep the same energy/deadline discipline as first
        # uploads.
        state.waiting_for_tail = True
        force_at = self._sim.now + self.retry_policy.tail_wait_max_s
        grace_at = (
            state.assignment.deadline - self._server.config.deadline_grace_s
        )
        if grace_at > self._sim.now:
            force_at = min(force_at, grace_at)
        state.retry_timer = self._sim.schedule_at(
            force_at, self._on_retry_forced, request_id
        )

    def _on_retry_forced(self, request_id: str) -> None:
        state = self._inflight.get(request_id)
        if state is None or not self._powered or self._degraded:
            return
        if state.waiting_for_tail:
            self._transmit_upload(state)

    def _abandon_inflight(self) -> None:
        for state in self._inflight.values():
            self._cancel_timer(state, "ack_timer")
            self._cancel_timer(state, "retry_timer")
        self._inflight.clear()

    def _cancel_timer(self, state: _UploadState, name: str) -> None:
        timer = getattr(state, name)
        if timer is not None:
            self._sim.cancel(timer)
            setattr(state, name, None)

    # ------------------------------------------------------------------
    # Degraded mode (control plane unreachable)
    # ------------------------------------------------------------------

    def _on_path_change(self, available: bool) -> None:
        if not self._powered:
            return
        if not available:
            if self.degraded_policy is not None and not self._degraded:
                self._enter_degraded()
            return
        # Path restored: first find out whether the server we knew is
        # the one that came back (epoch resync — before any replay so
        # retransmissions carry the new incarnation), then leave
        # degraded mode.
        if self._registered and self._server_epoch != self._server.epoch:
            self._resync_epoch(not self._degraded)
        if self._degraded:
            self._exit_degraded()

    def _resync_epoch(self, replay: bool = False) -> None:
        """Adopt the server's current incarnation.

        Re-establishes the session (handler re-attachment; full
        registration if the restarted server lost us entirely), sends a
        fresh state report, and optionally replays unacknowledged
        uploads under the new epoch.  A shed resync reschedules itself
        after the server's Retry-After hint.
        """
        if not self._powered or not self._registered:
            return
        server = self._server
        if self._server_epoch == server.epoch:
            return
        try:
            server.resync_device(self._device, self._on_assignment)
        except ServerOverloadedError as exc:
            self._sim.schedule(
                max(exc.retry_after_s, 0.1), self._resync_epoch, replay
            )
            return
        old_epoch = self._server_epoch
        self._server_epoch = server.epoch
        self.stats.epoch_resyncs += 1
        self.log.event(
            "epoch_resync",
            device_id=self._device.device_id,
            old_epoch=old_epoch,
            new_epoch=server.epoch,
        )
        self._send_state_report()
        if replay:
            for state in list(self._inflight.values()):
                self.stats.resync_uploads += 1
                self._transmit_upload(state)

    def _enter_degraded(self) -> None:
        self._degraded = True
        self.stats.degraded_entries += 1
        self.log.event("degraded_enter", device_id=self._device.device_id)
        self._degraded_timer = self._sim.schedule(
            self.degraded_policy.period_s, self._degraded_tick
        )

    def _degraded_tick(self) -> None:
        if not self._degraded or not self._powered:
            return
        # Autonomous path-1 periodic upload: sample the last-known task
        # sensor and push it straight to the S-GW (no Sense-Aid in the
        # loop, cold radio economics — the price of the fail-safe).
        if self._last_sensor_type is not None:
            reading = self._device.sample(self._last_sensor_type)
            message = sensor_data_message(
                self._device.device_id,
                {
                    "device_id": self._device.device_id,
                    "value": reading.value,
                    "sensed_at": reading.time,
                    "autonomous": True,
                },
            )
            self._network.uplink(self._device, message)
            self.stats.degraded_uploads += 1
            self.log.event(
                "degraded_upload",
                device_id=self._device.device_id,
                sensor=self._last_sensor_type.name,
            )
        self._degraded_timer = self._sim.schedule(
            self.degraded_policy.period_s, self._degraded_tick
        )

    def _exit_degraded(self) -> None:
        self._degraded = False
        if self._degraded_timer is not None:
            self._sim.cancel(self._degraded_timer)
            self._degraded_timer = None
        self.log.event(
            "degraded_exit",
            device_id=self._device.device_id,
            resync_uploads=len(self._inflight),
        )
        if self.degraded_policy.resync_on_recovery and self._registered:
            # Resync: tell the server where we stand, then replay every
            # unacknowledged upload.  The server's idempotency keys
            # make replay safe (acked-but-unconfirmed counts once).
            self._send_state_report()
            for state in list(self._inflight.values()):
                self.stats.resync_uploads += 1
                self._transmit_upload(state)

    # ------------------------------------------------------------------
    # Device churn (chaos layer)
    # ------------------------------------------------------------------

    def power_off(self) -> None:
        """Abrupt death: battery out, no deregistration, no goodbyes.

        All client-side timers stop and future assignments are
        ignored; the server only learns through missed deliveries
        (unresponsive strikes) or reassignment.
        """
        if not self._powered:
            return
        self._powered = False
        for pending in self._pending.values():
            self._cancel_force_timer(pending)
        self._pending.clear()
        self._abandon_inflight()
        if self._degraded_timer is not None:
            self._sim.cancel(self._degraded_timer)
            self._degraded_timer = None
        self._degraded = False
        if self._device.traffic.running:
            self._device.traffic.stop()
        self.log.event("power_off", device_id=self._device.device_id)

    # ------------------------------------------------------------------
    # Assignment handling
    # ------------------------------------------------------------------

    def _on_assignment(self, assignment: Assignment) -> None:
        if not self._powered:
            return
        if assignment.epoch != self._server_epoch:
            if assignment.epoch < self._server_epoch:
                # Issued by a dead incarnation (e.g. delivered in
                # flight across a restart): never act on it.
                self.stats.stale_assignments_dropped += 1
                self.log.event(
                    "stale_assignment_dropped",
                    device_id=self._device.device_id,
                    request_id=assignment.request.request_id,
                    assignment_epoch=assignment.epoch,
                    known_epoch=self._server_epoch,
                )
                return
            # The server moved ahead of us: resync before trusting it.
            self._resync_epoch()
            if self._server_epoch != assignment.epoch:
                return  # resync deferred (overload); drop for now
        self.stats.assignments_received += 1
        self._last_sensor_type = assignment.sensor_type
        pending = PendingAssignment(assignment=assignment)
        self._pending[assignment.request.request_id] = pending
        if self._device.modem.state in (RRCState.ACTIVE, RRCState.PROMOTING):
            self._complete(pending, "piggyback")
            return
        if self._device.modem.in_tail:
            self._complete(pending, "tail")
            return
        grace = self._server.config.deadline_grace_s
        fire_at = max(self._sim.now, assignment.deadline - grace)
        pending.force_timer = self._sim.schedule_at(
            fire_at, self._force_upload, assignment.request.request_id
        )

    def _on_radio_state(self, old: RRCState, new: RRCState) -> None:
        if new is not RRCState.TAIL or not self._powered:
            return
        self._flush_pending_in_tail()
        self._flush_retries_in_tail()
        if self._registered and not self._degraded:
            self._send_state_report()

    def _flush_pending_in_tail(self) -> None:
        for request_id in list(self._pending):
            pending = self._pending.get(request_id)
            if pending is None or pending.completed:
                continue
            self._complete(pending, "tail")

    def _flush_retries_in_tail(self) -> None:
        if self.retry_policy is None or self._degraded:
            return
        for request_id in list(self._inflight):
            state = self._inflight.get(request_id)
            if state is None or not state.waiting_for_tail:
                continue
            self.stats.retries_in_tail += 1
            self._transmit_upload(state)

    def _force_upload(self, request_id: str) -> None:
        pending = self._pending.get(request_id)
        if pending is None or pending.completed:
            return
        self._complete(pending, "forced")

    def _complete(self, pending: PendingAssignment, how: str) -> None:
        pending.completed = True
        self._cancel_force_timer(pending)
        self._pending.pop(pending.assignment.request.request_id, None)
        reading = self.start_sensing(pending.assignment)
        self.send_sense_data(pending.assignment, reading)
        if how == "tail":
            self.stats.uploads_in_tail += 1
        elif how == "piggyback":
            self.stats.uploads_piggybacked += 1
        else:
            self.stats.uploads_forced += 1

    def _cancel_force_timer(self, pending: PendingAssignment) -> None:
        if pending.force_timer is not None:
            self._sim.cancel(pending.force_timer)
            pending.force_timer = None

    def _send_state_report(self) -> None:
        """Control-plane battery/energy report (energy excluded per paper)."""
        self.stats.state_reports += 1
        self._server.report_device_state(
            self._device.device_id,
            self._device.battery.level_pct,
            self._device.crowdsensing_energy_j(),
        )
