"""The Sense-Aid middleware server — the paper's primary contribution.

The server runs logically at the cellular edge (between the eNodeBs
and the core network).  It keeps a device datastore fed by the edge's
existing visibility (location at tower granularity, RRC state) plus
lightweight device reports (battery level, hashed IMEI, energy
budget); accepts crowdsensing tasks from application servers; expands
them into per-sample requests on a deadline-sorted run queue (with a
wait queue for currently unsatisfiable requests); and, per request,
runs the four-factor fairness-aware device selector to pick the
minimum set of devices meeting the task's spatial density.
"""

from repro.core.config import (
    OverloadPolicy,
    SelectorWeights,
    SenseAidConfig,
    ServerMode,
)
from repro.core.datastores import DeviceDatastore, DeviceRecord, TaskDatastore
from repro.core.federation import EdgeRegionSpec, FederatedSenseAid
from repro.core.overload import (
    AdmissionController,
    RequestClass,
    ServerOverloadedError,
)
from repro.core.queues import RequestQueue
from repro.core.selector import DeviceSelector, ScoredDevice
from repro.core.server import SenseAidServer, UploadAck
from repro.core.sharding import (
    ConsistentHashRing,
    CrossShardTask,
    PhiAccrualFailureDetector,
    ShardSpec,
    ShardedSenseAid,
)
from repro.core.tasks import SensingRequest, TaskSpec
from repro.core.wal import (
    DurableLog,
    RecoveryViolation,
    WriteAheadLog,
    check_recovery_invariants,
    durable_state,
)

__all__ = [
    "AdmissionController",
    "ConsistentHashRing",
    "CrossShardTask",
    "DeviceDatastore",
    "DeviceRecord",
    "DeviceSelector",
    "DurableLog",
    "EdgeRegionSpec",
    "FederatedSenseAid",
    "OverloadPolicy",
    "PhiAccrualFailureDetector",
    "RecoveryViolation",
    "RequestClass",
    "RequestQueue",
    "ScoredDevice",
    "SelectorWeights",
    "SenseAidConfig",
    "SenseAidServer",
    "SensingRequest",
    "ServerMode",
    "ServerOverloadedError",
    "ShardSpec",
    "ShardedSenseAid",
    "TaskDatastore",
    "TaskSpec",
    "UploadAck",
    "WriteAheadLog",
    "check_recovery_invariants",
    "durable_state",
]
