"""Configuration of the Sense-Aid server.

The selector weights are the paper's α, β, γ, φ coefficients; the
defaults make the *times-selected* term dominate so that selection
rotates fairly through qualified devices (the behaviour Fig. 9 shows),
with the TTL term breaking ties in favour of devices whose radio
communicated recently (and is therefore likely still in its tail).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.cellular.rrc import TailPolicy


class ControlPlane(Enum):
    """How task assignments reach devices.

    ``PULL`` — the paper's design: the client's service thread contacts
    the server during radio tails, so assignment delivery rides
    existing connectivity and (per the paper's accounting) costs no
    measurable device energy.  ``PUSH_PAGED`` — the naive alternative:
    the server pages the device over the downlink, waking an idle radio
    and paying promotion + tail per assignment; exists to quantify why
    the pull design matters.
    """

    PULL = "pull"
    PUSH_PAGED = "push_paged"


class ServerMode(Enum):
    """The paper's two implementation variants.

    ``BASIC`` — crowdsensing uploads reset the tail timer (stock RRC;
    no carrier cooperation needed).  ``COMPLETE`` — uploads during the
    tail do not reset it, so the radio idles exactly when it would have
    anyway.
    """

    BASIC = "basic"
    COMPLETE = "complete"

    @property
    def tail_policy(self) -> TailPolicy:
        if self is ServerMode.BASIC:
            return TailPolicy.RESET
        return TailPolicy.NO_RESET


@dataclass(frozen=True)
class SelectorWeights:
    """Coefficients of ``Score(i) = α·E + β·U + γ·(100−CBL) + φ·TTL``.

    Lower score wins.  ``ttl_cap_s`` bounds the TTL term so a
    long-quiet device cannot out-score the fairness term.
    """

    alpha: float = 0.01    # per Joule of crowdsensing energy used
    beta: float = 1.0      # per previous selection
    gamma: float = 0.005   # per percentage point of battery depleted
    phi: float = 0.0015    # per second since last radio communication
    ttl_cap_s: float = 300.0
    #: Optional data-reliability factor (paper §7: truth-discovery
    #: "can be incorporated as another factor in our device selector").
    #: Penalty per unit of unreliability (1 − reliability); 0 disables.
    rho: float = 0.0

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma", "phi", "rho"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.ttl_cap_s < 0:
            raise ValueError("ttl_cap_s must be non-negative")


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side upload retry policy (exponential backoff).

    An upload is considered acknowledged when the server's ack comes
    back within ``ack_timeout_s``; otherwise the client retries with
    backoff ``backoff_base_s · backoff_multiplier^(attempt−1)`` capped
    at ``backoff_max_s``, jittered by ±``jitter_fraction`` (drawn from
    the client's own deterministic ``retry:<device>`` stream), up to
    ``max_attempts`` total transmissions.  Retries are tail-aware: a
    due retry waits up to ``tail_wait_max_s`` for the radio's next
    CONNECTED window before forcing a cold transmission, so retry
    traffic keeps the energy discipline of first-try uploads.
    """

    max_attempts: int = 4
    ack_timeout_s: float = 30.0
    backoff_base_s: float = 10.0
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 300.0
    jitter_fraction: float = 0.2
    tail_wait_max_s: float = 60.0
    retry_after_cap_s: float = 900.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        for name in ("ack_timeout_s", "backoff_base_s", "backoff_max_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        if self.tail_wait_max_s < 0:
            raise ValueError("tail_wait_max_s must be non-negative")
        if not (
            isinstance(self.retry_after_cap_s, (int, float))
            and not isinstance(self.retry_after_cap_s, bool)
            and math.isfinite(self.retry_after_cap_s)
            and self.retry_after_cap_s > 0
        ):
            raise ValueError("retry_after_cap_s must be positive and finite")

    def backoff_s(self, attempt: int) -> float:
        """Nominal (un-jittered) backoff after the given attempt number.

        Saturates at ``backoff_max_s`` without evaluating the raw
        exponential, so pathological attempt numbers (a client stuck in
        a shed loop for days) cannot overflow ``float`` arithmetic.
        """
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        if self.backoff_base_s >= self.backoff_max_s:
            return self.backoff_max_s
        if self.backoff_multiplier <= 1.0:
            return self.backoff_base_s
        saturation = math.log(
            self.backoff_max_s / self.backoff_base_s, self.backoff_multiplier
        )
        if attempt - 1 >= saturation:
            return self.backoff_max_s
        raw = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        return min(self.backoff_max_s, raw)

    def shed_delay_s(self, attempt: int, retry_after_s: float) -> float:
        """Delay before retrying an upload the server *shed*.

        An overloaded server returns a ``Retry-After``-style hint with
        the rejection; honouring it means waiting at least that long —
        retrying earlier would land in the same overload window.  The
        client still keeps its own exponential-backoff floor so repeated
        sheds of the same upload back off progressively.

        The hint crossed an unreliable network from a struggling
        server, so it is sanitised rather than trusted: zero, negative,
        NaN, or non-finite hints collapse to "no hint" (the backoff
        floor alone), and absurdly large hints are clamped to
        ``retry_after_cap_s`` so one bad ack cannot park an upload
        forever.
        """
        hint = retry_after_s
        if not isinstance(hint, (int, float)) or not math.isfinite(hint) or hint <= 0:
            hint = 0.0
        hint = min(float(hint), self.retry_after_cap_s)
        return max(hint, self.backoff_s(attempt))


@dataclass(frozen=True)
class DegradedModePolicy:
    """Client fail-safe when the Sense-Aid control plane is unreachable.

    The paper's §3 fail-safe keeps *regular* traffic alive on path 1
    when the Sense-Aid server disappears; this policy extends it to the
    sensing function: the client falls back to autonomous periodic
    sampling/uploading over path 1 (plain participatory sensing, cold
    radio costs and all) every ``period_s``, and on recovery resyncs —
    a state report plus retransmission of every unacknowledged upload,
    which the server's idempotency keys make safe to replay.
    """

    period_s: float = 600.0
    resync_on_recovery: bool = True

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")


@dataclass(frozen=True)
class OverloadPolicy:
    """Server-side overload-control parameters (admission + shedding).

    The control plane processes ``service_rate_per_s`` requests per
    second; arrivals beyond that accumulate in a virtual admission
    queue whose depth is capped at ``queue_capacity``.  Shedding is
    priority-aware — each request class is refused once the queue
    passes its own fraction of capacity, and the fractions are ordered
    so *registrations outrank uploads outrank queries*: a registration
    is only ever dropped when the queue is completely full, by which
    point every upload and query is already being shed.

    Shed requests receive a ``Retry-After``-style hint sized to the
    current backlog (``retry_after_base_s`` + time to drain back under
    the class threshold).  ``breaker_threshold`` consecutive sheds open
    a client-visible circuit breaker for ``breaker_cooldown_s``: while
    open, uploads and queries are refused immediately with the
    remaining cooldown as the hint, letting the queue drain instead of
    churning.
    """

    queue_capacity: int = 64
    service_rate_per_s: float = 50.0
    registration_shed_fraction: float = 1.0
    upload_shed_fraction: float = 0.75
    query_shed_fraction: float = 0.5
    retry_after_base_s: float = 2.0
    breaker_threshold: int = 20
    breaker_cooldown_s: float = 30.0

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if self.service_rate_per_s <= 0:
            raise ValueError("service_rate_per_s must be positive")
        fractions = (
            self.query_shed_fraction,
            self.upload_shed_fraction,
            self.registration_shed_fraction,
        )
        for value in fractions:
            if not 0.0 < value <= 1.0:
                raise ValueError("shed fractions must be in (0, 1]")
        if not (
            self.query_shed_fraction
            <= self.upload_shed_fraction
            <= self.registration_shed_fraction
        ):
            raise ValueError(
                "shed fractions must be ordered query <= upload <= "
                "registration (registrations are shed last)"
            )
        if self.retry_after_base_s < 0:
            raise ValueError("retry_after_base_s must be non-negative")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if self.breaker_cooldown_s <= 0:
            raise ValueError("breaker_cooldown_s must be positive")


@dataclass(frozen=True)
class SenseAidConfig:
    """Tunable parameters of one server instance."""

    mode: ServerMode = ServerMode.COMPLETE
    weights: SelectorWeights = field(default_factory=SelectorWeights)
    #: Hard cutoff: never pick a device more than this many times per
    #: accounting epoch (None = unlimited).
    max_selections_per_epoch: Optional[int] = None
    #: Period of the wait-queue satisfiability re-check (Algorithm 1's
    #: ``wait_check_thread``).
    wait_check_period_s: float = 30.0
    #: Seconds before a request deadline at which a selected device
    #: gives up waiting for a tail and force-uploads.
    deadline_grace_s: float = 5.0
    #: Default deadline for requests of tasks with no sampling period
    #: (one-shot tasks).
    one_shot_deadline_s: float = 120.0
    #: When True the server selects *every* qualified device (the
    #: paper's no-orchestration ablation); spatial density still gates
    #: satisfiability.
    select_all_qualified: bool = False
    #: Accounting-epoch length ("counted since the beginning of some
    #: reasonable time interval, say the week"): selection counts and
    #: spent-energy counters reset every this-many seconds.  None keeps
    #: one epoch for the whole run (the user-study setting).
    epoch_reset_period_s: Optional[float] = None
    #: Devices whose data-reliability estimate falls to or below this
    #: are never selected (hard cutoff companion to ``weights.rho``).
    min_reliability: float = 0.0
    #: Assignment delivery mechanism (see :class:`ControlPlane`).
    control_plane: ControlPlane = ControlPlane.PULL
    #: Deadline reassignment is an explicit two-mode setting:
    #:
    #: - ``None`` — reassignment **off** (the paper's stock behaviour):
    #:   a request whose readings never arrive simply misses its
    #:   density; ``reassignment_enabled`` is False.
    #: - a positive float — reassignment **on**: the server re-checks
    #:   each request this many seconds before its deadline and assigns
    #:   substitute devices for any readings that have not arrived
    #:   (lost uploads, vanished devices — the §8 data-collection-
    #:   failure handling).  Must be strictly smaller than
    #:   ``deadline_grace_s`` so originals get their forced-upload
    #:   chance first.
    #:
    #: Any other value (zero, negative, bool, non-number) is rejected
    #: in ``__post_init__`` — "off" is only ever spelled ``None``.
    reassign_margin_s: Optional[float] = None
    #: After this many consecutive missed deliveries a device is marked
    #: unresponsive and excluded from selection ("if a mobile device
    #: becomes unresponsive, then the Sense-Aid server can exclude it
    #: from future selections", §3.2).  A successful upload clears the
    #: strikes and restores the device.  None disables striking.
    unresponsive_strikes: Optional[int] = 3
    #: Deployment model (paper §6).  True: the cellular provider runs
    #: Sense-Aid and the eNodeBs' live RRC view (last-communication
    #: age) feeds the selector's TTL factor.  False: a third-party
    #: provider without carrier integration — it only learns about a
    #: device's radio from the device's own uploads and control pings,
    #: so the TTL factor goes stale between contacts.
    carrier_integrated: bool = True
    #: Overload control (admission queue, priority shedding, circuit
    #: breaker).  None — the default — disables admission control
    #: entirely: every request is processed, as in the original design.
    overload: Optional[OverloadPolicy] = None

    def __post_init__(self) -> None:
        if self.wait_check_period_s <= 0:
            raise ValueError("wait_check_period_s must be positive")
        if self.deadline_grace_s < 0:
            raise ValueError("deadline_grace_s must be non-negative")
        if self.one_shot_deadline_s <= 0:
            raise ValueError("one_shot_deadline_s must be positive")
        if (
            self.max_selections_per_epoch is not None
            and self.max_selections_per_epoch <= 0
        ):
            raise ValueError("max_selections_per_epoch must be positive or None")
        if self.epoch_reset_period_s is not None and self.epoch_reset_period_s <= 0:
            raise ValueError("epoch_reset_period_s must be positive or None")
        if self.reassign_margin_s is not None:
            if isinstance(self.reassign_margin_s, bool) or not isinstance(
                self.reassign_margin_s, (int, float)
            ):
                raise TypeError(
                    "reassign_margin_s must be None (reassignment off) or a "
                    f"positive number, got {self.reassign_margin_s!r}"
                )
            if self.reassign_margin_s <= 0:
                raise ValueError(
                    "reassign_margin_s must be positive; to disable "
                    "reassignment, pass None explicitly"
                )
            if self.reassign_margin_s >= self.deadline_grace_s:
                raise ValueError(
                    "reassign_margin_s must be smaller than deadline_grace_s: "
                    "the original device's forced upload must have had its "
                    "chance before the server drafts substitutes"
                )
        if not 0.0 <= self.min_reliability < 1.0:
            raise ValueError("min_reliability must be in [0, 1)")
        if self.unresponsive_strikes is not None and self.unresponsive_strikes <= 0:
            raise ValueError("unresponsive_strikes must be positive or None")

    @property
    def reassignment_enabled(self) -> bool:
        """True when the deadline-reassignment mode is on (see
        ``reassign_margin_s``)."""
        return self.reassign_margin_s is not None
