"""The Sense-Aid server's two datastores.

The **device datastore** holds, per registered device, exactly the
fields the paper enumerates: the hash of the IMEI, the remaining energy
budget, the current battery level, the number of times the device has
been selected, and the timestamp of its most recent radio
communication.  Counters can be reset per accounting *epoch* ("counted
since the beginning of some reasonable time interval, say the week").

The **task datastore** holds every task received from crowdsensing
application servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.tasks import TaskSpec


@dataclass
class DeviceRecord:
    """Server-side state for one registered device."""

    device_id: str
    imei_hash: str
    device_model: str
    energy_budget_j: float
    critical_battery_pct: float
    battery_pct: float = 100.0
    energy_used_j: float = 0.0
    times_selected: int = 0
    last_comm_time: Optional[float] = None
    registered_at: float = 0.0
    responsive: bool = True
    invalid_data_count: int = 0
    sensors: frozenset = field(default_factory=frozenset)
    #: Exponentially weighted data-reliability estimate in [0, 1]:
    #: valid uploads pull it toward 1, invalid ones toward 0.
    reliability: float = 1.0
    #: Consecutive assignments the device failed to deliver.
    missed_deliveries: int = 0

    #: EWMA smoothing for reliability updates.
    RELIABILITY_ALPHA = 0.25

    def remaining_budget_j(self) -> float:
        return max(0.0, self.energy_budget_j - self.energy_used_j)

    def over_budget(self) -> bool:
        return self.energy_used_j >= self.energy_budget_j

    def below_critical_battery(self) -> bool:
        return self.battery_pct <= self.critical_battery_pct

    def ttl_s(self, now: float) -> Optional[float]:
        """Age of the most recent radio communication, if any."""
        if self.last_comm_time is None:
            return None
        return max(0.0, now - self.last_comm_time)

    def reset_epoch(self) -> None:
        """Start a new accounting epoch (e.g. a new week)."""
        self.energy_used_j = 0.0
        self.times_selected = 0

    def observe_data_quality(self, valid: bool) -> None:
        """Fold one upload's validity into the reliability estimate."""
        target = 1.0 if valid else 0.0
        alpha = self.RELIABILITY_ALPHA
        self.reliability = (1.0 - alpha) * self.reliability + alpha * target


class DeviceDatastore:
    """Registration, state updates, and lookups for devices."""

    def __init__(self) -> None:
        self._records: Dict[str, DeviceRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._records

    def register(self, record: DeviceRecord) -> None:
        if record.device_id in self._records:
            raise ValueError(f"device {record.device_id!r} already registered")
        self._records[record.device_id] = record

    def deregister(self, device_id: str) -> None:
        if device_id not in self._records:
            raise KeyError(f"device {device_id!r} is not registered")
        del self._records[device_id]

    def record(self, device_id: str) -> DeviceRecord:
        try:
            return self._records[device_id]
        except KeyError:
            raise KeyError(f"device {device_id!r} is not registered") from None

    def records(self) -> List[DeviceRecord]:
        """All records, sorted by device id for determinism."""
        return [self._records[k] for k in sorted(self._records)]

    def device_ids(self) -> List[str]:
        return sorted(self._records)

    def update_state(
        self,
        device_id: str,
        *,
        battery_pct: Optional[float] = None,
        energy_used_j: Optional[float] = None,
        last_comm_time: Optional[float] = None,
    ) -> None:
        """Fold a device state report / edge observation into the record."""
        record = self.record(device_id)
        if battery_pct is not None:
            if not 0.0 <= battery_pct <= 100.0:
                raise ValueError(f"battery_pct must be in [0, 100], got {battery_pct!r}")
            record.battery_pct = battery_pct
        if energy_used_j is not None:
            if energy_used_j < 0:
                raise ValueError("energy_used_j must be non-negative")
            record.energy_used_j = energy_used_j
        if last_comm_time is not None:
            record.last_comm_time = last_comm_time

    def mark_selected(self, device_id: str) -> None:
        self.record(device_id).times_selected += 1

    def mark_unresponsive(self, device_id: str) -> None:
        """Exclude a device from future selections (paper §3.2)."""
        self.record(device_id).responsive = False

    def mark_responsive(self, device_id: str) -> None:
        self.record(device_id).responsive = True

    def note_invalid_data(self, device_id: str) -> None:
        record = self.record(device_id)
        record.invalid_data_count += 1
        record.observe_data_quality(False)

    def note_valid_data(self, device_id: str) -> None:
        self.record(device_id).observe_data_quality(True)

    def reset_epoch(self) -> None:
        for record in self._records.values():
            record.reset_epoch()


class TaskDatastore:
    """All tasks submitted by crowdsensing application servers."""

    def __init__(self) -> None:
        self._tasks: Dict[int, TaskSpec] = {}

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._tasks

    def add(self, task: TaskSpec) -> None:
        if task.task_id in self._tasks:
            raise ValueError(f"task {task.task_id} already exists")
        self._tasks[task.task_id] = task

    def replace(self, task: TaskSpec) -> None:
        if task.task_id not in self._tasks:
            raise KeyError(f"task {task.task_id} does not exist")
        self._tasks[task.task_id] = task

    def remove(self, task_id: int) -> TaskSpec:
        if task_id not in self._tasks:
            raise KeyError(f"task {task_id} does not exist")
        return self._tasks.pop(task_id)

    def get(self, task_id: int) -> TaskSpec:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise KeyError(f"task {task_id} does not exist") from None

    def all_tasks(self) -> List[TaskSpec]:
        return [self._tasks[k] for k in sorted(self._tasks)]

    def tasks_from(self, origin: str) -> List[TaskSpec]:
        return [t for t in self.all_tasks() if t.origin == origin]
