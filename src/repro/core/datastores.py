"""The Sense-Aid server's two datastores.

The **device datastore** holds, per registered device, exactly the
fields the paper enumerates: the hash of the IMEI, the remaining energy
budget, the current battery level, the number of times the device has
been selected, and the timestamp of its most recent radio
communication.  Counters can be reset per accounting *epoch* ("counted
since the beginning of some reasonable time interval, say the week").

The **task datastore** holds every task received from crowdsensing
application servers.

Both datastores sit on a pluggable :class:`~repro.storage.StorageBackend`
(``REPRO_DATASTORE=memory|sqlite``): the live working set stays in
process (selection is a hot path), every registration/removal writes
through immediately, and :meth:`flush` re-serializes the working set to
the backend at durability points (WAL checkpoints, shutdown).  A
datastore handed a backend that already holds its namespace hydrates
from it, so a fresh process can reattach to an on-disk store.  The
record/task codecs here are the single serialization story — the WAL,
checkpoints, and both backends all speak these dicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.tasks import TaskSpec
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.storage import StorageBackend


@dataclass
class DeviceRecord:
    """Server-side state for one registered device."""

    device_id: str
    imei_hash: str
    device_model: str
    energy_budget_j: float
    critical_battery_pct: float
    battery_pct: float = 100.0
    energy_used_j: float = 0.0
    times_selected: int = 0
    last_comm_time: Optional[float] = None
    registered_at: float = 0.0
    responsive: bool = True
    invalid_data_count: int = 0
    sensors: frozenset = field(default_factory=frozenset)
    #: Exponentially weighted data-reliability estimate in [0, 1]:
    #: valid uploads pull it toward 1, invalid ones toward 0.
    reliability: float = 1.0
    #: Consecutive assignments the device failed to deliver.
    missed_deliveries: int = 0

    #: EWMA smoothing for reliability updates.
    RELIABILITY_ALPHA = 0.25

    def remaining_budget_j(self) -> float:
        return max(0.0, self.energy_budget_j - self.energy_used_j)

    def over_budget(self) -> bool:
        return self.energy_used_j >= self.energy_budget_j

    def below_critical_battery(self) -> bool:
        return self.battery_pct <= self.critical_battery_pct

    def ttl_s(self, now: float) -> Optional[float]:
        """Age of the most recent radio communication, if any."""
        if self.last_comm_time is None:
            return None
        return max(0.0, now - self.last_comm_time)

    def reset_epoch(self) -> None:
        """Start a new accounting epoch (e.g. a new week)."""
        self.energy_used_j = 0.0
        self.times_selected = 0

    def observe_data_quality(self, valid: bool) -> None:
        """Fold one upload's validity into the reliability estimate."""
        target = 1.0 if valid else 0.0
        alpha = self.RELIABILITY_ALPHA
        self.reliability = (1.0 - alpha) * self.reliability + alpha * target


# ----------------------------------------------------------------------
# Codecs — the one serialization story (backends, WAL, checkpoints)
# ----------------------------------------------------------------------


def record_to_dict(record: DeviceRecord) -> dict:
    return {
        "device_id": record.device_id,
        "imei_hash": record.imei_hash,
        "device_model": record.device_model,
        "energy_budget_j": record.energy_budget_j,
        "critical_battery_pct": record.critical_battery_pct,
        "battery_pct": record.battery_pct,
        "energy_used_j": record.energy_used_j,
        "times_selected": record.times_selected,
        "last_comm_time": record.last_comm_time,
        "registered_at": record.registered_at,
        "responsive": record.responsive,
        "invalid_data_count": record.invalid_data_count,
        "sensors": sorted(s.name for s in record.sensors),
        "reliability": record.reliability,
        "missed_deliveries": record.missed_deliveries,
    }


def record_from_dict(data: dict) -> DeviceRecord:
    return DeviceRecord(
        device_id=data["device_id"],
        imei_hash=data["imei_hash"],
        device_model=data["device_model"],
        energy_budget_j=data["energy_budget_j"],
        critical_battery_pct=data["critical_battery_pct"],
        battery_pct=data["battery_pct"],
        energy_used_j=data["energy_used_j"],
        times_selected=data["times_selected"],
        last_comm_time=data["last_comm_time"],
        registered_at=data["registered_at"],
        responsive=data["responsive"],
        invalid_data_count=data["invalid_data_count"],
        sensors=frozenset(SensorType[name] for name in data["sensors"]),
        reliability=data.get("reliability", 1.0),
        missed_deliveries=data.get("missed_deliveries", 0),
    )


def task_to_dict(task: TaskSpec) -> dict:
    return {
        "task_id": task.task_id,
        "sensor_type": task.sensor_type.name,
        "center": [task.center.x, task.center.y],
        "area_radius_m": task.area_radius_m,
        "spatial_density": task.spatial_density,
        "sampling_period_s": task.sampling_period_s,
        "sampling_duration_s": task.sampling_duration_s,
        "start_time": task.start_time,
        "end_time": task.end_time,
        "device_type": task.device_type,
        "origin": task.origin,
    }


def task_from_dict(data: dict) -> TaskSpec:
    return TaskSpec(
        task_id=data["task_id"],
        sensor_type=SensorType[data["sensor_type"]],
        center=Point(data["center"][0], data["center"][1]),
        area_radius_m=data["area_radius_m"],
        spatial_density=data["spatial_density"],
        sampling_period_s=data["sampling_period_s"],
        sampling_duration_s=data["sampling_duration_s"],
        start_time=data["start_time"],
        end_time=data["end_time"],
        device_type=data["device_type"],
        origin=data["origin"],
    )


class DeviceDatastore:
    """Registration, state updates, and lookups for devices.

    ``backend=None`` keeps everything in the live dict (the seed's
    behaviour).  With a backend, registrations and removals write
    through immediately and :meth:`flush` persists the full working
    set; ``fresh=True`` clears the namespace instead of hydrating from
    it (a cold restart about to be rebuilt by WAL replay).
    """

    NAMESPACE = "devices"

    def __init__(
        self,
        backend: Optional["StorageBackend"] = None,
        *,
        fresh: bool = False,
    ) -> None:
        self._records: Dict[str, DeviceRecord] = {}
        self._backend = backend
        if backend is not None:
            if fresh:
                backend.clear_docs(self.NAMESPACE)
            else:
                for key in backend.doc_keys(self.NAMESPACE):
                    doc = backend.get_doc(self.NAMESPACE, key)
                    if doc is not None:
                        self._records[key] = record_from_dict(doc)

    @property
    def backend(self) -> Optional["StorageBackend"]:
        return self._backend

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._records

    def register(self, record: DeviceRecord) -> None:
        if record.device_id in self._records:
            raise ValueError(f"device {record.device_id!r} already registered")
        self._records[record.device_id] = record
        if self._backend is not None:
            self._backend.put_doc(
                self.NAMESPACE, record.device_id, record_to_dict(record)
            )

    def deregister(self, device_id: str) -> None:
        if device_id not in self._records:
            raise KeyError(f"device {device_id!r} is not registered")
        del self._records[device_id]
        if self._backend is not None:
            self._backend.delete_doc(self.NAMESPACE, device_id)

    def flush(self) -> None:
        """Re-serialize the full working set to the backend.

        Called at durability points; covers mutations that went
        through record attributes rather than datastore methods.
        """
        if self._backend is None:
            return
        for device_id, record in self._records.items():
            self._backend.put_doc(self.NAMESPACE, device_id, record_to_dict(record))
        self._backend.flush()

    def record(self, device_id: str) -> DeviceRecord:
        try:
            return self._records[device_id]
        except KeyError:
            raise KeyError(f"device {device_id!r} is not registered") from None

    def records(self) -> List[DeviceRecord]:
        """All records, sorted by device id for determinism."""
        return [self._records[k] for k in sorted(self._records)]

    def device_ids(self) -> List[str]:
        return sorted(self._records)

    def update_state(
        self,
        device_id: str,
        *,
        battery_pct: Optional[float] = None,
        energy_used_j: Optional[float] = None,
        last_comm_time: Optional[float] = None,
    ) -> None:
        """Fold a device state report / edge observation into the record."""
        record = self.record(device_id)
        if battery_pct is not None:
            if not 0.0 <= battery_pct <= 100.0:
                raise ValueError(
                    f"battery_pct must be in [0, 100], got {battery_pct!r}"
                )
            record.battery_pct = battery_pct
        if energy_used_j is not None:
            if energy_used_j < 0:
                raise ValueError("energy_used_j must be non-negative")
            record.energy_used_j = energy_used_j
        if last_comm_time is not None:
            record.last_comm_time = last_comm_time

    def mark_selected(self, device_id: str) -> None:
        self.record(device_id).times_selected += 1

    def mark_unresponsive(self, device_id: str) -> None:
        """Exclude a device from future selections (paper §3.2)."""
        self.record(device_id).responsive = False

    def mark_responsive(self, device_id: str) -> None:
        self.record(device_id).responsive = True

    def note_invalid_data(self, device_id: str) -> None:
        record = self.record(device_id)
        record.invalid_data_count += 1
        record.observe_data_quality(False)

    def note_valid_data(self, device_id: str) -> None:
        self.record(device_id).observe_data_quality(True)

    def reset_epoch(self) -> None:
        for record in self._records.values():
            record.reset_epoch()


class TaskDatastore:
    """All tasks submitted by crowdsensing application servers.

    Task specs are immutable, so write-through on add/replace/remove
    keeps the backend exactly current — no flush pass needed (it
    exists for symmetry and to push batched backend writes down).
    """

    NAMESPACE = "tasks"

    def __init__(
        self,
        backend: Optional["StorageBackend"] = None,
        *,
        fresh: bool = False,
    ) -> None:
        self._tasks: Dict[int, TaskSpec] = {}
        self._backend = backend
        if backend is not None:
            if fresh:
                backend.clear_docs(self.NAMESPACE)
            else:
                for key in backend.doc_keys(self.NAMESPACE):
                    doc = backend.get_doc(self.NAMESPACE, key)
                    if doc is not None:
                        task = task_from_dict(doc)
                        self._tasks[task.task_id] = task

    @property
    def backend(self) -> Optional["StorageBackend"]:
        return self._backend

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._tasks

    @staticmethod
    def _key(task_id: int) -> str:
        # Zero-padded so backend key order matches numeric task order.
        return f"{task_id:012d}"

    def _store(self, task: TaskSpec) -> None:
        if self._backend is not None:
            self._backend.put_doc(
                self.NAMESPACE, self._key(task.task_id), task_to_dict(task)
            )

    def add(self, task: TaskSpec) -> None:
        if task.task_id in self._tasks:
            raise ValueError(f"task {task.task_id} already exists")
        self._tasks[task.task_id] = task
        self._store(task)

    def replace(self, task: TaskSpec) -> None:
        if task.task_id not in self._tasks:
            raise KeyError(f"task {task.task_id} does not exist")
        self._tasks[task.task_id] = task
        self._store(task)

    def remove(self, task_id: int) -> TaskSpec:
        if task_id not in self._tasks:
            raise KeyError(f"task {task_id} does not exist")
        task = self._tasks.pop(task_id)
        if self._backend is not None:
            self._backend.delete_doc(self.NAMESPACE, self._key(task_id))
        return task

    def flush(self) -> None:
        if self._backend is not None:
            self._backend.flush()

    def get(self, task_id: int) -> TaskSpec:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise KeyError(f"task {task_id} does not exist") from None

    def all_tasks(self) -> List[TaskSpec]:
        return [self._tasks[k] for k in sorted(self._tasks)]

    def tasks_from(self, origin: str) -> List[TaskSpec]:
        return [t for t in self.all_tasks() if t.origin == origin]
