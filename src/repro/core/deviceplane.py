"""Struct-of-arrays device plane: the fleet hot path, vectorized.

The event-driven control plane (``repro.core.server`` +
``repro.cellular.rrc``) steps one Python object per device per RRC
transition.  That is the right shape for the paper's 60-student study
and for the fault/durability machinery, but it caps the scalability
tier around ~27k events/s — far short of the million-device north star
(ROADMAP item 2).  This module is the batch-shaped counterpart: the
whole fleet lives in parallel numpy arrays (struct-of-arrays) and every
hot operation — RRC transitions, tail-window queries, qualification
probes, four-factor scoring — runs once over the fleet instead of once
per device.

Two interchangeable planes implement the same batched API:

- :class:`ObjectDevicePlane` — one plain-Python scalar loop per
  operation.  Slow, obvious, and the *reference semantics*.
- :class:`VectorDevicePlane` — numpy float64/int64/bool arrays with one
  vectorized kernel per operation.

**The equivalence contract.**  Both planes evaluate the identical
arithmetic expressions in the identical element-wise operation order on
IEEE-754 doubles, so for any seed, fleet, and campaign the two planes
produce *bit-identical* results: the same selection log, the same
per-device energy ledgers (``==`` on floats, no tolerance), the same
RRC states and tail deadlines.  Property tests
(``tests/test_deviceplane_equivalence.py``) enforce this with the same
indexed==scanned pattern PR 4 used for the spatial index; the chaos
soak harness re-checks it every episode via
:func:`repro.soak.invariants.check_plane_equivalence`.

The RRC semantics mirror :class:`repro.cellular.rrc.RadioModem`'s
marginal energy attribution in closed form (cold upload = promotion +
transfer + full tail; tail upload without reset = transfer increment
minus the displaced tail stretch; tail upload with reset additionally
pays the tail extension; active piggyback = transfer increment), with
one structural simplification: the plane advances in *batched* steps,
so PROMOTING+ACTIVE are folded into a single busy window per transfer
(``active_until``).  Within one :meth:`advance_to` the transition order
matches the event engine's ``PRIORITY_RADIO`` convention — radio state
settles before any application logic reads it.

Plane choice is a runtime toggle: pass ``kind=`` to :func:`make_plane`
or set ``REPRO_DEVICE_PLANE=object|vector`` (the soak harness uses the
toggle to cross-check both planes; experiments choose per run — see
``docs/deviceplane.md``).
"""

from __future__ import annotations

import math
import os
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.cellular.power import LTE_POWER_PROFILE, RadioPowerProfile
from repro.cellular.rrc import TailPolicy
from repro.cellular.spatial import UniformGridIndex
from repro.core.config import SelectorWeights
from repro.core.selector import eligibility_mask, linear_score
from repro.environment.geometry import Point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

try:  # numpy is a hard dependency (pyproject), but degrade loudly.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

#: Environment variable consulted by :func:`make_plane` when no kind is
#: passed explicitly — the runtime toggle for soak/chaos cross-checks.
PLANE_ENV_VAR = "REPRO_DEVICE_PLANE"

#: RRC state encoding shared by both planes (int8 in the vector plane).
IDLE, ACTIVE, TAIL = 0, 1, 2

_STATE_NAMES = {IDLE: "idle", ACTIVE: "active", TAIL: "tail"}

#: "Never communicated": TTL becomes +inf and caps at ``ttl_cap_s``,
#: exactly like the object path's ``ttl_s() is None`` rule.
NEVER = float("-inf")


# ----------------------------------------------------------------------
# Fleet specification
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FleetSpec:
    """Deterministic recipe for a synthetic fleet.

    Initial state is drawn from :class:`random.Random` (platform-stable)
    in device-index order, so both planes build from the very same
    floats.  Device ids are the array indices; the exported string ids
    (``d000042``) are zero-padded so lexicographic order equals index
    order — the tie-break the selector's determinism contract needs.
    """

    devices: int
    seed: int = 0
    width_m: float = 9000.0
    height_m: float = 9000.0
    speed_mps: float = 1.4
    battery_capacity_j: float = 37440.0  # 2,600 mAh @ 4 V — nominal phone
    energy_budget_j: float = 496.0
    critical_battery_pct: float = 20.0
    min_initial_battery_pct: float = 30.0
    sensor_fraction: float = 0.85
    profile: RadioPowerProfile = LTE_POWER_PROFILE
    tail_policy: TailPolicy = TailPolicy.NO_RESET

    def __post_init__(self) -> None:
        if self.devices < 0:
            raise ValueError(f"devices must be non-negative, got {self.devices!r}")
        if self.width_m <= 0 or self.height_m <= 0:
            raise ValueError("world dimensions must be positive")
        if not 0.0 <= self.sensor_fraction <= 1.0:
            raise ValueError("sensor_fraction must be in [0, 1]")
        if self.profile.tail_stages:
            raise ValueError(
                "the device plane models flat tails only; staged-tail "
                "profiles (3G) stay on the object-per-device modem"
            )

    def initial_state(self) -> Dict[str, list]:
        """Per-device initial values as parallel Python lists."""
        rng = random.Random(self.seed)
        xs: List[float] = []
        ys: List[float] = []
        vxs: List[float] = []
        vys: List[float] = []
        battery: List[float] = []
        equipped: List[bool] = []
        for _ in range(self.devices):
            xs.append(rng.uniform(0.0, self.width_m))
            ys.append(rng.uniform(0.0, self.height_m))
            heading = rng.uniform(0.0, 2.0 * math.pi)
            speed = rng.uniform(0.5, 1.5) * self.speed_mps
            vxs.append(speed * math.cos(heading))
            vys.append(speed * math.sin(heading))
            battery.append(rng.uniform(self.min_initial_battery_pct, 100.0))
            equipped.append(rng.random() < self.sensor_fraction)
        return {
            "x": xs,
            "y": ys,
            "vx": vxs,
            "vy": vys,
            "battery_pct": battery,
            "equipped": equipped,
        }

    def device_id(self, index: int) -> str:
        width = max(1, len(str(max(0, self.devices - 1))))
        return f"d{index:0{width}d}"


# ----------------------------------------------------------------------
# Campaign workload (shared driver, plane-agnostic)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SensingTask:
    """One circular sensing task the campaign schedules every round."""

    center_x: float
    center_y: float
    radius_m: float
    devices_needed: int

    def __post_init__(self) -> None:
        if self.radius_m < 0:
            raise ValueError("radius_m must be non-negative")
        if self.devices_needed <= 0:
            raise ValueError("devices_needed must be positive")


@dataclass(frozen=True)
class CampaignSpec:
    """A deterministic sensing campaign over a fleet.

    Every ``round_period_s`` the plane advances (batched RRC
    transitions + mobility), flushes pending uploads whose tail window
    opened (or whose patience ran out), then runs one qualification
    probe + selection per task.  ``tail_defer_s`` is the paper's
    tail-aware upload discipline: a selected device holds its reading
    (``pending_upload`` flag) until its radio tail opens, paying the
    cheap piggyback price, and only forces a cold upload after waiting
    ``tail_defer_s``.  ``tail_defer_s=0`` uploads immediately.
    """

    tasks: Tuple[SensingTask, ...]
    round_period_s: float = 60.0
    upload_bytes: int = 1024
    sample_energy_j: float = 0.01
    tail_defer_s: float = 120.0
    weights: SelectorWeights = field(default_factory=SelectorWeights)
    max_selections_per_epoch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.round_period_s <= 0:
            raise ValueError("round_period_s must be positive")
        if self.tail_defer_s < 0:
            raise ValueError("tail_defer_s must be non-negative")


def default_campaign(spec: FleetSpec, *, density: int = 5) -> CampaignSpec:
    """Four district tasks mirroring the city-scale benchmark world."""
    quarter_x, three_quarters_x = spec.width_m * 0.25, spec.width_m * 0.75
    quarter_y, three_quarters_y = spec.height_m * 0.25, spec.height_m * 0.75
    return CampaignSpec(
        tasks=(
            SensingTask(quarter_x, quarter_y, 800.0, density),
            SensingTask(three_quarters_x, quarter_y, 800.0, density),
            SensingTask(quarter_x, three_quarters_y, 800.0, density),
            SensingTask(three_quarters_x, three_quarters_y, 800.0, density),
        )
    )


@dataclass(frozen=True)
class SelectionRecord:
    """One selector execution in the campaign's selection log."""

    round_index: int
    task_index: int
    qualified: Tuple[int, ...]
    selected: Tuple[int, ...]


@dataclass
class CampaignResult:
    """Everything a campaign run produced, for scorecards and equality."""

    rounds: int
    selection_log: List[SelectionRecord] = field(default_factory=list)
    device_events: int = 0
    transitions: int = 0
    uploads: int = 0
    cold_uploads: int = 0
    tail_uploads: int = 0
    selections: int = 0
    unsatisfiable: int = 0

    def selected_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for record in self.selection_log:
            for index in record.selected:
                counts[index] = counts.get(index, 0) + 1
        return counts


# ----------------------------------------------------------------------
# Scalar transition/upload kernels (the reference semantics)
# ----------------------------------------------------------------------
#
# Each scalar kernel below has a vectorized twin inside
# VectorDevicePlane.  The expressions are kept textually parallel on
# purpose: element-wise IEEE-754 double arithmetic is bit-deterministic,
# so same expression + same operation order = same bits.  Touch one
# side only together with the other.


class _ScalarDevice:
    """Per-device state of the object plane (plain attributes)."""

    __slots__ = (
        "x",
        "y",
        "vx",
        "vy",
        "battery_pct",
        "equipped",
        "energy_used_j",
        "times_selected",
        "state",
        "active_until",
        "tail_deadline",
        "resume_deadline",
        "fresh_tail",
        "last_comm",
        "pending_upload",
        "pending_since",
        "promotions",
    )

    def __init__(self, x: float, y: float, vx: float, vy: float,
                 battery_pct: float, equipped: bool) -> None:
        self.x = x
        self.y = y
        self.vx = vx
        self.vy = vy
        self.battery_pct = battery_pct
        self.equipped = equipped
        self.energy_used_j = 0.0
        self.times_selected = 0
        self.state = IDLE
        self.active_until = 0.0
        self.tail_deadline = 0.0
        self.resume_deadline = 0.0
        self.fresh_tail = True
        self.last_comm = NEVER
        self.pending_upload = False
        self.pending_since = 0.0
        self.promotions = 0


class DevicePlane:
    """Shared interface + bookkeeping of both plane implementations."""

    kind: str = "abstract"

    def __init__(self, spec: FleetSpec) -> None:
        self.spec = spec
        self.now = 0.0
        self.transitions = 0
        self.uploads = 0
        self.cold_uploads = 0
        self.tail_uploads = 0
        #: Existing uniform-grid spatial index, fed in batch with
        #: integer device ids; refreshed lazily before indexed queries.
        self.grid = UniformGridIndex(cell_size_m=500.0)
        self._grid_clean_at: Optional[float] = None

    # -- interface -----------------------------------------------------

    @property
    def n(self) -> int:
        raise NotImplementedError

    def advance_to(self, t: float) -> int:
        """Batched RRC transitions + mobility up to absolute time ``t``.

        Returns the number of per-device RRC transitions performed.
        Transition order within the batch: (1) transfers whose busy
        window ended enter TAIL (or fall straight through to IDLE when
        their deadline already passed), (2) tails whose deadline
        arrived drop to IDLE, (3) positions advance (toroidal wrap).
        ``t`` may equal ``now``; going backwards raises.
        """
        raise NotImplementedError

    def tail_mask(self) -> Sequence[bool]:
        """Batched tail-window query: True where the radio is in TAIL."""
        raise NotImplementedError

    def tail_remaining(self) -> Sequence[float]:
        """Seconds of tail left per device (0.0 outside the tail)."""
        raise NotImplementedError

    def qualification(
        self, center_x: float, center_y: float, radius_m: float,
        *, use_index: bool = True,
    ) -> List[int]:
        """Batched qualification probe: equipped devices inside the circle.

        The region test is on squared distance (both planes), candidates
        come from the uniform-grid index unless ``use_index=False``
        forces the full-fleet scan — the indexed==scanned equivalence
        handle.  Returns ascending device indices.
        """
        raise NotImplementedError

    def begin_uploads(self, indices: Sequence[int], size_bytes: int,
                      sample_energy_j: float = 0.0) -> None:
        """Batched upload start with marginal energy attribution."""
        raise NotImplementedError

    def rank(
        self, candidates: Sequence[int], weights: SelectorWeights,
        max_selections: Optional[int] = None,
    ) -> List[int]:
        """Eligible candidates ordered best-first (score, then index)."""
        raise NotImplementedError

    def mark_selected(self, indices: Sequence[int]) -> None:
        raise NotImplementedError

    def set_pending(self, indices: Sequence[int]) -> None:
        """Flag devices as holding a reading for a tail-window upload."""
        raise NotImplementedError

    def pending_due(self, defer_s: float) -> List[int]:
        """Pending devices whose tail is open, who are already busy
        (piggyback), or whose patience ``defer_s`` expired (forced cold
        upload); ascending indices.  Clears the flag for the returned
        set."""
        raise NotImplementedError

    def crowdsensing_energy(self) -> List[float]:
        """Per-device crowdsensing joules, index order."""
        raise NotImplementedError

    def state_codes(self) -> List[int]:
        raise NotImplementedError

    def snapshot(self) -> Dict[str, list]:
        """Exact per-device state for cross-plane equality checks."""
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------

    def total_crowdsensing_energy_j(self) -> float:
        """Fleet total via ``math.fsum`` in index order (both planes)."""
        return math.fsum(self.crowdsensing_energy())

    def state_counts(self) -> Dict[str, int]:
        counts = {name: 0 for name in _STATE_NAMES.values()}
        for code in self.state_codes():
            counts[_STATE_NAMES[code]] += 1
        return counts

    def _invalidate_grid(self) -> None:
        self._grid_clean_at = None

    def device_positions(self) -> List[Tuple[int, float, float]]:
        """(index, x, y) triples — the grid feed."""
        raise NotImplementedError

    def refresh_grid(self) -> int:
        """Feed current positions into the uniform-grid index (batched).

        Memoised per instant, like the registry's refresh path: a
        second indexed query at the same time reuses the buckets.
        Returns how many devices changed bucket (0 on a memo hit).
        """
        if self._grid_clean_at == self.now:
            return 0
        moved = self.grid.update_many(
            (index, Point(x, y)) for index, x, y in self.device_positions()
        )
        self._grid_clean_at = self.now
        return moved


def _scalar_advance(dev: _ScalarDevice, t: float, tail_s: float) -> int:
    """Scalar twin of the vector plane's transition kernel."""
    transitions = 0
    if dev.state == ACTIVE and dev.active_until <= t:
        dev.last_comm = dev.active_until
        if dev.fresh_tail:
            deadline = dev.active_until + tail_s
        else:
            deadline = dev.resume_deadline
        dev.fresh_tail = True
        if deadline <= t:
            # TAIL entered and already expired inside this batch step.
            dev.state = IDLE
            dev.tail_deadline = deadline
            transitions += 2
        else:
            dev.state = TAIL
            dev.tail_deadline = deadline
            transitions += 1
    if dev.state == TAIL and dev.tail_deadline <= t:
        dev.state = IDLE
        transitions += 1
    return transitions


def _scalar_upload(
    dev: _ScalarDevice,
    now: float,
    transfer_s: float,
    profile: RadioPowerProfile,
    resets_tail: bool,
    sample_energy_j: float,
    battery_step: float,
) -> Tuple[float, bool, bool]:
    """Scalar twin of the vector upload kernel.

    Returns ``(marginal_j, was_cold, was_tail)``; mutates the device.
    """
    was_cold = False
    was_tail = False
    if dev.state == IDLE:
        was_cold = True
        marginal = (
            profile.promotion_energy_j()
            + profile.active_energy_j(transfer_s)
            + profile.tail_energy_j()
        )
        dev.promotions += 1
        dev.state = ACTIVE
        dev.active_until = now + profile.promotion_s + transfer_s
        dev.fresh_tail = True
    elif dev.state == ACTIVE:
        marginal = profile.active_energy_j(transfer_s)
        dev.active_until = dev.active_until + transfer_s
    else:  # TAIL
        was_tail = True
        offset = profile.tail_s - (dev.tail_deadline - now)
        marginal = profile.active_energy_j(transfer_s)
        if resets_tail:
            marginal += profile.tail_energy_between(0.0, profile.tail_s)
            marginal -= profile.tail_energy_between(offset, profile.tail_s)
            dev.fresh_tail = True
        else:
            marginal -= profile.tail_energy_between(offset, offset + transfer_s)
            dev.resume_deadline = dev.tail_deadline
            dev.fresh_tail = False
        marginal = max(0.0, marginal)
        dev.state = ACTIVE
        dev.active_until = now + transfer_s
    charged = marginal + sample_energy_j
    dev.energy_used_j = dev.energy_used_j + charged
    dev.battery_pct = dev.battery_pct - charged / battery_step
    return charged, was_cold, was_tail


class ObjectDevicePlane(DevicePlane):
    """The bit-identical slow reference: one Python loop per batch op."""

    kind = "object"

    def __init__(self, spec: FleetSpec) -> None:
        super().__init__(spec)
        state = spec.initial_state()
        self._devices: List[_ScalarDevice] = [
            _ScalarDevice(
                state["x"][i],
                state["y"][i],
                state["vx"][i],
                state["vy"][i],
                state["battery_pct"][i],
                state["equipped"][i],
            )
            for i in range(spec.devices)
        ]
        # Fleet-wide constant the scalar upload kernel divides by.
        self._battery_step = spec.battery_capacity_j / 100.0

    @property
    def n(self) -> int:
        return len(self._devices)

    def advance_to(self, t: float) -> int:
        if t < self.now:
            raise ValueError(f"cannot advance backwards: now={self.now}, t={t}")
        dt = t - self.now
        tail_s = self.spec.profile.tail_s
        width, height = self.spec.width_m, self.spec.height_m
        transitions = 0
        for dev in self._devices:
            transitions += _scalar_advance(dev, t, tail_s)
            if dt > 0.0:
                dev.x = (dev.x + dev.vx * dt) % width
                dev.y = (dev.y + dev.vy * dt) % height
        if dt > 0.0 and self._devices:
            self._invalidate_grid()
        self.now = t
        self.transitions += transitions
        return transitions

    def tail_mask(self) -> List[bool]:
        return [dev.state == TAIL for dev in self._devices]

    def tail_remaining(self) -> List[float]:
        return [
            max(0.0, dev.tail_deadline - self.now) if dev.state == TAIL else 0.0
            for dev in self._devices
        ]

    def qualification(
        self, center_x: float, center_y: float, radius_m: float,
        *, use_index: bool = True,
    ) -> List[int]:
        radius_sq = radius_m * radius_m
        if use_index:
            self.refresh_grid()
            candidates = sorted(
                self.grid.candidates_in_circle(Point(center_x, center_y), radius_m)
            )
        else:
            candidates = range(len(self._devices))
        out = []
        for index in candidates:
            dev = self._devices[index]
            if not dev.equipped:
                continue
            dx = dev.x - center_x
            dy = dev.y - center_y
            if dx * dx + dy * dy <= radius_sq:
                out.append(index)
        return out

    def begin_uploads(self, indices: Sequence[int], size_bytes: int,
                      sample_energy_j: float = 0.0) -> None:
        if len(indices) == 0:
            return
        profile = self.spec.profile
        transfer_s = profile.transfer_time(size_bytes)
        resets_tail = self.spec.tail_policy is TailPolicy.RESET
        for index in indices:
            dev = self._devices[index]
            _, was_cold, was_tail = _scalar_upload(
                dev, self.now, transfer_s, profile, resets_tail,
                sample_energy_j, self._battery_step,
            )
            self.uploads += 1
            if was_cold:
                self.cold_uploads += 1
            if was_tail:
                self.tail_uploads += 1

    def rank(
        self, candidates: Sequence[int], weights: SelectorWeights,
        max_selections: Optional[int] = None,
    ) -> List[int]:
        scored = []
        for index in candidates:
            dev = self._devices[index]
            if not eligibility_mask(
                responsive=True,
                energy_used_j=dev.energy_used_j,
                energy_budget_j=self.spec.energy_budget_j,
                battery_pct=dev.battery_pct,
                critical_battery_pct=self.spec.critical_battery_pct,
                times_selected=dev.times_selected,
                max_selections=max_selections,
            ):
                continue
            ttl_term = min(self.now - dev.last_comm, weights.ttl_cap_s)
            score = linear_score(
                weights,
                dev.energy_used_j,
                dev.times_selected,
                dev.battery_pct,
                ttl_term,
                1.0,
            )
            scored.append((score, index))
        scored.sort()
        return [index for _, index in scored]

    def mark_selected(self, indices: Sequence[int]) -> None:
        for index in indices:
            self._devices[index].times_selected += 1

    def set_pending(self, indices: Sequence[int]) -> None:
        for index in indices:
            dev = self._devices[index]
            if not dev.pending_upload:
                dev.pending_upload = True
                dev.pending_since = self.now

    def pending_due(self, defer_s: float) -> List[int]:
        due = []
        for index, dev in enumerate(self._devices):
            if not dev.pending_upload:
                continue
            if (
                dev.state != IDLE
                or self.now - dev.pending_since >= defer_s
            ):
                due.append(index)
                dev.pending_upload = False
        return due

    def crowdsensing_energy(self) -> List[float]:
        return [dev.energy_used_j for dev in self._devices]

    def state_codes(self) -> List[int]:
        return [dev.state for dev in self._devices]

    def device_positions(self) -> List[Tuple[int, float, float]]:
        return [(i, dev.x, dev.y) for i, dev in enumerate(self._devices)]

    def snapshot(self) -> Dict[str, list]:
        devs = self._devices
        return {
            "x": [d.x for d in devs],
            "y": [d.y for d in devs],
            "state": [d.state for d in devs],
            "active_until": [d.active_until for d in devs],
            "tail_deadline": [
                d.tail_deadline if d.state == TAIL else 0.0 for d in devs
            ],
            "last_comm": [d.last_comm for d in devs],
            "energy_used_j": [d.energy_used_j for d in devs],
            "battery_pct": [d.battery_pct for d in devs],
            "times_selected": [d.times_selected for d in devs],
            "pending": [d.pending_upload for d in devs],
            "promotions": [d.promotions for d in devs],
        }


class VectorDevicePlane(DevicePlane):
    """numpy struct-of-arrays plane — the fast path.

    Every array below is one column of the fleet; every method is one
    (or a handful of) vectorized kernels over those columns.  The
    scalar kernels in this module are the reference; keep expressions
    textually parallel (see the module docstring's contract).
    """

    kind = "vector"

    def __init__(self, spec: FleetSpec) -> None:
        if np is None:  # pragma: no cover - exercised only without numpy
            raise RuntimeError(
                "numpy is required for the vectorized device plane; "
                "install numpy or use make_plane(kind='object')"
            )
        super().__init__(spec)
        state = spec.initial_state()
        n = spec.devices
        self.x = np.asarray(state["x"], dtype=np.float64)
        self.y = np.asarray(state["y"], dtype=np.float64)
        self.vx = np.asarray(state["vx"], dtype=np.float64)
        self.vy = np.asarray(state["vy"], dtype=np.float64)
        self.battery_pct = np.asarray(state["battery_pct"], dtype=np.float64)
        self.equipped = np.asarray(state["equipped"], dtype=bool)
        self.energy_used_j = np.zeros(n, dtype=np.float64)
        self.times_selected = np.zeros(n, dtype=np.int64)
        self.state = np.full(n, IDLE, dtype=np.int8)
        self.active_until = np.zeros(n, dtype=np.float64)
        self.tail_deadline = np.zeros(n, dtype=np.float64)
        self.resume_deadline = np.zeros(n, dtype=np.float64)
        self.fresh_tail = np.ones(n, dtype=bool)
        self.last_comm = np.full(n, NEVER, dtype=np.float64)
        self.pending_upload = np.zeros(n, dtype=bool)
        self.pending_since = np.zeros(n, dtype=np.float64)
        self.promotions = np.zeros(n, dtype=np.int64)
        self._battery_step = spec.battery_capacity_j / 100.0
        self._indices = np.arange(n, dtype=np.int64)
        #: Cells currently known to the grid, for incremental feeding.
        self._grid_cells: Optional[np.ndarray] = None

    @property
    def n(self) -> int:
        return int(self.x.shape[0])

    def advance_to(self, t: float) -> int:
        if t < self.now:
            raise ValueError(f"cannot advance backwards: now={self.now}, t={t}")
        dt = t - self.now
        tail_s = self.spec.profile.tail_s
        transitions = 0

        # (1) Transfer completions — vector twin of _scalar_advance.
        done = (self.state == ACTIVE) & (self.active_until <= t)
        if done.any():
            completed_at = self.active_until[done]
            self.last_comm[done] = completed_at
            deadline = np.where(
                self.fresh_tail[done], completed_at + tail_s,
                self.resume_deadline[done],
            )
            self.fresh_tail[done] = True
            expired = deadline <= t
            self.tail_deadline[done] = deadline
            new_state = np.where(expired, IDLE, TAIL).astype(np.int8)
            self.state[done] = new_state
            transitions += int(done.sum()) + int(expired.sum())

        # (2) Tail expiries.
        tail_over = (self.state == TAIL) & (self.tail_deadline <= t)
        if tail_over.any():
            self.state[tail_over] = IDLE
            transitions += int(tail_over.sum())

        # (3) Mobility (toroidal wrap, same % semantics as Python's).
        if dt > 0.0 and self.n:
            self.x = (self.x + self.vx * dt) % self.spec.width_m
            self.y = (self.y + self.vy * dt) % self.spec.height_m
            self._invalidate_grid()
        self.now = t
        self.transitions += transitions
        return transitions

    def tail_mask(self) -> "np.ndarray":
        return self.state == TAIL

    def tail_remaining(self) -> "np.ndarray":
        in_tail = self.state == TAIL
        remaining = np.where(
            in_tail, np.maximum(0.0, self.tail_deadline - self.now), 0.0
        )
        return remaining

    def qualification(
        self, center_x: float, center_y: float, radius_m: float,
        *, use_index: bool = True,
    ) -> List[int]:
        radius_sq = radius_m * radius_m
        if use_index and self.n:
            self.refresh_grid()
            raw = list(
                self.grid.candidates_in_circle(Point(center_x, center_y), radius_m)
            )
            if not raw:
                return []
            candidates = np.sort(np.asarray(raw, dtype=np.int64))
            dx = self.x[candidates] - center_x
            dy = self.y[candidates] - center_y
            inside = (dx * dx + dy * dy <= radius_sq) & self.equipped[candidates]
            return candidates[inside].tolist()
        dx = self.x - center_x
        dy = self.y - center_y
        inside = (dx * dx + dy * dy <= radius_sq) & self.equipped
        return self._indices[inside].tolist()

    def begin_uploads(self, indices: Sequence[int], size_bytes: int,
                      sample_energy_j: float = 0.0) -> None:
        if len(indices) == 0:
            return
        idx = np.asarray(indices, dtype=np.int64)
        profile = self.spec.profile
        transfer_s = profile.transfer_time(size_bytes)
        resets_tail = self.spec.tail_policy is TailPolicy.RESET
        now = self.now
        states = self.state[idx]
        marginal = np.empty(idx.shape[0], dtype=np.float64)

        # IDLE → cold upload (vector twin of _scalar_upload, IDLE arm).
        cold = states == IDLE
        if cold.any():
            cold_idx = idx[cold]
            marginal[cold] = (
                profile.promotion_energy_j()
                + profile.active_energy_j(transfer_s)
                + profile.tail_energy_j()
            )
            self.promotions[cold_idx] += 1
            self.state[cold_idx] = ACTIVE
            self.active_until[cold_idx] = now + profile.promotion_s + transfer_s
            self.fresh_tail[cold_idx] = True

        # ACTIVE → piggyback extension.
        piggy = states == ACTIVE
        if piggy.any():
            piggy_idx = idx[piggy]
            marginal[piggy] = profile.active_energy_j(transfer_s)
            self.active_until[piggy_idx] = self.active_until[piggy_idx] + transfer_s

        # TAIL → transfer increment ± tail displacement/extension.
        tail = states == TAIL
        if tail.any():
            tail_idx = idx[tail]
            offset = profile.tail_s - (self.tail_deadline[tail_idx] - now)
            tail_marginal = np.full(
                tail_idx.shape[0], profile.active_energy_j(transfer_s)
            )
            if resets_tail:
                tail_marginal += profile.tail_energy_between(0.0, profile.tail_s)
                tail_marginal -= _tail_energy_between_vec(
                    profile, offset, np.full_like(offset, profile.tail_s)
                )
                self.fresh_tail[tail_idx] = True
            else:
                tail_marginal -= _tail_energy_between_vec(
                    profile, offset, offset + transfer_s
                )
                self.resume_deadline[tail_idx] = self.tail_deadline[tail_idx]
                self.fresh_tail[tail_idx] = False
            marginal[tail] = np.maximum(0.0, tail_marginal)
            self.state[tail_idx] = ACTIVE
            self.active_until[tail_idx] = now + transfer_s

        charged = marginal + sample_energy_j
        self.energy_used_j[idx] = self.energy_used_j[idx] + charged
        self.battery_pct[idx] = self.battery_pct[idx] - charged / self._battery_step
        self.uploads += int(idx.shape[0])
        self.cold_uploads += int(cold.sum())
        self.tail_uploads += int(tail.sum())

    def rank(
        self, candidates: Sequence[int], weights: SelectorWeights,
        max_selections: Optional[int] = None,
    ) -> List[int]:
        if len(candidates) == 0:
            return []
        idx = np.asarray(candidates, dtype=np.int64)
        eligible = eligibility_mask(
            responsive=np.ones(idx.shape[0], dtype=bool),
            energy_used_j=self.energy_used_j[idx],
            energy_budget_j=self.spec.energy_budget_j,
            battery_pct=self.battery_pct[idx],
            critical_battery_pct=self.spec.critical_battery_pct,
            times_selected=self.times_selected[idx],
            max_selections=max_selections,
        )
        idx = idx[eligible]
        if idx.shape[0] == 0:
            return []
        ttl_term = np.minimum(self.now - self.last_comm[idx], weights.ttl_cap_s)
        scores = linear_score(
            weights,
            self.energy_used_j[idx],
            self.times_selected[idx],
            self.battery_pct[idx],
            ttl_term,
            1.0,
        )
        # Candidates arrive index-sorted, so a stable sort on score
        # reproduces the object plane's (score, index) ordering.
        order = np.argsort(scores, kind="stable")
        return idx[order].tolist()

    def mark_selected(self, indices: Sequence[int]) -> None:
        if len(indices):
            self.times_selected[np.asarray(indices, dtype=np.int64)] += 1

    def set_pending(self, indices: Sequence[int]) -> None:
        if len(indices) == 0:
            return
        idx = np.asarray(indices, dtype=np.int64)
        fresh = idx[~self.pending_upload[idx]]
        self.pending_upload[fresh] = True
        self.pending_since[fresh] = self.now

    def pending_due(self, defer_s: float) -> List[int]:
        due = self.pending_upload & (
            (self.state != IDLE)
            | (self.now - self.pending_since >= defer_s)
        )
        if not due.any():
            return []
        self.pending_upload[due] = False
        return self._indices[due].tolist()

    def crowdsensing_energy(self) -> List[float]:
        return self.energy_used_j.tolist()

    def state_codes(self) -> List[int]:
        return self.state.tolist()

    def device_positions(self) -> List[Tuple[int, float, float]]:
        return list(zip(self._indices.tolist(), self.x.tolist(), self.y.tolist()))

    def refresh_grid(self) -> int:
        """Incremental grid feed: only devices that changed cell move.

        Cell coordinates are computed vectorized; the Python-level grid
        update then touches only the (typically small) slice of the
        fleet that crossed a 500 m cell border since the last refresh —
        the same incremental discipline the registry's refresh path
        uses, batched.
        """
        if self._grid_clean_at == self.now:
            return 0
        size = self.grid.cell_size_m
        cx = np.floor_divide(self.x, size).astype(np.int64)
        cy = np.floor_divide(self.y, size).astype(np.int64)
        cells = cx * np.int64(1 << 32) + cy
        if self._grid_cells is None:
            moved_idx = self._indices
        else:
            moved_idx = self._indices[cells != self._grid_cells]
        moved = self.grid.update_many(
            (int(i), Point(self.x[i], self.y[i])) for i in moved_idx
        )
        self._grid_cells = cells
        self._grid_clean_at = self.now
        return moved

    def snapshot(self) -> Dict[str, list]:
        in_tail = self.state == TAIL
        return {
            "x": self.x.tolist(),
            "y": self.y.tolist(),
            "state": self.state.tolist(),
            "active_until": self.active_until.tolist(),
            "tail_deadline": np.where(in_tail, self.tail_deadline, 0.0).tolist(),
            "last_comm": self.last_comm.tolist(),
            "energy_used_j": self.energy_used_j.tolist(),
            "battery_pct": self.battery_pct.tolist(),
            "times_selected": self.times_selected.tolist(),
            "pending": self.pending_upload.tolist(),
            "promotions": self.promotions.tolist(),
        }


def _tail_energy_between_vec(
    profile: RadioPowerProfile, start_s: "np.ndarray", end_s: "np.ndarray"
) -> "np.ndarray":
    """Vector twin of :meth:`RadioPowerProfile.tail_energy_between`
    (flat tails only — FleetSpec rejects staged profiles)."""
    start = np.maximum(0.0, np.minimum(start_s, profile.tail_s))
    end = np.maximum(start, np.minimum(end_s, profile.tail_s))
    return (profile.tail_mw - profile.idle_mw) / 1000.0 * (end - start)


# ----------------------------------------------------------------------
# Plane factory / runtime toggle
# ----------------------------------------------------------------------

PLANE_KINDS = ("object", "vector")


def default_plane_kind() -> str:
    """Resolve the runtime toggle: env var, else vector when possible."""
    kind = os.environ.get(PLANE_ENV_VAR, "").strip().lower()
    if kind:
        if kind not in PLANE_KINDS:
            raise ValueError(
                f"{PLANE_ENV_VAR}={kind!r} invalid; expected one of {PLANE_KINDS}"
            )
        return kind
    return "vector" if np is not None else "object"


def make_plane(spec: FleetSpec, kind: Optional[str] = None) -> DevicePlane:
    """Build a device plane; ``kind=None`` follows the runtime toggle."""
    if kind is None:
        kind = default_plane_kind()
    if kind == "object":
        return ObjectDevicePlane(spec)
    if kind == "vector":
        return VectorDevicePlane(spec)
    raise ValueError(f"unknown plane kind {kind!r}; expected one of {PLANE_KINDS}")


# ----------------------------------------------------------------------
# Campaign driver (plane-agnostic; both planes run the same loop)
# ----------------------------------------------------------------------


def run_round(
    plane: DevicePlane,
    campaign: CampaignSpec,
    round_index: int,
    result: CampaignResult,
    *,
    use_index: bool = True,
) -> int:
    """One sensing round; returns the per-device operations performed.

    Order per round: advance the plane to the round instant (batched
    RRC transitions + mobility), flush pending uploads whose window
    opened, then per task: qualification probe → four-factor ranking →
    selection → mark pending (tail-aware) or upload immediately.
    """
    t = (round_index + 1) * campaign.round_period_s
    transitions = plane.advance_to(t)
    ops = plane.n + transitions  # mobility touch + RRC transitions

    due = plane.pending_due(campaign.tail_defer_s)
    if due:
        plane.begin_uploads(due, campaign.upload_bytes, campaign.sample_energy_j)
        ops += len(due)
        result.uploads += len(due)

    for task_index, task in enumerate(campaign.tasks):
        qualified = plane.qualification(
            task.center_x, task.center_y, task.radius_m, use_index=use_index
        )
        ranked = plane.rank(
            qualified, campaign.weights, campaign.max_selections_per_epoch
        )
        ops += len(qualified)
        if len(ranked) < task.devices_needed:
            selected: Tuple[int, ...] = ()
            result.unsatisfiable += 1
        else:
            selected = tuple(ranked[: task.devices_needed])
            plane.mark_selected(selected)
            result.selections += len(selected)
            if campaign.tail_defer_s > 0.0:
                plane.set_pending(selected)
            else:
                plane.begin_uploads(
                    selected, campaign.upload_bytes, campaign.sample_energy_j
                )
                result.uploads += len(selected)
            ops += len(selected)
        result.selection_log.append(
            SelectionRecord(
                round_index=round_index,
                task_index=task_index,
                qualified=tuple(qualified),
                selected=selected,
            )
        )
    result.transitions += transitions
    result.device_events += ops
    return ops


def run_campaign(
    plane: DevicePlane,
    campaign: CampaignSpec,
    rounds: int,
    *,
    use_index: bool = True,
) -> CampaignResult:
    """Run ``rounds`` sensing rounds straight through (no simulator)."""
    result = CampaignResult(rounds=rounds)
    for round_index in range(rounds):
        run_round(plane, campaign, round_index, result, use_index=use_index)
    result.cold_uploads = plane.cold_uploads
    result.tail_uploads = plane.tail_uploads
    return result


class PlaneDriver:
    """Schedules a campaign's rounds through the discrete-event engine.

    This is how the vectorized plane rides the existing simulator: one
    heap event per round advances the entire fleet, and the per-device
    operation counts are credited to
    :meth:`repro.sim.engine.Simulator.note_device_events` so throughput
    scorecards can compare batched tiers against object-per-device
    tiers in the same unit (device operations per second).
    """

    def __init__(
        self,
        sim: "Simulator",
        plane: DevicePlane,
        campaign: CampaignSpec,
        rounds: int,
        *,
        use_index: bool = True,
    ) -> None:
        self._sim = sim
        self.plane = plane
        self.campaign = campaign
        self.rounds = rounds
        self.use_index = use_index
        self.result = CampaignResult(rounds=rounds)
        for round_index in range(rounds):
            sim.schedule_at(
                (round_index + 1) * campaign.round_period_s,
                self._run_round,
                round_index,
            )

    def _run_round(self, round_index: int) -> None:
        ops = run_round(
            self.plane,
            self.campaign,
            round_index,
            self.result,
            use_index=self.use_index,
        )
        self._sim.note_device_events(ops)
        if round_index == self.rounds - 1:
            self.result.cold_uploads = self.plane.cold_uploads
            self.result.tail_uploads = self.plane.tail_uploads
