"""Distributed edge deployment of Sense-Aid (paper §3.2).

"Logically, each of these entities is centralized.  In its physical
instantiation, each entity is distributed into multiple instances,
which are resident at the edge of the cellular network.  Each instance
will be located spatially close to the mobile devices that are
participating in that crowdsensing activity.  This aspect of the
design is key to high performance, i.e., low latency ...  Distribution
however results in higher complexity."

:class:`FederatedSenseAid` is that physical instantiation: one
:class:`~repro.core.server.SenseAidServer` per edge region (a Voronoi
cell around the instance's site), devices registered with the instance
serving their current location, tasks routed to the instance owning
the task centre, and a periodic rebalancer that hands devices over as
they move between regions — the distribution complexity the paper
warns about, made concrete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cellular.enodeb import ENodeB, TowerRegistry
from repro.cellular.network import CellularNetwork
from repro.core.config import SenseAidConfig
from repro.core.server import SenseAidServer, SensedDataPoint
from repro.core.tasks import TaskSpec
from repro.environment.geometry import Point
from repro.sim.engine import Simulator
from repro.sim.processes import PeriodicProcess


@dataclass(frozen=True)
class EdgeRegionSpec:
    """One edge instance's placement."""

    region_id: str
    center: Point
    #: Towers backing this instance (each instance owns its slice of
    #: the RAN).  If empty, a single tower is synthesized at ``center``.
    towers: Sequence[ENodeB] = field(default_factory=tuple)


class FederatedSenseAid:
    """A fleet of Sense-Aid edge instances with device handoff."""

    def __init__(
        self,
        sim: Simulator,
        network: CellularNetwork,
        regions: Sequence[EdgeRegionSpec],
        config: Optional[SenseAidConfig] = None,
        *,
        rebalance_period_s: float = 60.0,
    ) -> None:
        if not regions:
            raise ValueError("at least one edge region is required")
        ids = [r.region_id for r in regions]
        if len(set(ids)) != len(ids):
            raise ValueError("region ids must be unique")
        if rebalance_period_s <= 0:
            raise ValueError("rebalance_period_s must be positive")
        self._sim = sim
        self._network = network
        self._regions: Dict[str, EdgeRegionSpec] = {}
        self._instances: Dict[str, SenseAidServer] = {}
        for region in regions:
            towers = list(region.towers)
            if not towers:
                towers = [
                    ENodeB(
                        tower_id=f"enb-{region.region_id}",
                        position=region.center,
                        coverage_radius_m=5000.0,
                    )
                ]
            registry = TowerRegistry(towers)
            self._regions[region.region_id] = region
            self._instances[region.region_id] = SenseAidServer(
                sim, registry, network, config
            )
        self._clients: Dict[str, object] = {}
        self._home: Dict[str, str] = {}
        self.handoffs = 0
        self.failovers = 0
        self._task_meta: Dict[int, dict] = {}
        self._failed_over: set = set()
        self._failover_monitor: Optional[PeriodicProcess] = None
        self._rebalancer = PeriodicProcess(
            sim, rebalance_period_s, self.rebalance
        )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def region_ids(self) -> List[str]:
        return sorted(self._regions)

    def instance(self, region_id: str) -> SenseAidServer:
        try:
            return self._instances[region_id]
        except KeyError:
            raise KeyError(
                f"unknown region {region_id!r}; available: {self.region_ids}"
            ) from None

    def region_for(self, point: Point, *, healthy_only: bool = False) -> str:
        """The Voronoi owner of a location.

        With ``healthy_only`` crashed instances are skipped, so routing
        (registration, rebalancing, task submission) lands on a live
        instance; if every instance is down the plain owner is returned.
        """
        candidates = list(self._regions.values())
        if healthy_only:
            healthy = [
                r for r in candidates if not self._instances[r.region_id].crashed
            ]
            if healthy:
                candidates = healthy
        return min(
            candidates, key=lambda r: r.center.distance_to(point)
        ).region_id

    def instance_for(self, point: Point) -> SenseAidServer:
        return self._instances[self.region_for(point)]

    # ------------------------------------------------------------------
    # Devices
    # ------------------------------------------------------------------

    def register(self, client) -> str:
        """Register a client with the instance serving its location.

        ``client`` is a :class:`~repro.clientlib.SenseAidClient` (or
        anything exposing ``device``, ``bind_server``, ``register``).
        Returns the chosen region id.
        """
        region_id = self.region_for(client.device.position(), healthy_only=True)
        client.bind_server(self._instances[region_id])
        client.register()
        self._clients[client.device.device_id] = client
        self._home[client.device.device_id] = region_id
        return region_id

    def deregister(self, device_id: str) -> None:
        client = self._clients.pop(device_id, None)
        self._home.pop(device_id, None)
        if client is not None and client.registered:
            client.deregister()

    def home_region(self, device_id: str) -> str:
        try:
            return self._home[device_id]
        except KeyError:
            raise KeyError(f"device {device_id!r} is not registered") from None

    def rebalance(self) -> int:
        """Hand over devices that moved into another instance's region.

        Returns the number of handoffs performed.
        """
        moved = 0
        for device_id, client in self._clients.items():
            # Churn guard: a client that deregistered or died between
            # rebalance ticks must not be resurrected on the target
            # instance by a handover it never asked for.
            if not client.registered or not client.powered:
                continue
            current = self._home[device_id]
            target = self.region_for(client.device.position(), healthy_only=True)
            if target == current:
                continue
            client.migrate(self._instances[target])
            self._home[device_id] = target
            moved += 1
        self.handoffs += moved
        return moved

    # ------------------------------------------------------------------
    # Tasks
    # ------------------------------------------------------------------

    def submit_task(
        self, task: TaskSpec, data_callback: Callable[[SensedDataPoint], None]
    ) -> str:
        """Route a task to the edge instance owning its centre.

        Returns the owning region id (the task id is on the spec).
        """
        region_id = self.region_for(task.center, healthy_only=True)
        self._instances[region_id].submit_task(task, data_callback)
        now = self._sim.now
        duration = task.duration_s()
        end_time = (
            task.end_time
            if task.end_time is not None
            else (now + duration if duration is not None else now)
        )
        self._task_meta[task.task_id] = {
            "region": region_id,
            "task": task,
            "callback": data_callback,
            "end_time": end_time,
        }
        return region_id

    def delete_task(self, region_id: str, task_id: int) -> None:
        self.instance(region_id).delete_task(task_id)
        self._task_meta.pop(task_id, None)

    # ------------------------------------------------------------------
    # Failover (paper §8: consistency and failures in data collection)
    # ------------------------------------------------------------------

    def enable_failover(self, check_period_s: float = 30.0) -> None:
        """Start monitoring instances and fail their work over on crash."""
        if check_period_s <= 0:
            raise ValueError("check_period_s must be positive")
        if self._failover_monitor is not None:
            raise RuntimeError("failover monitoring already enabled")
        self._failover_monitor = PeriodicProcess(
            self._sim, check_period_s, self._failover_check
        )

    def backup_region_for(self, region_id: str) -> Optional[str]:
        """The nearest healthy sibling, or None if none is up."""
        center = self._regions[region_id].center
        candidates = [
            r
            for r in self._regions.values()
            if r.region_id != region_id
            and not self._instances[r.region_id].crashed
        ]
        if not candidates:
            return None
        return min(
            candidates, key=lambda r: r.center.distance_to(center)
        ).region_id

    def _failover_check(self) -> None:
        for region_id, instance in self._instances.items():
            if instance.crashed and region_id not in self._failed_over:
                self._take_over(region_id)

    def _take_over(self, failed_region: str) -> None:
        backup_region = self.backup_region_for(failed_region)
        if backup_region is None:
            return  # nothing healthy to fail over to
        self._failed_over.add(failed_region)
        backup = self._instances[backup_region]
        now = self._sim.now
        # Move the failed instance's devices to the backup.  Clients
        # that deregistered or died stay where they are: carrying them
        # over would resurrect sessions their users already ended.
        for device_id, home in list(self._home.items()):
            if home != failed_region:
                continue
            client = self._clients[device_id]
            if not client.registered or not client.powered:
                continue
            client.migrate(backup)
            self._home[device_id] = backup_region
            self.handoffs += 1
        # Re-submit the unexpired remainder of every affected task.
        for task_id, meta in list(self._task_meta.items()):
            if meta["region"] != failed_region:
                continue
            remaining = meta["end_time"] - now
            if remaining <= 0 or meta["task"].sampling_period_s is None:
                continue
            remainder = TaskSpec(
                sensor_type=meta["task"].sensor_type,
                center=meta["task"].center,
                area_radius_m=meta["task"].area_radius_m,
                spatial_density=meta["task"].spatial_density,
                sampling_period_s=meta["task"].sampling_period_s,
                start_time=now,
                end_time=meta["end_time"],
                device_type=meta["task"].device_type,
                origin=meta["task"].origin,
            )
            # Ownership moves to the backup: scrub the task from the
            # failed instance's (persistent) datastore so a later
            # recovery cannot double-schedule it.
            self._instances[failed_region].delete_task(task_id)
            backup.submit_task(remainder, meta["callback"])
            meta["region"] = backup_region
            meta["task"] = remainder
        # The backup instance is healthy, so the Sense-Aid path is
        # available again (the shared flag was cleared by the crash).
        self._network.set_sense_aid_path_available(True)
        self.failovers += 1

    def recover_instance(self, region_id: str) -> None:
        """Bring a failed instance back as a new incarnation.

        The replacement process cold-restarts (epoch bump, volatile
        session state gone); its previous work stays wherever it was
        failed over to, and clients re-establish sessions through the
        epoch-resync path rather than trusting pre-crash assignments.
        """
        instance = self._instances[region_id]
        instance.restart()
        self._failed_over.discard(region_id)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def total_data_points(self) -> int:
        return sum(s.stats.data_points for s in self._instances.values())

    def total_requests_issued(self) -> int:
        return sum(s.stats.requests_issued for s in self._instances.values())

    def devices_per_region(self) -> Dict[str, int]:
        counts = {region_id: 0 for region_id in self._regions}
        for device_id, region_id in self._home.items():
            counts[region_id] += 1
        return counts

    def shutdown(self) -> None:
        self._rebalancer.stop()
        if self._failover_monitor is not None:
            self._failover_monitor.stop()
        for instance in self._instances.values():
            instance.shutdown()
