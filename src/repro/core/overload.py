"""Overload control for the Sense-Aid control plane.

A carrier-grade edge service must survive traffic spikes without
collapsing: when more control-plane requests arrive than the instance
can process, the right behaviour is to *shed load by priority* and
tell the refused clients when to come back — not to queue unboundedly
or fail randomly.  This module provides that layer:

- a **virtual admission queue** bounded by
  :class:`~repro.core.config.OverloadPolicy.queue_capacity`, drained
  at ``service_rate_per_s`` (a fluid model: depth decays continuously
  with simulation time, so no per-request events are needed);
- **priority-aware shedding** — registrations outrank uploads outrank
  queries.  Each class has its own depth threshold, ordered so a
  registration is only refused when the queue is completely full, by
  which point every lower class is already being shed;
- a **circuit breaker** — after ``breaker_threshold`` consecutive
  sheds the controller stops admitting uploads/queries outright for
  ``breaker_cooldown_s``, returning the remaining cooldown as the
  backoff hint so clients stay away while the queue drains;
- **Retry-After hints** — every shed decision carries a
  ``retry_after_s`` sized to the backlog, which
  :class:`~repro.core.config.RetryPolicy` honours on the client side
  (``shed_delay_s``).

Everything is deterministic: depth and breaker state are pure
functions of the simulation clock and the admission sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

from repro.core.config import OverloadPolicy
from repro.sim.engine import Simulator
from repro.sim.simlog import SimLogger


class RequestClass(Enum):
    """Control-plane request priority classes (lower rank = higher
    priority; registrations are shed last)."""

    REGISTRATION = "registration"
    UPLOAD = "upload"
    QUERY = "query"


@dataclass
class OverloadStats:
    """Everything the admission controller did to a run."""

    admitted: Dict[str, int] = field(
        default_factory=lambda: {c.value: 0 for c in RequestClass}
    )
    shed: Dict[str, int] = field(
        default_factory=lambda: {c.value: 0 for c in RequestClass}
    )
    breaker_opens: int = 0
    breaker_rejects: int = 0
    max_queue_depth: float = 0.0

    @property
    def total_admitted(self) -> int:
        return sum(self.admitted.values())

    @property
    def total_shed(self) -> int:
        return sum(self.shed.values())


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    request_class: RequestClass
    reason: str = ""
    #: Client-visible backoff hint (seconds); 0 when admitted.
    retry_after_s: float = 0.0
    #: Queue depth observed at decision time (diagnostics/tests).
    queue_depth: float = 0.0


class ServerOverloadedError(RuntimeError):
    """Raised when a synchronous control-plane call is shed.

    Carries the ``Retry-After``-style hint so the caller can schedule
    a compliant retry.
    """

    def __init__(self, decision: AdmissionDecision) -> None:
        super().__init__(
            f"server overloaded ({decision.reason}); "
            f"retry after {decision.retry_after_s:.1f}s"
        )
        self.decision = decision

    @property
    def retry_after_s(self) -> float:
        return self.decision.retry_after_s


class AdmissionController:
    """Bounded-queue admission control with priority shedding.

    The queue is *fluid*: ``depth`` rises by one per admitted request
    and decays at the policy's service rate as simulation time passes.
    ``admit`` is the only entry point; it never blocks — the caller
    gets an immediate admit/shed decision and, when shed, a backoff
    hint.
    """

    def __init__(
        self,
        sim: Simulator,
        policy: OverloadPolicy,
        *,
        log: Optional[SimLogger] = None,
    ) -> None:
        self._sim = sim
        self.policy = policy
        self.stats = OverloadStats()
        self._depth = 0.0
        self._last_drain = sim.now
        self._consecutive_sheds = 0
        self._breaker_open_until: Optional[float] = None
        self._log = log if log is not None else SimLogger(sim, "repro.core.overload")

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> float:
        """Current backlog (requests admitted but not yet serviced)."""
        self._drain()
        return self._depth

    @property
    def breaker_open(self) -> bool:
        return (
            self._breaker_open_until is not None
            and self._sim.now < self._breaker_open_until
        )

    def _drain(self) -> None:
        now = self._sim.now
        elapsed = now - self._last_drain
        if elapsed > 0:
            self._depth = max(
                0.0, self._depth - elapsed * self.policy.service_rate_per_s
            )
            self._last_drain = now

    def _threshold(self, request_class: RequestClass) -> float:
        policy = self.policy
        fraction = {
            RequestClass.REGISTRATION: policy.registration_shed_fraction,
            RequestClass.UPLOAD: policy.upload_shed_fraction,
            RequestClass.QUERY: policy.query_shed_fraction,
        }[request_class]
        return policy.queue_capacity * fraction

    def _retry_after(self, overshoot: float) -> float:
        """Hint: base pause plus the time to drain the overshoot."""
        return self.policy.retry_after_base_s + max(0.0, overshoot) / (
            self.policy.service_rate_per_s
        )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def admit(self, request_class: RequestClass) -> AdmissionDecision:
        """Decide one request; updates depth/breaker/stat state."""
        self._drain()
        depth = self._depth
        # Open breaker: refuse everything below registration priority
        # immediately, hinting the remaining cooldown.
        if self.breaker_open and request_class is not RequestClass.REGISTRATION:
            self.stats.breaker_rejects += 1
            self.stats.shed[request_class.value] += 1
            remaining = self._breaker_open_until - self._sim.now
            return self._shed(
                request_class, depth, "breaker_open", retry_after_s=remaining
            )
        threshold = self._threshold(request_class)
        if depth + 1.0 > threshold:
            self.stats.shed[request_class.value] += 1
            self._consecutive_sheds += 1
            if (
                self._consecutive_sheds >= self.policy.breaker_threshold
                and not self.breaker_open
            ):
                self._breaker_open_until = (
                    self._sim.now + self.policy.breaker_cooldown_s
                )
                self.stats.breaker_opens += 1
                self._log.event(
                    "overload.breaker_open",
                    until=round(self._breaker_open_until, 6),
                    queue_depth=round(depth, 3),
                )
            return self._shed(
                request_class,
                depth,
                "queue_full",
                retry_after_s=self._retry_after(depth + 1.0 - threshold),
            )
        self._depth = depth + 1.0
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, self._depth)
        self.stats.admitted[request_class.value] += 1
        self._consecutive_sheds = 0
        return AdmissionDecision(
            admitted=True, request_class=request_class, queue_depth=self._depth
        )

    def _shed(
        self,
        request_class: RequestClass,
        depth: float,
        reason: str,
        *,
        retry_after_s: float,
    ) -> AdmissionDecision:
        self._log.event(
            "overload.shed",
            request_class=request_class.value,
            reason=reason,
            queue_depth=round(depth, 3),
            retry_after_s=round(retry_after_s, 6),
        )
        return AdmissionDecision(
            admitted=False,
            request_class=request_class,
            reason=reason,
            retry_after_s=retry_after_s,
            queue_depth=depth,
        )
