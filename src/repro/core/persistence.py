"""Checkpoint / restore of Sense-Aid server state.

The crash-recovery story (and the paper's assumption that a carrier
deployment keeps its datastores on durable storage) needs the server's
two datastores to be serialisable: this module round-trips device
records and task specs through plain JSON-compatible dicts, and can
rebuild a *fresh* server process from a checkpoint — device records
intact, and each task's unexpired remainder re-submitted.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Optional

from repro.core.datastores import DeviceRecord
from repro.core.server import SenseAidServer, SensedDataPoint
from repro.core.tasks import TaskSpec
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Record / spec codecs
# ----------------------------------------------------------------------


def record_to_dict(record: DeviceRecord) -> dict:
    return {
        "device_id": record.device_id,
        "imei_hash": record.imei_hash,
        "device_model": record.device_model,
        "energy_budget_j": record.energy_budget_j,
        "critical_battery_pct": record.critical_battery_pct,
        "battery_pct": record.battery_pct,
        "energy_used_j": record.energy_used_j,
        "times_selected": record.times_selected,
        "last_comm_time": record.last_comm_time,
        "registered_at": record.registered_at,
        "responsive": record.responsive,
        "invalid_data_count": record.invalid_data_count,
        "sensors": sorted(s.name for s in record.sensors),
        "reliability": record.reliability,
        "missed_deliveries": record.missed_deliveries,
    }


def record_from_dict(data: dict) -> DeviceRecord:
    return DeviceRecord(
        device_id=data["device_id"],
        imei_hash=data["imei_hash"],
        device_model=data["device_model"],
        energy_budget_j=data["energy_budget_j"],
        critical_battery_pct=data["critical_battery_pct"],
        battery_pct=data["battery_pct"],
        energy_used_j=data["energy_used_j"],
        times_selected=data["times_selected"],
        last_comm_time=data["last_comm_time"],
        registered_at=data["registered_at"],
        responsive=data["responsive"],
        invalid_data_count=data["invalid_data_count"],
        sensors=frozenset(SensorType[name] for name in data["sensors"]),
        reliability=data.get("reliability", 1.0),
        missed_deliveries=data.get("missed_deliveries", 0),
    )


def task_to_dict(task: TaskSpec) -> dict:
    return {
        "task_id": task.task_id,
        "sensor_type": task.sensor_type.name,
        "center": [task.center.x, task.center.y],
        "area_radius_m": task.area_radius_m,
        "spatial_density": task.spatial_density,
        "sampling_period_s": task.sampling_period_s,
        "sampling_duration_s": task.sampling_duration_s,
        "start_time": task.start_time,
        "end_time": task.end_time,
        "device_type": task.device_type,
        "origin": task.origin,
    }


def task_from_dict(data: dict) -> TaskSpec:
    return TaskSpec(
        task_id=data["task_id"],
        sensor_type=SensorType[data["sensor_type"]],
        center=Point(data["center"][0], data["center"][1]),
        area_radius_m=data["area_radius_m"],
        spatial_density=data["spatial_density"],
        sampling_period_s=data["sampling_period_s"],
        sampling_duration_s=data["sampling_duration_s"],
        start_time=data["start_time"],
        end_time=data["end_time"],
        device_type=data["device_type"],
        origin=data["origin"],
    )


# ----------------------------------------------------------------------
# Server checkpointing
# ----------------------------------------------------------------------


def checkpoint_server(server: SenseAidServer) -> dict:
    """Snapshot the server's durable state as a JSON-compatible dict.

    Tasks are stored with an absolute end time so a restore at a later
    point can re-submit exactly the unexpired remainder.
    """
    now = server._sim.now
    tasks = []
    for task in server.tasks.all_tasks():
        entry = task_to_dict(task)
        duration = task.duration_s()
        entry["absolute_end"] = (
            task.end_time
            if task.end_time is not None
            else (now + duration if duration is not None else now)
        )
        tasks.append(entry)
    return {
        "version": FORMAT_VERSION,
        "taken_at": now,
        "devices": [record_to_dict(r) for r in server.devices.records()],
        "tasks": tasks,
    }


def save_checkpoint(server: SenseAidServer, path: str) -> None:
    with open(path, "w", encoding="utf-8") as f:
        json.dump(checkpoint_server(server), f, indent=2)


def load_checkpoint(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        snapshot = json.load(f)
    if snapshot.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {snapshot.get('version')!r}"
        )
    return snapshot


def restore_server(
    server: SenseAidServer,
    snapshot: dict,
    data_callbacks: Optional[
        Dict[str, Callable[[SensedDataPoint], None]]
    ] = None,
) -> int:
    """Rebuild a fresh server's durable state from a checkpoint.

    Device records are restored verbatim (clients must still register
    their live assignment handlers before devices can be scheduled).
    Each periodic task whose window extends past the restore time is
    re-submitted for its remainder, delivering to the callback mapped
    from the task's origin in ``data_callbacks``.  Returns the number
    of tasks resumed.
    """
    if snapshot.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version {snapshot.get('version')!r}")
    for data in snapshot["devices"]:
        record = record_from_dict(data)
        if record.device_id not in server.devices:
            server.devices.register(record)
    resumed = 0
    now = server._sim.now
    callbacks = data_callbacks or {}
    for entry in snapshot["tasks"]:
        end = entry["absolute_end"]
        if entry["sampling_period_s"] is None or end <= now:
            continue
        callback = callbacks.get(entry["origin"])
        if callback is None:
            continue
        remainder = TaskSpec(
            sensor_type=SensorType[entry["sensor_type"]],
            center=Point(entry["center"][0], entry["center"][1]),
            area_radius_m=entry["area_radius_m"],
            spatial_density=entry["spatial_density"],
            sampling_period_s=entry["sampling_period_s"],
            start_time=now,
            end_time=end,
            device_type=entry["device_type"],
            origin=entry["origin"],
        )
        server.submit_task(remainder, callback)
        resumed += 1
    return resumed
