"""Checkpoint / restore of Sense-Aid server state.

The crash-recovery story (and the paper's assumption that a carrier
deployment keeps its datastores on durable storage) needs the server's
durable state to be serialisable: this module round-trips device
records and task specs through plain JSON-compatible dicts, and can
rebuild a *fresh* server process from a checkpoint — device records
intact, each task's unexpired remainder re-submitted *with its
original identity and request numbering*, plus (format version 2) the
aggregate :class:`~repro.core.server.ServerStats`, the burned
idempotency keys, and the pending per-request assignment bookkeeping.

Checkpoint files are written crash-safely: the snapshot goes to a
temporary file in the same directory and is atomically renamed into
place, so a crash mid-save can never leave a truncated checkpoint
behind.  The write-ahead log (:mod:`repro.core.wal`) builds on these
snapshots for exact crash/restart recovery.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from typing import Callable, Dict, Optional

from repro.core.datastores import (
    DeviceRecord,
    record_from_dict,
    record_to_dict,
    task_from_dict,
    task_to_dict,
)
from repro.core.server import (
    SenseAidServer,
    SensedDataPoint,
    ServerStats,
    _RequestTracking,
)
from repro.core.tasks import SensingRequest, TaskSpec
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point

FORMAT_VERSION = 2
#: Versions ``load_checkpoint``/``restore_server`` understand.  v1
#: snapshots (devices + task remainders only) restore with the new
#: fields defaulting to empty.
SUPPORTED_VERSIONS = (1, 2)


# ----------------------------------------------------------------------
# Record / spec codecs live in repro.core.datastores (re-exported above
# for backward compatibility) — they are the one serialization story
# shared by the WAL, checkpoints, and the storage backends.
# ----------------------------------------------------------------------


def stats_to_dict(stats: ServerStats) -> dict:
    return dataclasses.asdict(stats)


def stats_from_dict(data: dict) -> ServerStats:
    known = {f.name for f in dataclasses.fields(ServerStats)}
    return ServerStats(**{k: v for k, v in data.items() if k in known})


def pending_to_dict(tracking: _RequestTracking) -> dict:
    """One in-flight request's assignment bookkeeping, serialised."""
    request = tracking.request
    return {
        "request_id": request.request_id,
        "task_id": request.task.task_id,
        "sequence": request.sequence,
        "issue_time": request.issue_time,
        "deadline": request.deadline,
        "assigned": sorted(tracking.assigned),
        "received": sorted(tracking.received),
        "satisfied": tracking.satisfied,
    }


# ----------------------------------------------------------------------
# Crash-safe file writes
# ----------------------------------------------------------------------


def atomic_write_json(path: str, payload: dict, *, indent: Optional[int] = 2) -> None:
    """Write JSON to ``path`` atomically (temp file + ``os.replace``).

    The temporary file lives in the target's own directory so the
    rename never crosses filesystems; a crash anywhere before the
    ``os.replace`` leaves the previous file untouched, never a
    truncated one.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=indent)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# Server checkpointing
# ----------------------------------------------------------------------


def checkpoint_server(server: SenseAidServer) -> dict:
    """Snapshot the server's durable state as a JSON-compatible dict.

    Tasks are stored with an absolute end time *and* their effective
    start so a restore at a later point can re-submit exactly the
    unexpired remainder, numbered like the original requests.
    """
    now = server._sim.now
    tasks = []
    for task in server.tasks.all_tasks():
        entry = task_to_dict(task)
        duration = task.duration_s()
        start = server._task_starts.get(
            task.task_id, task.start_time if task.start_time is not None else now
        )
        entry["absolute_end"] = (
            task.end_time
            if task.end_time is not None
            else (start + duration if duration is not None else now)
        )
        entry["effective_start"] = start
        tasks.append(entry)
    pending = [
        pending_to_dict(tracking)
        for _, tracking in sorted(server._tracking.items())
    ]
    return {
        "version": FORMAT_VERSION,
        "taken_at": now,
        "epoch": server.epoch,
        "devices": [record_to_dict(r) for r in server.devices.records()],
        "tasks": tasks,
        "stats": stats_to_dict(server.stats),
        "seen_upload_ids": sorted(server._seen_upload_ids),
        "pending": pending,
    }


def save_checkpoint(server: SenseAidServer, path: str) -> None:
    """Checkpoint to disk, crash-safely (see :func:`atomic_write_json`)."""
    atomic_write_json(path, checkpoint_server(server))


def load_checkpoint(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        snapshot = json.load(f)
    if snapshot.get("version") not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported checkpoint version {snapshot.get('version')!r}"
        )
    return snapshot


def resume_task_spec(entry: dict) -> Optional[TaskSpec]:
    """The original-identity spec a checkpointed task resumes as.

    One-shot tasks (no sampling period) do not resume.  Periodic tasks
    come back with their original ``task_id`` and an explicit
    start/end window anchored at the *original* effective start, so
    ``expand_requests(..., resume=True)`` regenerates exactly the
    not-yet-issued requests with their original sequence numbers,
    issue times, and deadlines.
    """
    if entry["sampling_period_s"] is None:
        return None
    return TaskSpec(
        task_id=entry["task_id"],
        sensor_type=SensorType[entry["sensor_type"]],
        center=Point(entry["center"][0], entry["center"][1]),
        area_radius_m=entry["area_radius_m"],
        spatial_density=entry["spatial_density"],
        sampling_period_s=entry["sampling_period_s"],
        start_time=entry.get("effective_start", entry.get("start_time")),
        end_time=entry["absolute_end"],
        device_type=entry["device_type"],
        origin=entry["origin"],
    )


def restore_pending(server: SenseAidServer, pending: list) -> int:
    """Rebuild in-flight request bookkeeping from a v2 checkpoint.

    Only requests whose task survived the restore and whose deadline
    is still in the future come back; the rest are history.  Returns
    the number of trackings restored.
    """
    now = server._sim.now
    restored = 0
    for entry in pending:
        task_id = entry["task_id"]
        if task_id not in server.tasks or entry["deadline"] <= now:
            continue
        request = SensingRequest(
            task=server.tasks.get(task_id),
            sequence=entry["sequence"],
            issue_time=entry["issue_time"],
            deadline=entry["deadline"],
        )
        tracking = _RequestTracking(
            request=request,
            assigned=set(entry["assigned"]),
            received=set(entry["received"]),
            satisfied=entry["satisfied"],
        )
        server._tracking[request.request_id] = tracking
        restored += 1
    return restored


def restore_server(
    server: SenseAidServer,
    snapshot: dict,
    data_callbacks: Optional[
        Dict[str, Callable[[SensedDataPoint], None]]
    ] = None,
) -> int:
    """Rebuild a fresh server's durable state from a checkpoint.

    Device records are restored verbatim (clients must still register
    their live assignment handlers — or epoch-resync — before devices
    can be scheduled).  Each periodic task whose window extends past
    the restore time is re-submitted for its remainder under its
    original task id and request numbering, delivering to the callback
    mapped from the task's origin in ``data_callbacks``.  Version-2
    snapshots additionally restore the aggregate stats, the burned
    idempotency keys, and pending assignment bookkeeping.  Returns the
    number of tasks resumed.
    """
    if snapshot.get("version") not in SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported checkpoint version {snapshot.get('version')!r}")
    for data in snapshot["devices"]:
        record = record_from_dict(data)
        if record.device_id not in server.devices:
            server.devices.register(record)
    if "stats" in snapshot:
        server.stats = stats_from_dict(snapshot["stats"])
    if "seen_upload_ids" in snapshot:
        server._seen_upload_ids.update(snapshot["seen_upload_ids"])
    if "epoch" in snapshot:
        server.epoch = snapshot["epoch"]
    resumed = 0
    now = server._sim.now
    callbacks = data_callbacks or {}
    for entry in snapshot["tasks"]:
        end = entry["absolute_end"]
        if end <= now:
            continue
        remainder = resume_task_spec(entry)
        if remainder is None:
            continue
        callback = callbacks.get(entry["origin"])
        if callback is None:
            continue
        if remainder.task_id in server.tasks:
            continue  # already resumed (e.g. replayed from a WAL)
        server.submit_task(remainder, callback, resume=True)
        resumed += 1
    restore_pending(server, snapshot.get("pending", ()))
    return resumed
