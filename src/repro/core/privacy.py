"""Privacy filtering at the Sense-Aid server (paper §3.2 and §6).

"The crowdsensing data still goes through the Sense-Aid server, rather
than directly to the application server.  This is to maintain user
privacy by filtering out private information at Sense-Aid server" and
"No per-device data (such as, IMEI number) need to be made visible to
the crowdsensing application server."

Three mechanisms:

- **Payload scrubbing** — device identifiers and device-state fields
  (battery, energy) are stripped before anything reaches an
  application; only the salted hash the application needs for
  deduplication survives.
- **Location generalization** — a device's position is only ever
  reported at serving-tower granularity (the paper's design already
  works at this granularity; the helper makes the guarantee explicit).
- **k-anonymity gating** — optionally, readings for a request are
  buffered and released only once at least ``k`` distinct devices have
  contributed, so an application can never correlate a single upload
  with a single participant.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

# NOTE: this module deliberately avoids importing the server (which
# imports this module's policy type); data points are handled as frozen
# dataclasses via dataclasses.replace.

#: Payload keys that must never reach an application server.
SENSITIVE_FIELDS = (
    "device_id",
    "imei",
    "battery_pct",
    "energy_used_j",
    "position",
    "location",
)


@dataclass(frozen=True)
class PrivacyPolicy:
    """Configuration of the server-side privacy filter."""

    #: Release readings for a request only once this many distinct
    #: devices have contributed (1 = release immediately).
    k_anonymity: int = 1
    #: Salt mixed into the per-application pseudonym derivation, so two
    #: applications cannot join their datasets on device pseudonyms.
    pseudonym_salt: str = "sense-aid"

    def __post_init__(self) -> None:
        if self.k_anonymity < 1:
            raise ValueError("k_anonymity must be >= 1")


def scrub_payload(payload: dict) -> dict:
    """Return a copy of an upload payload with sensitive fields removed."""
    return {k: v for k, v in payload.items() if k not in SENSITIVE_FIELDS}


def generalize_location(tower_id: str) -> str:
    """The only location granularity an application ever sees."""
    return f"cell:{tower_id}"


class PrivacyFilter:
    """Buffers and releases sensed data under a privacy policy."""

    def __init__(self, policy: PrivacyPolicy) -> None:
        self.policy = policy
        self._buffers: Dict[str, List[Tuple[Any, Callable]]] = defaultdict(list)
        self._contributors: Dict[str, set] = defaultdict(set)
        self.released = 0
        self.suppressed = 0

    def pseudonym(self, device_hash: str, application: str) -> str:
        """A per-application pseudonym: stable within an application,
        unlinkable across applications."""
        material = f"{self.policy.pseudonym_salt}:{application}:{device_hash}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def offer(
        self,
        point: Any,
        application: str,
        deliver: Callable[[Any], None],
    ) -> None:
        """Submit one reading (a ``SensedDataPoint``); it is delivered
        (possibly later) once the k-anonymity bar for its request is
        met."""
        pseudonymized = dataclasses.replace(
            point, device_hash=self.pseudonym(point.device_hash, application)
        )
        key = point.request_id
        self._contributors[key].add(point.device_hash)
        if len(self._contributors[key]) >= self.policy.k_anonymity:
            for buffered, buffered_deliver in self._buffers.pop(key, []):
                self.released += 1
                buffered_deliver(buffered)
            self.released += 1
            deliver(pseudonymized)
        else:
            self._buffers[key].append((pseudonymized, deliver))

    def close_request(self, request_id: str) -> int:
        """A request's deadline passed: drop anything still below the
        k bar (suppression, never late release).  Returns the number of
        suppressed readings."""
        dropped = len(self._buffers.pop(request_id, []))
        self._contributors.pop(request_id, None)
        self.suppressed += dropped
        return dropped

    def pending(self, request_id: str) -> int:
        return len(self._buffers.get(request_id, []))
