"""Deadline-sorted request queues (the paper's Task Handler).

Two queues, both ordered by request deadline: the **run queue** holds
requests that are due for scheduling, the **wait queue** holds
requests that could not be satisfied (fewer qualified devices than the
required spatial density) and are periodically re-checked by
Algorithm 1's ``wait_check_thread``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterator, List, Optional

from repro.core.tasks import SensingRequest


class RequestQueue:
    """A min-heap of :class:`SensingRequest` keyed by deadline.

    Supports lazy removal by task id so ``delete_task()`` can retract
    all pending requests of a task in O(1) per request.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._heap: list = []
        self._counter = itertools.count()
        self._retracted_tasks: set = set()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, request: SensingRequest) -> None:
        if request.task.task_id in self._retracted_tasks:
            return
        heapq.heappush(
            self._heap, (request.deadline, next(self._counter), request)
        )
        self._live += 1

    def pop(self) -> Optional[SensingRequest]:
        """Remove and return the earliest-deadline live request."""
        while self._heap:
            _, _, request = heapq.heappop(self._heap)
            if request.task.task_id in self._retracted_tasks:
                continue
            self._live -= 1
            return request
        return None

    def peek(self) -> Optional[SensingRequest]:
        while self._heap:
            if self._heap[0][2].task.task_id in self._retracted_tasks:
                heapq.heappop(self._heap)
                continue
            return self._heap[0][2]
        return None

    def retract_task(self, task_id: int) -> int:
        """Drop every queued request belonging to one task.

        Returns how many live requests were retracted.  Future pushes
        of the task are also ignored, so an in-flight expansion of a
        deleted task cannot resurrect it.
        """
        self._retracted_tasks.add(task_id)
        dropped = sum(
            1 for _, _, r in self._heap if r.task.task_id == task_id
        )
        self._live -= dropped
        return dropped

    def allow_task(self, task_id: int) -> None:
        """Lift a retraction (a re-submitted task id)."""
        self._retracted_tasks.discard(task_id)

    def drain_satisfiable(
        self, is_satisfiable: Callable[[SensingRequest], bool]
    ) -> List[SensingRequest]:
        """Remove and return every live request that is satisfiable now.

        This is the wait-queue check: requests that remain
        unsatisfiable stay queued in deadline order.
        """
        satisfiable: List[SensingRequest] = []
        keep: List[SensingRequest] = []
        while True:
            request = self.pop()
            if request is None:
                break
            if is_satisfiable(request):
                satisfiable.append(request)
            else:
                keep.append(request)
        for request in keep:
            self.push(request)
        return satisfiable

    def drop_expired(self, now: float) -> List[SensingRequest]:
        """Remove and return every live request whose deadline passed."""
        expired: List[SensingRequest] = []
        while True:
            head = self.peek()
            if head is None or head.deadline > now:
                break
            popped = self.pop()
            assert popped is not None
            expired.append(popped)
        return expired

    def __iter__(self) -> Iterator[SensingRequest]:
        """Live requests in deadline order (non-destructive)."""
        live = [
            entry
            for entry in self._heap
            if entry[2].task.task_id not in self._retracted_tasks
        ]
        return (request for _, _, request in sorted(live))
