"""The four-factor, fairness-aware device selector (paper §3.2).

Each qualified device gets a score::

    Score(i) = α·E_i + β·U_i + γ·(100 − CBL_i) + φ·TTL_i

where ``E`` is crowdsensing energy already spent this epoch, ``U`` the
number of times the device was selected this epoch, ``CBL`` the current
battery level in percent, and ``TTL`` the seconds since the device's
most recent radio communication (a small TTL means the radio tail is
likely still open, so the upload will be nearly free).  Devices with
**lower** scores are preferred.

Hard cutoffs apply before scoring: a device is ineligible once it has
exhausted its user-specified energy budget, once its battery falls to
the user's critical level, after too many selections in the epoch, or
after being marked unresponsive.

Scoring comes in two shapes sharing one formula: the per-record object
path (:meth:`DeviceSelector.score`, used by the event-driven server)
and the batched array path (:func:`linear_score` /
:func:`eligibility_mask`, used by the struct-of-arrays device plane in
``repro.core.deviceplane``).  Both evaluate the identical expression in
the identical operation order, so a fleet scored element-wise over
numpy float64 arrays is bit-identical to the same fleet scored one
``DeviceRecord`` at a time — the equivalence the device-plane property
tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import SelectorWeights
from repro.core.datastores import DeviceRecord


def linear_score(
    weights: SelectorWeights,
    energy_used_j,
    times_selected,
    battery_pct,
    ttl_term,
    reliability,
):
    """The paper's linear score, element-wise (lower is better).

    Accepts Python scalars or numpy arrays — every term is an
    element-wise multiply/add, so the same call serves the per-record
    path and the batched struct-of-arrays path.  ``ttl_term`` must
    already be capped at ``weights.ttl_cap_s`` (see
    :meth:`DeviceSelector.score` for the capping rule).
    """
    return (
        weights.alpha * energy_used_j
        + weights.beta * times_selected
        + weights.gamma * (100.0 - battery_pct)
        + weights.phi * ttl_term
        + weights.rho * (1.0 - reliability)
    )


def eligibility_mask(
    *,
    responsive,
    energy_used_j,
    energy_budget_j,
    battery_pct,
    critical_battery_pct,
    times_selected,
    max_selections: Optional[int] = None,
    reliability=None,
    min_reliability: float = 0.0,
):
    """Element-wise hard cutoffs, mirroring :meth:`DeviceSelector.eligibility`.

    Returns a boolean (array) that is True exactly where every cutoff
    passes: responsive, within energy budget (``used < budget``), above
    the critical battery level (``pct > critical``), under the
    selection cap, and above the reliability floor.  Accepts scalars or
    numpy arrays; comparison directions match the object path exactly,
    including the boundary conditions (a device *at* its budget or
    *at* its critical level is ineligible).
    """
    mask = (
        responsive
        & (energy_used_j < energy_budget_j)
        & (battery_pct > critical_battery_pct)
    )
    if max_selections is not None:
        mask = mask & (times_selected < max_selections)
    if min_reliability > 0.0 and reliability is not None:
        mask = mask & (reliability > min_reliability)
    return mask


@dataclass(frozen=True)
class ScoredDevice:
    """A selector verdict for one candidate."""

    device_id: str
    score: float
    eligible: bool
    reason: str = ""


class DeviceSelector:
    """Scores and ranks qualified devices for a sensing request."""

    def __init__(
        self,
        weights: SelectorWeights,
        max_selections_per_epoch: Optional[int] = None,
        min_reliability: float = 0.0,
    ) -> None:
        if not 0.0 <= min_reliability < 1.0:
            raise ValueError("min_reliability must be in [0, 1)")
        self._weights = weights
        self._max_selections = max_selections_per_epoch
        self._min_reliability = min_reliability

    @property
    def weights(self) -> SelectorWeights:
        return self._weights

    def score(self, record: DeviceRecord, now: float) -> float:
        """The paper's linear scoring function (lower is better)."""
        w = self._weights
        ttl = record.ttl_s(now)
        # A device that has never communicated gets the worst TTL: its
        # radio is certainly idle, so an upload would pay promotion.
        ttl_term = w.ttl_cap_s if ttl is None else min(ttl, w.ttl_cap_s)
        return linear_score(
            w,
            record.energy_used_j,
            record.times_selected,
            record.battery_pct,
            ttl_term,
            record.reliability,
        )

    def eligibility(self, record: DeviceRecord) -> ScoredDevice:
        """Apply the hard cutoffs; score is NaN-free only if eligible."""
        if not record.responsive:
            return ScoredDevice(record.device_id, float("inf"), False, "unresponsive")
        if record.over_budget():
            return ScoredDevice(record.device_id, float("inf"), False, "over_budget")
        if record.below_critical_battery():
            return ScoredDevice(
                record.device_id, float("inf"), False, "critical_battery"
            )
        if (
            self._max_selections is not None
            and record.times_selected >= self._max_selections
        ):
            return ScoredDevice(
                record.device_id, float("inf"), False, "selection_cap"
            )
        if self._min_reliability > 0.0 and record.reliability <= self._min_reliability:
            return ScoredDevice(
                record.device_id, float("inf"), False, "unreliable"
            )
        return ScoredDevice(record.device_id, 0.0, True)

    def rank(
        self, candidates: Sequence[DeviceRecord], now: float
    ) -> List[ScoredDevice]:
        """Eligible candidates scored and sorted best-first.

        Ties break on device id so runs are deterministic.
        """
        scored = []
        for record in candidates:
            verdict = self.eligibility(record)
            if not verdict.eligible:
                continue
            scored.append(
                ScoredDevice(record.device_id, self.score(record, now), True)
            )
        scored.sort(key=lambda s: (s.score, s.device_id))
        return scored

    def select(
        self, candidates: Sequence[DeviceRecord], n: int, now: float
    ) -> Optional[List[str]]:
        """Choose the best ``n`` devices, or None if fewer are eligible.

        This implements the paper's satisfiability rule: if the
        request wants more devices than are available the request is
        *unsatisfiable* (the server then parks it on the wait queue).
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n!r}")
        ranked = self.rank(candidates, now)
        if len(ranked) < n:
            return None
        return [s.device_id for s in ranked[:n]]

    def ineligible(
        self, candidates: Sequence[DeviceRecord]
    ) -> List[ScoredDevice]:
        """The candidates the cutoffs rejected, with reasons (debugging)."""
        return [
            verdict
            for verdict in (self.eligibility(r) for r in candidates)
            if not verdict.eligible
        ]
