"""The Sense-Aid server (Algorithm 1).

Lifecycle of a task:

1. An application server submits a :class:`TaskSpec`; it lands in the
   task datastore and is expanded into deadline-stamped
   :class:`SensingRequest` s, each scheduled for issue at its sampling
   instant.
2. At issue time a request enters the **run queue** and the drain loop
   runs: the server computes the request's *qualified devices* (signed
   up, inside the task region, carrying the needed sensor, matching
   any device-type restriction), then asks the device selector for the
   best ``spatial_density`` of them.
3. If too few devices qualify, the request moves to the **wait queue**,
   re-checked periodically (``wait_check_thread``) until it becomes
   satisfiable or its deadline passes.
4. Selected devices receive assignments over the control plane (the
   paper measures and then explicitly excludes control-message energy,
   so the control plane costs no device energy here; see DESIGN.md).
   Devices upload sensor data over the cellular data path — that is
   where the energy model bites.
5. Arriving data is validated (region and value plausibility), folded
   into the device record, and forwarded to the originating
   application server.  Sense-Aid sits on the data path, so no raw
   device identity ever reaches the application server — it sees
   hashed identifiers only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.cellular.enodeb import TowerRegistry
from repro.cellular.network import CellularNetwork, DeliveryReceipt
from repro.cellular.packets import Message, MessageKind
from repro.core.config import ControlPlane, SenseAidConfig, ServerMode
from repro.core.overload import AdmissionController, RequestClass, ServerOverloadedError
from repro.core.privacy import PrivacyFilter, PrivacyPolicy, scrub_payload
from repro.core.datastores import DeviceDatastore, DeviceRecord, TaskDatastore
from repro.core.queues import RequestQueue
from repro.core.selector import DeviceSelector
from repro.core.tasks import SensingRequest, TaskSpec
from repro.devices.sensors import SensorType
from repro.sim.engine import Simulator
from repro.sim.processes import PeriodicProcess
from repro.sim.simlog import SimLogger
from repro.storage import StorageBackend, resolve_backend

#: Plausibility window for barometric readings (hPa); arriving values
#: outside it are counted as invalid data (one of the paper's two
#: disqualification causes).
PRESSURE_VALID_RANGE = (850.0, 1100.0)


@dataclass(frozen=True)
class Assignment:
    """A scheduling decision delivered to one device.

    ``epoch`` is the server incarnation that issued it; a client whose
    known epoch differs must resync before trusting new assignments.
    """

    request: SensingRequest
    device_id: str
    assigned_at: float
    epoch: int = 1

    @property
    def deadline(self) -> float:
        return self.request.deadline

    @property
    def sensor_type(self) -> SensorType:
        return self.request.task.sensor_type


@dataclass(frozen=True)
class SelectionEvent:
    """One execution of the device selector — the Fig. 9 unit."""

    time: float
    request_id: str
    task_id: int
    qualified: Tuple[str, ...]
    selected: Tuple[str, ...]


def selection_event_to_dict(event: SelectionEvent) -> dict:
    return {
        "time": event.time,
        "request_id": event.request_id,
        "task_id": event.task_id,
        "qualified": list(event.qualified),
        "selected": list(event.selected),
    }


def selection_event_from_dict(data: dict) -> SelectionEvent:
    return SelectionEvent(
        time=data["time"],
        request_id=data["request_id"],
        task_id=data["task_id"],
        qualified=tuple(data["qualified"]),
        selected=tuple(data["selected"]),
    )


@dataclass(frozen=True)
class SensedDataPoint:
    """What a crowdsensing application server receives.

    Identified by the device's hashed IMEI only — the privacy filter
    the paper describes.
    """

    request_id: str
    task_id: int
    sensor_type: SensorType
    value: float
    sensed_at: float
    delivered_at: float
    device_hash: str


@dataclass(frozen=True)
class UploadAck:
    """The server's verdict on one SENSOR_DATA delivery.

    ``accepted`` means the reading counts (now, or — for
    ``duplicate`` — when its first copy landed).  ``reason`` is one of
    ``accepted``, ``duplicate``, ``shed``, ``stale_epoch``,
    ``crashed``, ``invalid``, ``unassigned``, or ``untracked``.  A
    ``shed`` ack carries a Retry-After hint; a ``stale_epoch`` ack
    tells the client its view of the server incarnation is outdated
    and it must resync before retrying.
    """

    accepted: bool
    reason: str
    epoch: int
    retry_after_s: float = 0.0


@dataclass
class _RequestTracking:
    request: SensingRequest
    assigned: Set[str] = field(default_factory=set)
    received: Set[str] = field(default_factory=set)
    satisfied: bool = False


@dataclass
class ServerStats:
    """Aggregate outcome counters for one run."""

    requests_issued: int = 0
    requests_scheduled: int = 0
    requests_waitlisted: int = 0
    requests_expired: int = 0
    requests_satisfied: int = 0
    data_points: int = 0
    invalid_data: int = 0
    assignments: int = 0
    requests_lost_to_crash: int = 0
    reassignments: int = 0
    duplicate_uploads: int = 0
    uploads_shed: int = 0
    queries_shed: int = 0
    registrations_shed: int = 0
    stale_epoch_uploads: int = 0


DataCallback = Callable[[SensedDataPoint], None]
AssignmentHandler = Callable[[Assignment], None]


class SenseAidServer:
    """The edge middleware orchestrating crowdsensing devices."""

    #: Backend log namespace mirroring :attr:`selection_log`.
    SELECTION_LOG_NS = "selection_log"

    def __init__(
        self,
        sim: Simulator,
        registry: TowerRegistry,
        network: CellularNetwork,
        config: Optional[SenseAidConfig] = None,
        *,
        control_latency_s: float = 0.05,
        privacy_policy: Optional[PrivacyPolicy] = None,
        wal=None,
        storage: Optional[StorageBackend] = None,
    ) -> None:
        self._sim = sim
        self._registry = registry
        self._network = network
        # Share the simulation clock (refresh memoisation) and perf
        # probes with the registry's spatial index.
        self._registry.bind(sim)
        self._perf = sim.perf
        self.config = config if config is not None else SenseAidConfig()
        #: Pluggable storage backend (``REPRO_DATASTORE``); every server
        #: gets its own backend unless one is handed in explicitly.
        self.storage: StorageBackend = (
            storage if storage is not None else resolve_backend()
        )
        self.devices = DeviceDatastore(backend=self.storage)
        self.tasks = TaskDatastore(backend=self.storage)
        self.run_queue = RequestQueue("run")
        self.wait_queue = RequestQueue("wait")
        self.selector = DeviceSelector(
            self.config.weights,
            self.config.max_selections_per_epoch,
            self.config.min_reliability,
        )
        self.stats = ServerStats()
        self.selection_log: List[SelectionEvent] = []
        self._control_latency = control_latency_s
        self._assignment_handlers: Dict[str, AssignmentHandler] = {}
        self._data_callbacks: Dict[str, DataCallback] = {}
        self._tracking: Dict[str, _RequestTracking] = {}
        self._seen_upload_ids: Set[str] = set()
        self._crashed = False
        #: Server *incarnation* epoch, stamped on assignments and acks.
        #: Bumped by every cold :meth:`restart`; not to be confused
        #: with the *accounting* epochs of ``epoch_reset_period_s``.
        self.epoch = 1
        #: Effective start per task id — the anchor the request grid
        #: was expanded from, needed to resume with original numbering.
        self._task_starts: Dict[int, float] = {}
        #: Durable log (``repro.core.wal.DurableLog``-shaped, duck
        #: typed so core.server never imports the persistence stack).
        self._wal = wal
        # --- Incremental qualification (see docs/performance.md) ---
        #: Registration-membership change counter; together with the
        #: registry's version it keys the qualification caches, so
        #: candidate sets are invalidated by events, not recomputed
        #: per request.
        self._membership_version = 0
        #: Per-(sensor, device_type) candidate sets — the static half
        #: of qualification, maintained on register/deregister.
        self._eligible_by_filter: Dict[Tuple[SensorType, Optional[str]], Set[str]] = {}
        #: Per-task qualified-device memo for the current instant.
        self._qual_cache: Dict[int, Tuple[tuple, List[str]]] = {}
        self._qual_cache_time: Optional[float] = None
        #: Edge-view snapshot key: (now, registry version, membership).
        self._edge_view_key: Optional[tuple] = None
        #: Admission controller, present only when the config opts in.
        self.admission: Optional[AdmissionController] = (
            AdmissionController(sim, self.config.overload)
            if self.config.overload is not None
            else None
        )
        self.log = SimLogger(sim, "repro.core.server")
        self.privacy = (
            PrivacyFilter(privacy_policy) if privacy_policy is not None else None
        )
        self._wait_checker = PeriodicProcess(
            sim, self.config.wait_check_period_s, self._check_wait_queue
        )
        self._epoch_resetter: Optional[PeriodicProcess] = None
        if self.config.epoch_reset_period_s is not None:
            self._epoch_resetter = PeriodicProcess(
                sim, self.config.epoch_reset_period_s, self._reset_epoch
            )

    # ------------------------------------------------------------------
    # Mode / policy
    # ------------------------------------------------------------------

    @property
    def mode(self) -> ServerMode:
        return self.config.mode

    def crowdsensing_resets_tail(self) -> bool:
        """Basic resets the tail on upload; Complete does not."""
        return self.mode is ServerMode.BASIC

    def shutdown(self) -> None:
        """Stop background threads (wait-queue checker, epoch resets).

        Flushes — but does not close — the storage backend, so callers
        (experiments, benchmarks) can still read results afterwards.
        """
        self._wait_checker.stop()
        if self._epoch_resetter is not None:
            self._epoch_resetter.stop()
        self.flush_storage()

    def flush_storage(self) -> None:
        """Push the full working set down to the storage backend.

        Called at durability points (WAL checkpoints, shutdown); covers
        record mutations that bypassed the datastore write-through.
        """
        self.devices.flush()
        self.tasks.flush()
        self.storage.flush()

    # ------------------------------------------------------------------
    # Failure handling (the paper's fail-safe: path 1 survives a
    # Sense-Aid server crash)
    # ------------------------------------------------------------------

    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Take the server down.

        The eNodeBs immediately fall back to path 1 for all traffic
        (regular traffic is unaffected); orchestration stops and
        requests that come due while the server is down are lost.
        """
        if self._crashed:
            return
        self._crashed = True
        self.log.warning("server crashed; eNodeBs fail over to path 1")
        self._network.set_sense_aid_path_available(False)
        self._wait_checker.stop()

    def recover(self) -> None:
        """Bring the server back.

        Tasks live in the (persistent) task datastore and their
        remaining sampling instants were scheduled at submission, so
        they resume firing on their own; requests that came due during
        the outage stay lost.
        """
        if not self._crashed:
            return
        self._crashed = False
        self.log.warning("server recovered; resuming orchestration")
        self._network.set_sense_aid_path_available(True)
        self._wait_checker = PeriodicProcess(
            self._sim, self.config.wait_check_period_s, self._check_wait_queue
        )

    def restart(
        self, *, data_callbacks: Optional[Dict[str, DataCallback]] = None
    ) -> None:
        """Cold restart: the process is replaced, volatile state is gone.

        Unlike :meth:`recover` (a same-process resume where nothing was
        lost), a restart clears in-memory tracking and assignment
        handlers, bumps the incarnation :attr:`epoch`, and — when a
        write-ahead log is attached — rebuilds the durable state from
        the last checkpoint plus WAL replay.  Without a WAL the
        datastores are treated as persistent storage and survive as-is.
        Clients notice the epoch bump and resync; stale-epoch uploads
        are rejected until they do.

        ``data_callbacks`` maps task origins to delivery callbacks for
        tasks resumed from the WAL (defaults to the callbacks already
        registered under each task id).
        """
        if not self._crashed:
            self.crash()
        self._tracking.clear()
        self._assignment_handlers.clear()
        self.run_queue = RequestQueue("run")
        self.wait_queue = RequestQueue("wait")
        # The replacement process starts with cold qualification caches.
        self._eligible_by_filter.clear()
        self._qual_cache.clear()
        self._qual_cache_time = None
        self._edge_view_key = None
        self._membership_version += 1
        if self._wal is not None:
            self.devices = DeviceDatastore(backend=self.storage, fresh=True)
            self.tasks = TaskDatastore(backend=self.storage, fresh=True)
            self.stats = ServerStats()
            self._seen_upload_ids = set()
            self._task_starts = {}
            self._crashed = False  # recovery replays submit_task et al.
            self._wal.recover_into(self, data_callbacks=data_callbacks)
        else:
            # Datastores stand in for persistent storage; only the
            # incarnation number moves forward.
            self._crashed = False
            self.epoch += 1
        self.log.event("server_restart", epoch=self.epoch)
        self.log.warning("server restarted as epoch %d", self.epoch)
        self._network.set_sense_aid_path_available(True)
        self._wait_checker = PeriodicProcess(
            self._sim, self.config.wait_check_period_s, self._check_wait_queue
        )

    def _reset_epoch(self) -> None:
        """Start a new accounting epoch (selection/energy counters)."""
        self.devices.reset_epoch()

    # ------------------------------------------------------------------
    # Device-facing API (called by the client-side library)
    # ------------------------------------------------------------------

    def register_device(
        self, device, assignment_handler: AssignmentHandler
    ) -> DeviceRecord:
        """Sign a device up for crowdsensing campaigns.

        The record is seeded from the registration payload: hashed
        IMEI, energy budget, critical battery level, battery level, and
        the device's sensor complement.

        Raises :class:`ServerOverloadedError` when the admission
        controller sheds the registration (only ever at a completely
        full queue — registrations are the last class to go).
        """
        self._admit_or_raise(RequestClass.REGISTRATION)
        record = DeviceRecord(
            device_id=device.device_id,
            imei_hash=device.imei_hash,
            device_model=device.profile.model,
            energy_budget_j=device.preferences.energy_budget_j,
            critical_battery_pct=device.preferences.critical_battery_pct,
            battery_pct=device.battery.level_pct,
            registered_at=self._sim.now,
            sensors=frozenset(device.sensors.equipped()),
        )
        self.devices.register(record)
        self._registry.attach_device(device)
        self._assignment_handlers[device.device_id] = assignment_handler
        self._note_device_added(record)
        if self._wal is not None:
            self._wal.record_register(record)
        return record

    def resync_device(
        self, device, assignment_handler: AssignmentHandler
    ) -> DeviceRecord:
        """Re-establish a session after a server epoch change.

        The durable record (fairness counters included) survived the
        restart; what was lost is the volatile session — the live
        assignment handler.  A device the restarted server has no
        record of (e.g. it registered after the last durable event)
        falls back to a full registration.
        """
        if device.device_id not in self.devices:
            return self.register_device(device, assignment_handler)
        self._admit_or_raise(RequestClass.REGISTRATION)
        self._assignment_handlers[device.device_id] = assignment_handler
        try:
            self._registry.device(device.device_id)
        except KeyError:
            self._registry.attach_device(device)
        record = self.devices.record(device.device_id)
        self.devices.update_state(
            device.device_id,
            battery_pct=device.battery.level_pct,
            last_comm_time=self._sim.now,
        )
        return record

    def _admit_or_raise(self, request_class: RequestClass) -> None:
        if self.admission is None:
            return
        decision = self.admission.admit(request_class)
        if decision.admitted:
            return
        if request_class is RequestClass.REGISTRATION:
            self.stats.registrations_shed += 1
        raise ServerOverloadedError(decision)

    def deregister_device(self, device_id: str) -> None:
        self.devices.deregister(device_id)
        self._registry.detach_device(device_id)
        self._assignment_handlers.pop(device_id, None)
        self._note_device_removed(device_id)
        if self._wal is not None:
            self._wal.record_deregister(device_id)

    def _note_device_added(self, record: DeviceRecord) -> None:
        """Fold a new registration into the standing candidate sets."""
        for (sensor, device_type), eligible in self._eligible_by_filter.items():
            if sensor in record.sensors and (
                device_type is None or record.device_model == device_type
            ):
                eligible.add(record.device_id)
        self._membership_version += 1

    def _note_device_removed(self, device_id: str) -> None:
        for eligible in self._eligible_by_filter.values():
            eligible.discard(device_id)
        self._membership_version += 1

    def update_preferences(
        self,
        device_id: str,
        *,
        energy_budget_j: Optional[float] = None,
        critical_battery_pct: Optional[float] = None,
    ) -> None:
        record = self.devices.record(device_id)
        if energy_budget_j is not None:
            if energy_budget_j < 0:
                raise ValueError("energy budget must be non-negative")
            record.energy_budget_j = energy_budget_j
        if critical_battery_pct is not None:
            if not 0.0 <= critical_battery_pct <= 100.0:
                raise ValueError("critical battery level must be in [0, 100]")
            record.critical_battery_pct = critical_battery_pct

    def report_device_state(
        self, device_id: str, battery_pct: float, energy_used_j: float
    ) -> None:
        """Fold a control-plane state ping into the device record.

        State pings are the lowest-priority class: under overload they
        are silently shed (the client refreshes on its next ping).
        """
        if self.admission is not None:
            decision = self.admission.admit(RequestClass.QUERY)
            if not decision.admitted:
                self.stats.queries_shed += 1
                return
        if device_id not in self.devices:
            return
        self.devices.update_state(
            device_id,
            battery_pct=battery_pct,
            energy_used_j=energy_used_j,
        )

    # ------------------------------------------------------------------
    # Application-server-facing API
    # ------------------------------------------------------------------

    def submit_task(
        self, task: TaskSpec, data_callback: DataCallback, *, resume: bool = False
    ) -> int:
        """Accept a task; expand it into requests and schedule them.

        ``resume=True`` re-admits a task recovered from a checkpoint or
        WAL: the request grid keeps its original anchoring and sequence
        numbers, and only not-yet-issued requests are scheduled.
        """
        now = self._sim.now
        self.tasks.add(task)
        self._data_callbacks[str(task.task_id)] = data_callback
        self.run_queue.allow_task(task.task_id)
        self.wait_queue.allow_task(task.task_id)
        start = task.effective_start(now)
        if start < now and not resume:
            start = now
        self._task_starts[task.task_id] = start
        requests = task.expand_requests(
            now, self.config.one_shot_deadline_s, resume=resume
        )
        self.log.info(
            "task %d from %s %s: %d requests, density %d",
            task.task_id,
            task.origin,
            "resumed" if resume else "accepted",
            len(requests),
            task.spatial_density,
        )
        if self._wal is not None:
            self._wal.record_task_submitted(task, start, self._task_end(task, start))
        for request in requests:
            delay = max(0.0, request.issue_time - now)
            self._sim.schedule(delay, self._issue_request, request, self.epoch)
        return task.task_id

    def _task_end(self, task: TaskSpec, start: float) -> float:
        """Absolute end of a task's sensing window."""
        if task.end_time is not None:
            return task.end_time
        duration = task.duration_s()
        if duration is not None:
            return start + duration
        return start + self.config.one_shot_deadline_s

    def update_task(self, task_id: int, **changes) -> TaskSpec:
        """Update parameters of an existing task.

        Pending (not yet issued) requests of the old spec are
        retracted and the updated task is re-expanded from now.
        """
        now = self._sim.now
        old = self.tasks.get(task_id)
        updated = old.with_updates(**changes)
        self.tasks.replace(updated)
        self.run_queue.retract_task(task_id)
        self.wait_queue.retract_task(task_id)
        self.run_queue.allow_task(task_id)
        self.wait_queue.allow_task(task_id)
        start = max(updated.effective_start(now), now)
        self._task_starts[task_id] = start
        if self._wal is not None:
            self._wal.record_task_updated(
                updated, start, self._task_end(updated, start)
            )
        for request in updated.expand_requests(
            now, self.config.one_shot_deadline_s
        ):
            delay = max(0.0, request.issue_time - now)
            self._sim.schedule(delay, self._issue_request, request, self.epoch)
        return updated

    def delete_task(self, task_id: int) -> None:
        self.tasks.remove(task_id)
        self.run_queue.retract_task(task_id)
        self.wait_queue.retract_task(task_id)
        self._data_callbacks.pop(str(task_id), None)
        self._task_starts.pop(task_id, None)
        if self._wal is not None:
            self._wal.record_task_deleted(task_id)

    # ------------------------------------------------------------------
    # Scheduling core (Algorithm 1)
    # ------------------------------------------------------------------

    def qualified_devices(self, request: SensingRequest) -> List[str]:
        """Devices that can serve this request right now.

        Signed up, currently inside the task's circular region (the
        edge's location view), carrying the required sensor, and
        matching any device-type restriction.  Ordered nearest-first
        (distance to the task centre, then device id).

        Qualification is incremental: the sensor/device-type half is a
        standing per-filter candidate set maintained on registration
        events, the region half is a spatial-index bucket query, and
        the combined answer is memoised per (task, instant) — so
        wait-queue re-checks and same-deadline reassignments reuse one
        computation instead of re-deriving the set per request.
        """
        task = request.task
        now = self._sim.now
        if self._qual_cache_time != now:
            self._qual_cache.clear()
            self._qual_cache_time = now
        cache_key = (task, self._registry.version, self._membership_version)
        hit = self._qual_cache.get(task.task_id)
        if hit is not None and hit[0] == cache_key:
            self._perf.count("server.qualified_devices.memo_hit")
            return list(hit[1])
        with self._perf.measure("server.qualified_devices") as m:
            in_region = self._registry.devices_within(
                task.center, task.area_radius_m
            )
            eligible = self._eligible_for(task)
            qualified = [d for d in in_region if d in eligible]
            m.items = len(in_region)
        self._qual_cache[task.task_id] = (cache_key, list(qualified))
        return qualified

    def _eligible_for(self, task: TaskSpec) -> Set[str]:
        """The standing (sensor, device-type) candidate set for a task.

        Built once per distinct filter pair by a single datastore scan,
        then maintained incrementally by registration events — never
        recomputed per request.
        """
        key = (task.sensor_type, task.device_type)
        eligible = self._eligible_by_filter.get(key)
        if eligible is None:
            eligible = {
                record.device_id
                for record in self.devices.records()
                if task.sensor_type in record.sensors
                and (
                    task.device_type is None
                    or record.device_model == task.device_type
                )
            }
            self._eligible_by_filter[key] = eligible
        return eligible

    def _issue_request(
        self, request: SensingRequest, epoch: Optional[int] = None
    ) -> None:
        if epoch is not None and epoch != self.epoch:
            # Scheduled by a previous incarnation; a cold restart
            # re-expanded every surviving task under the new epoch, so
            # this event would double-issue the request.
            return
        if self._crashed:
            self.stats.requests_lost_to_crash += 1
            return
        if request.task.task_id not in self.tasks:
            return  # task deleted while the issue event was in flight
        if self.tasks.get(request.task.task_id) != request.task:
            return  # task updated since this request was expanded
        self.stats.requests_issued += 1
        self.run_queue.push(request)
        self._drain_run_queue()

    def _drain_run_queue(self) -> None:
        while True:
            request = self.run_queue.pop()
            if request is None:
                return
            self._schedule_request(request)

    def _schedule_request(self, request: SensingRequest) -> None:
        now = self._sim.now
        if request.deadline <= now:
            self.stats.requests_expired += 1
            return
        self._refresh_edge_view()
        qualified_ids = self.qualified_devices(request)
        records = [self.devices.record(d) for d in qualified_ids]
        needed = request.devices_needed
        if self.config.select_all_qualified:
            ranked = self.selector.rank(records, now)
            selected = [s.device_id for s in ranked] if len(ranked) >= needed else None
        else:
            selected = self.selector.select(records, needed, now)
        if selected is None:
            self.stats.requests_waitlisted += 1
            self.log.debug(
                "request %s unsatisfiable (%d qualified, %d needed); waitlisted",
                request.request_id,
                len(qualified_ids),
                needed,
            )
            self.wait_queue.push(request)
            return
        self.stats.requests_scheduled += 1
        self.log.debug(
            "request %s: selected %s of %d qualified",
            request.request_id,
            selected,
            len(qualified_ids),
        )
        event = SelectionEvent(
            time=now,
            request_id=request.request_id,
            task_id=request.task.task_id,
            qualified=tuple(qualified_ids),
            selected=tuple(selected),
        )
        self.selection_log.append(event)
        self.storage.append_log(
            self.SELECTION_LOG_NS,
            selection_event_to_dict(event),
            tag=str(request.task.task_id),
        )
        tracking = _RequestTracking(request=request)
        self._tracking[request.request_id] = tracking
        if self.privacy is not None:
            self._sim.schedule_at(
                request.deadline, self.privacy.close_request, request.request_id
            )
        if self.config.reassignment_enabled:
            check_at = request.deadline - self.config.reassign_margin_s
            if check_at > now:
                self._sim.schedule_at(
                    check_at, self._reassign_missing, request.request_id
                )
        for device_id in selected:
            self._assign(request, device_id, tracking)

    def _assign(
        self, request: SensingRequest, device_id: str, tracking: _RequestTracking
    ) -> None:
        self.devices.mark_selected(device_id)
        tracking.assigned.add(device_id)
        self.stats.assignments += 1
        if self._wal is not None:
            self._wal.record_assign(request, device_id)
        assignment = Assignment(
            request=request,
            device_id=device_id,
            assigned_at=self._sim.now,
            epoch=self.epoch,
        )
        handler = self._assignment_handlers.get(device_id)
        if handler is None:
            # Registered but its client vanished: treat as unresponsive.
            self.devices.mark_unresponsive(device_id)
            return
        if self.config.control_plane is ControlPlane.PUSH_PAGED:
            self._page_assignment(device_id, handler, assignment)
        else:
            self._sim.schedule(self._control_latency, handler, assignment)

    def _page_assignment(
        self, device_id: str, handler: AssignmentHandler, assignment: Assignment
    ) -> None:
        """Deliver an assignment by paging the device's radio.

        The downlink transfer is crowdsensing-caused radio activity, so
        it is charged to the crowdsensing account — the cost the pull
        design avoids.
        """
        from repro.cellular.packets import ASSIGNMENT_BYTES, TrafficCategory

        try:
            device = self._registry.device(device_id)
        except KeyError:
            self.devices.mark_unresponsive(device_id)
            return
        message = Message(
            kind=MessageKind.TASK_ASSIGNMENT,
            sender="sense-aid",
            size_bytes=ASSIGNMENT_BYTES,
            category=TrafficCategory.CROWDSENSING,
            payload={"request_id": assignment.request.request_id},
        )
        self._network.downlink(
            device,
            message,
            on_delivered=lambda msg, receipt: handler(assignment),
        )

    def _reassign_missing(self, request_id: str) -> None:
        """Shortly before a request's deadline, draft substitutes for
        any readings that have not arrived (lost in the network, or the
        device disappeared)."""
        if self._crashed:
            return
        tracking = self._tracking.get(request_id)
        if tracking is None:
            return
        if tracking.request.task.task_id not in self.tasks:
            return  # task deleted after scheduling; nothing to top up
        missing = len(tracking.assigned) - len(tracking.received)
        if missing <= 0:
            return
        # Strike the silent originals; repeat offenders get excluded.
        strikes_cap = self.config.unresponsive_strikes
        for device_id in tracking.assigned - tracking.received:
            if device_id not in self.devices:
                continue
            record = self.devices.record(device_id)
            record.missed_deliveries += 1
            if strikes_cap is not None and record.missed_deliveries >= strikes_cap:
                self.log.warning(
                    "device %s missed %d deliveries; marked unresponsive",
                    device_id,
                    record.missed_deliveries,
                )
                self.devices.mark_unresponsive(device_id)
        self._refresh_edge_view()
        candidates = [
            self.devices.record(d)
            for d in self.qualified_devices(tracking.request)
            if d not in tracking.assigned
        ]
        substitutes = self.selector.rank(candidates, self._sim.now)[:missing]
        if substitutes:
            self.log.info(
                "request %s short %d reading(s); drafting %s",
                request_id,
                missing,
                [s.device_id for s in substitutes],
            )
        for scored in substitutes:
            self.stats.reassignments += 1
            self._assign(tracking.request, scored.device_id, tracking)

    def _check_wait_queue(self) -> None:
        """Periodic wait-queue drain, batched per edge snapshot.

        One edge refresh covers the whole drain (the memo in
        :meth:`_refresh_edge_view` makes the per-request call free),
        and requests of the same task share one qualification via the
        per-instant memo — so a drain costs one snapshot plus one
        bucket query per distinct waiting task, not one fleet scan per
        request.  A spatial candidate count (an upper bound on the
        qualified set) rejects still-starved requests before any
        record is scored.
        """
        expired = self.wait_queue.drop_expired(self._sim.now)
        self.stats.requests_expired += len(expired)
        self._refresh_edge_view()

        def satisfiable(request: SensingRequest) -> bool:
            self._refresh_edge_view()
            task = request.task
            upper_bound = self._registry.candidate_count_within(
                task.center, task.area_radius_m
            )
            if upper_bound < request.devices_needed:
                self._perf.count("server.wait_check.early_reject")
                return False
            qualified = [
                self.devices.record(d) for d in self.qualified_devices(request)
            ]
            return (
                self.selector.select(
                    qualified, request.devices_needed, self._sim.now
                )
                is not None
            )

        with self._perf.measure("server.wait_check") as m:
            drained = self.wait_queue.drain_satisfiable(satisfiable)
            m.items = len(drained)
        for request in drained:
            self.run_queue.push(request)
        self._drain_run_queue()

    def _refresh_edge_view(self) -> None:
        """Pull the eNodeBs' current view: attachment + last-comm age.

        A third-party (non-carrier) deployment has no live RRC
        visibility, so its records keep whatever last-comm times the
        devices reported themselves.

        Memoised per (instant, registry version, membership version):
        positions are pure functions of simulation time and radio
        completions fire at ``PRIORITY_RADIO`` before any scheduling
        event at the same instant, so within one instant a second
        snapshot could only ever recompute identical values.
        """
        now = self._sim.now
        key = (now, self._registry.version, self._membership_version)
        if self._edge_view_key == key:
            self._perf.count("server.edge_refresh.memo_hit")
            return
        with self._perf.measure("server.edge_refresh") as m:
            self._registry.refresh_attachments()
            if self.config.carrier_integrated:
                synced = 0
                for device_id in self.devices.device_ids():
                    try:
                        age = self._registry.seconds_since_last_comm(device_id)
                    except KeyError:
                        continue
                    if age is not None:
                        self.devices.update_state(
                            device_id, last_comm_time=now - age
                        )
                    synced += 1
                m.items = synced
        # Attachment refresh does not bump the registry version, so the
        # key computed above is still current.
        self._edge_view_key = (now, self._registry.version, self._membership_version)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def receive_sensed_data(
        self, message: Message, receipt: DeliveryReceipt
    ) -> Optional[UploadAck]:
        """Network delivery callback for SENSOR_DATA uploads.

        Idempotent: each upload carries an attempt-independent
        ``upload_id`` (``device:request``), and only the first arrival
        is processed.  Network duplicates and client retries of an
        already-delivered attempt are acknowledged (delivery *is* the
        ack trigger on the client side) but counted exactly once, so
        the application server never double-counts a reading.

        Returns an :class:`UploadAck` describing the verdict; legacy
        callers may ignore it.  Uploads are subject to admission
        control (``shed`` acks carry a Retry-After hint) and to epoch
        validation — a payload stamped with a previous incarnation's
        epoch is rejected with ``stale_epoch`` so the client resyncs
        instead of trusting pre-restart assignments.
        """
        if message.kind is not MessageKind.SENSOR_DATA:
            return None
        if self._crashed:
            return UploadAck(accepted=False, reason="crashed", epoch=self.epoch)
        payload = message.payload
        device_id = payload["device_id"]
        request_id = payload["request_id"]
        if self.admission is not None:
            decision = self.admission.admit(RequestClass.UPLOAD)
            if not decision.admitted:
                self.stats.uploads_shed += 1
                return UploadAck(
                    accepted=False,
                    reason="shed",
                    epoch=self.epoch,
                    retry_after_s=decision.retry_after_s,
                )
        client_epoch = payload.get("epoch")
        if client_epoch is not None and client_epoch != self.epoch:
            self.stats.stale_epoch_uploads += 1
            self.log.event(
                "stale_epoch",
                device_id=device_id,
                request_id=request_id,
                client_epoch=client_epoch,
                server_epoch=self.epoch,
            )
            return UploadAck(accepted=False, reason="stale_epoch", epoch=self.epoch)
        explicit_id = payload.get("upload_id")
        upload_id = explicit_id or f"{device_id}:{request_id}"
        if explicit_id is not None and upload_id in self._seen_upload_ids:
            # A retransmission (or network duplicate) of an upload we
            # already accepted: short-circuit before any bookkeeping.
            # Only explicit ids — stamped by retry-capable clients and
            # identical across attempts — qualify for this fast path;
            # derived keys go through validation first, like always.
            self._note_duplicate(upload_id, device_id, request_id, payload)
            return UploadAck(accepted=True, reason="duplicate", epoch=self.epoch)
        if device_id in self.devices:
            self.devices.update_state(
                device_id,
                battery_pct=payload.get("battery_pct"),
                energy_used_j=payload.get("energy_used_j"),
                last_comm_time=receipt.radio_complete_at,
            )
        tracking = self._tracking.get(request_id)
        if tracking is None:
            return UploadAck(accepted=False, reason="untracked", epoch=self.epoch)
        if not self._validate_reading(tracking.request, device_id, payload):
            self.stats.invalid_data += 1
            if device_id in self.devices:
                self.devices.note_invalid_data(device_id)
            return UploadAck(accepted=False, reason="invalid", epoch=self.epoch)
        if device_id not in tracking.assigned:
            # Upload from a device this request never selected.
            return UploadAck(accepted=False, reason="unassigned", epoch=self.epoch)
        if device_id in tracking.received:
            self._note_duplicate(upload_id, device_id, request_id, payload)
            return UploadAck(accepted=True, reason="duplicate", epoch=self.epoch)
        tracking.received.add(device_id)
        # Only *accepted* readings burn their idempotency key: an
        # invalid or unassigned arrival above is not "the" upload, and
        # a later legitimate one must still be able to land.
        self._seen_upload_ids.add(upload_id)
        self.devices.note_valid_data(device_id)
        # A delivery proves the device is alive: clear its strikes and
        # restore eligibility.
        record = self.devices.record(device_id)
        record.missed_deliveries = 0
        if not record.responsive:
            self.devices.mark_responsive(device_id)
        self.stats.data_points += 1
        satisfied_now = (
            not tracking.satisfied
            and len(tracking.received) >= tracking.request.devices_needed
        )
        if satisfied_now:
            tracking.satisfied = True
            self.stats.requests_satisfied += 1
        if self._wal is not None:
            self._wal.record_upload_accept(
                upload_id, device_id, request_id, satisfied_now
            )
        self._forward_to_application(tracking.request, device_id, payload)
        return UploadAck(accepted=True, reason="accepted", epoch=self.epoch)

    def _note_duplicate(
        self, upload_id: str, device_id: str, request_id: str, payload: dict
    ) -> None:
        """Count and log a deduplicated upload (acked, never forwarded)."""
        self.stats.duplicate_uploads += 1
        self.log.event(
            "dedup",
            upload_id=upload_id,
            device_id=device_id,
            request_id=request_id,
            attempt=payload.get("attempt"),
        )

    def idempotency_audit(self) -> dict:
        """Cross-check accepted-upload accounting against burned keys.

        Every accepted reading burns exactly one fresh idempotency key,
        so ``accepted`` can never exceed ``burned_keys`` on an honest
        incarnation — a positive ``overcount`` means some reading was
        counted twice (the double-counted-reading soak invariant).
        Burned keys *can* exceed accepts (anti-entropy merges keys
        accepted elsewhere), so only the one-sided gap is a violation.
        """
        accepted = self.stats.data_points
        burned = len(self._seen_upload_ids)
        return {
            "accepted": accepted,
            "burned_keys": burned,
            "overcount": max(0, accepted - burned),
        }

    def _validate_reading(
        self, request: SensingRequest, device_id: str, payload: dict
    ) -> bool:
        if device_id not in self.devices:
            return False
        value = payload.get("value")
        if value is None:
            return False
        if request.task.sensor_type is SensorType.BAROMETER:
            low, high = PRESSURE_VALID_RANGE
            if not low <= value <= high:
                return False
        return True

    def _forward_to_application(
        self, request: SensingRequest, device_id: str, payload: dict
    ) -> None:
        callback = self._data_callbacks.get(str(request.task.task_id))
        if callback is None:
            return
        record = self.devices.record(device_id)
        safe_payload = scrub_payload(payload)
        point = SensedDataPoint(
            request_id=request.request_id,
            task_id=request.task.task_id,
            sensor_type=request.task.sensor_type,
            value=safe_payload["value"],
            sensed_at=safe_payload.get("sensed_at", self._sim.now),
            delivered_at=self._sim.now,
            device_hash=record.imei_hash,
        )
        if self.privacy is not None:
            self.privacy.offer(point, request.task.origin, callback)
        else:
            callback(point)

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------

    def selections_per_device(self) -> Dict[str, int]:
        """How many times each device was selected (Fig. 9 fairness)."""
        counts: Dict[str, int] = {}
        for event in self.selection_log:
            for device_id in event.selected:
                counts[device_id] = counts.get(device_id, 0) + 1
        return counts
