"""Self-healing sharded control plane for the Sense-Aid fleet.

ROADMAP item 1: one :class:`~repro.core.server.SenseAidServer` per
shard, with devices partitioned across shards by a consistent-hash
ring rather than by geography (geography stays the federation layer's
job; the ring shards *control-plane load*).  What this module adds on
top of a set of independent servers is everything needed to keep
campaigns running when one of them dies:

- :class:`ConsistentHashRing` — sha256-based ring with virtual nodes;
  each device id hashes to the shard that owns its control state.
- :class:`PhiAccrualFailureDetector` — Hayashibara-style suspicion
  over heartbeat inter-arrival times on the peer links.  Suspicion is
  a continuous value (phi); crossing a configurable threshold, not a
  hard timeout, triggers failover.
- Epoch-fenced failover — when a shard is declared dead, a standby
  peer *fences* the dead incumbent's write-ahead log (a zombie on the
  wrong side of a partition can keep serving devices but can no longer
  touch the log), replays the WAL into a fresh incarnation whose epoch
  is one past every recorded one, takes over the ring range, and
  redirects the shard's clients.  Stale assignments from the deposed
  incumbent carry the old epoch and are dropped client-side.
- Anti-entropy reconciliation — after partitions heal,
  :meth:`ShardedSenseAid.anti_entropy_diff` compares what clients know
  was acknowledged (and what deposed zombies burned) against the
  owning shard's idempotency keys; :meth:`ShardedSenseAid.repair`
  merges the difference, so an upload acknowledged by *any* incumbent
  is never re-counted later — the existing ``upload_id`` idempotency
  does the heavy lifting.
- Cross-shard task planning — a campaign whose region spans ring
  boundaries is split into per-shard subtasks with the spatial density
  apportioned to each shard's candidate population; results are
  re-tagged with the parent task id, and :class:`CrossShardTask`
  flags the window during which any participating shard is down
  (graceful degradation instead of silent gaps).

Determinism: the fleet draws no random numbers — ring placement is
sha256, heartbeats are a fixed-period process, and all bookkeeping
iterates insertion-ordered dicts — so a sharded run is bit-replayable
like everything else in the simulator.
"""

from __future__ import annotations

import hashlib
import math
import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.cellular.enodeb import ENodeB, TowerRegistry
from repro.cellular.network import CellularNetwork
from repro.core.config import SenseAidConfig
from repro.core.server import SenseAidServer, SensedDataPoint
from repro.core.tasks import TaskSpec
from repro.core.wal import DurableLog
from repro.environment.geometry import Point
from repro.sim.engine import Simulator
from repro.sim.processes import PeriodicProcess
from repro.sim.simlog import SimLogger

DataCallback = Callable[[SensedDataPoint], None]


# ----------------------------------------------------------------------
# Consistent-hash ring
# ----------------------------------------------------------------------


def _ring_hash(key: str) -> int:
    """Stable 64-bit position on the ring (sha256, *not* ``hash()`` —
    Python's string hash is salted per process and would re-shard the
    fleet on every run)."""
    return int.from_bytes(hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")


class ConsistentHashRing:
    """Consistent hashing with virtual nodes.

    ``vnodes`` virtual points per shard smooth the range sizes; adding
    or removing one shard moves only the keys in its ranges, which is
    what makes failover a *range handover* instead of a reshuffle.
    """

    def __init__(self, shard_ids: Sequence[str], *, vnodes: int = 64) -> None:
        ids = list(shard_ids)
        if not ids:
            raise ValueError("at least one shard is required")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids: {sorted(ids)}")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self._shard_ids = ids
        self._points: List[tuple] = sorted(
            (_ring_hash(f"{shard_id}#{v}"), shard_id)
            for shard_id in ids
            for v in range(vnodes)
        )

    @property
    def shard_ids(self) -> List[str]:
        return list(self._shard_ids)

    def _walk(self, key: str) -> Iterable[str]:
        """Shards in ring order starting at the key's position."""
        position = _ring_hash(key)
        points = self._points
        lo, hi = 0, len(points)
        while lo < hi:
            mid = (lo + hi) // 2
            if points[mid][0] < position:
                lo = mid + 1
            else:
                hi = mid
        for i in range(len(points)):
            yield points[(lo + i) % len(points)][1]

    def owner(self, key: str) -> str:
        """The shard owning a key (first point at or after its hash)."""
        return next(iter(self._walk(key)))

    def preference(self, key: str, n: Optional[int] = None) -> List[str]:
        """The first ``n`` *distinct* shards in ring order from the key.

        ``preference(key)[0]`` is the owner; the rest are the standby
        order a failover consults.
        """
        want = len(self._shard_ids) if n is None else n
        out: List[str] = []
        for shard_id in self._walk(key):
            if shard_id not in out:
                out.append(shard_id)
                if len(out) >= want:
                    break
        return out


# ----------------------------------------------------------------------
# Phi-accrual failure detection
# ----------------------------------------------------------------------


class PhiAccrualFailureDetector:
    """Suspicion level over heartbeat inter-arrival times.

    phi(t) = -log10(P(a heartbeat arrives later than t)), with the
    arrival model a normal fit over a sliding window of observed
    intervals.  ``min_std_s`` floors the fitted deviation so that the
    metronomic heartbeats of a simulator (zero variance) still yield a
    finite, tunable detection point instead of an instant trip.
    """

    PHI_CAP = 300.0

    def __init__(
        self,
        expected_interval_s: float,
        *,
        window: int = 64,
        min_std_s: Optional[float] = None,
    ) -> None:
        if expected_interval_s <= 0:
            raise ValueError("expected_interval_s must be positive")
        if window < 1:
            raise ValueError("window must be positive")
        self._expected = expected_interval_s
        self._window = window
        self._min_std = (
            min_std_s if min_std_s is not None else expected_interval_s / 10.0
        )
        if self._min_std <= 0:
            raise ValueError("min_std_s must be positive")
        self._intervals: List[float] = []
        self.last_heartbeat: Optional[float] = None
        self.heartbeats = 0

    def heartbeat(self, now: float) -> None:
        if self.last_heartbeat is not None:
            self._intervals.append(now - self.last_heartbeat)
            if len(self._intervals) > self._window:
                self._intervals.pop(0)
        self.last_heartbeat = now
        self.heartbeats += 1

    def phi(self, now: float) -> float:
        """Current suspicion; 0 before the first heartbeat is seen."""
        if self.last_heartbeat is None:
            return 0.0
        if self._intervals:
            mean = sum(self._intervals) / len(self._intervals)
            var = sum((x - mean) ** 2 for x in self._intervals) / len(self._intervals)
            std = max(math.sqrt(var), self._min_std)
        else:
            mean, std = self._expected, self._min_std
        z = (now - self.last_heartbeat - mean) / std
        p_later = 0.5 * math.erfc(z / math.sqrt(2.0))
        if p_later <= 10.0 ** (-self.PHI_CAP):
            return self.PHI_CAP
        return -math.log10(p_later)


# ----------------------------------------------------------------------
# Fleet topology
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardSpec:
    """One control-plane shard: an id, a site, and its radio towers.

    When ``towers`` is empty a single wide-coverage eNodeB is placed at
    the site — shards partition control state, not radio coverage, so
    the default tower simply has to hear the shard's devices wherever
    the ring puts them.
    """

    shard_id: str
    site: Point
    towers: Sequence[ENodeB] = ()
    coverage_radius_m: float = 5000.0

    def build_towers(self) -> List[ENodeB]:
        if self.towers:
            return list(self.towers)
        return [
            ENodeB(
                f"{self.shard_id}-t0",
                self.site,
                coverage_radius_m=self.coverage_radius_m,
            )
        ]


@dataclass
class FailoverRecord:
    """One completed range handover (for tests and the benchmark)."""

    shard_id: str
    standby_id: str
    detected_at: float
    completed_at: float
    detection_intervals: float
    old_epoch: int
    new_epoch: int
    was_partitioned: bool


class CrossShardTask:
    """Handle for a campaign split across ring boundaries.

    Collects re-tagged results from every per-shard subtask and tracks
    degradation: while any participating shard's incumbent is down
    (crashed and not yet failed over), delivered points are counted as
    degraded and :attr:`degraded` reads True — the application knows
    its qualification results are partial rather than silently short.
    """

    def __init__(
        self, fleet: "ShardedSenseAid", task: TaskSpec, callback: DataCallback
    ) -> None:
        self.task = task
        self._fleet = fleet
        self._callback = callback
        #: shard id -> subtask id
        self.subtasks: Dict[str, int] = {}
        #: shard id -> spatial density apportioned to it
        self.allocations: Dict[str, int] = {}
        self.points = 0
        self.degraded_points = 0
        self.points_by_shard: Dict[str, int] = {}

    @property
    def degraded(self) -> bool:
        """True while any shard serving a subtask is down."""
        return any(self._fleet.shard_down(sid) for sid in self.subtasks)

    def subtask_callback(self, shard_id: str) -> DataCallback:
        def deliver(point: SensedDataPoint) -> None:
            self._deliver(shard_id, point)

        return deliver

    def _deliver(self, shard_id: str, point: SensedDataPoint) -> None:
        retagged = SensedDataPoint(
            request_id=point.request_id,
            task_id=self.task.task_id,
            sensor_type=point.sensor_type,
            value=point.value,
            sensed_at=point.sensed_at,
            delivered_at=point.delivered_at,
            device_hash=point.device_hash,
        )
        self.points += 1
        self.points_by_shard[shard_id] = self.points_by_shard.get(shard_id, 0) + 1
        if self.degraded:
            self.degraded_points += 1
        self._callback(retagged)


# ----------------------------------------------------------------------
# The sharded fleet
# ----------------------------------------------------------------------


class ShardedSenseAid:
    """A ring-sharded fleet of Sense-Aid servers that heals itself.

    Wraps N :class:`~repro.core.server.SenseAidServer` instances (one
    per :class:`ShardSpec`, each with its own tower registry and —
    when ``wal_root`` is given — its own write-ahead log), a fixed
    ring over device ids, a heartbeat/phi failure detector per shard,
    and the failover + anti-entropy machinery described in the module
    docstring.
    """

    def __init__(
        self,
        sim: Simulator,
        network: CellularNetwork,
        shards: Sequence[ShardSpec],
        config: Optional[SenseAidConfig] = None,
        *,
        wal_root: Optional[str] = None,
        vnodes: int = 64,
        heartbeat_period_s: float = 5.0,
        phi_threshold: float = 8.0,
        detector_window: int = 64,
        min_std_s: Optional[float] = None,
        auto_failover: bool = True,
        redirect_latency_s: float = 0.05,
    ) -> None:
        specs = list(shards)
        if len(specs) < 2:
            raise ValueError("a sharded fleet needs at least 2 shards")
        ids = [s.shard_id for s in specs]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids: {sorted(ids)}")
        if heartbeat_period_s <= 0:
            raise ValueError("heartbeat_period_s must be positive")
        if phi_threshold <= 0:
            raise ValueError("phi_threshold must be positive")
        self._sim = sim
        self._network = network
        self._config = config if config is not None else SenseAidConfig()
        self._specs: Dict[str, ShardSpec] = {s.shard_id: s for s in specs}
        self._wal_root = wal_root
        self._heartbeat_period = heartbeat_period_s
        self._phi_threshold = phi_threshold
        self._detector_window = detector_window
        self._min_std = min_std_s
        self._auto_failover = auto_failover
        self._redirect_latency = redirect_latency_s
        self._ring = ConsistentHashRing(ids, vnodes=vnodes)
        self.log = SimLogger(sim, "repro.core.sharding")

        self._registries: Dict[str, TowerRegistry] = {}
        self._servers: Dict[str, SenseAidServer] = {}
        #: shard id -> host shard currently running its incumbent.
        self._hosted_by: Dict[str, str] = {}
        #: Generation counter per shard, so successive failovers get
        #: distinct WAL-sharing incarnations of the same directory.
        self._incarnations: Dict[str, int] = {}
        for spec in specs:
            registry = TowerRegistry(spec.build_towers(), perf=sim.perf)
            self._registries[spec.shard_id] = registry
            self._servers[spec.shard_id] = SenseAidServer(
                sim,
                registry,
                network,
                self._config,
                wal=self._make_wal(spec.shard_id),
            )
            self._hosted_by[spec.shard_id] = spec.shard_id
            self._incarnations[spec.shard_id] = 1

        #: Shards whose *peer links* are cut: the incumbent may still
        #: serve its devices (split brain) but emits no heartbeats.
        self._partitioned: Set[str] = set()
        #: Deposed incumbents, kept until anti-entropy retires them.
        self._deposed: Dict[str, SenseAidServer] = {}
        self._detectors: Dict[str, PhiAccrualFailureDetector] = {
            sid: self._make_detector() for sid in self._specs
        }
        self._clients: Dict[str, object] = {}
        self._home: Dict[str, str] = {}
        #: subtask id -> {"shard", "parent", "callback", "end_time"}
        self._task_meta: Dict[int, dict] = {}

        self.failovers = 0
        self.heartbeats_seen = 0
        self._fenced_writes_retired = 0
        self.failover_log: List[FailoverRecord] = []
        #: Every epoch transition a shard's serving instance underwent
        #: (failover or in-place recovery), as ``(shard_id, old, new)``.
        #: The soak invariant suite asserts monotonicity over this log.
        self.epoch_log: List[Tuple[str, int, int]] = []
        self._heartbeat_proc = PeriodicProcess(
            sim, heartbeat_period_s, self._heartbeat_tick
        )

    # -- construction helpers ------------------------------------------

    def _make_wal(self, shard_id: str) -> Optional[DurableLog]:
        if self._wal_root is None:
            return None
        return DurableLog(os.path.join(self._wal_root, shard_id))

    def _make_detector(self) -> PhiAccrualFailureDetector:
        return PhiAccrualFailureDetector(
            self._heartbeat_period,
            window=self._detector_window,
            min_std_s=self._min_std,
        )

    # -- topology queries ----------------------------------------------

    @property
    def ring(self) -> ConsistentHashRing:
        return self._ring

    def shard_ids(self) -> List[str]:
        return list(self._specs)

    def instance(self, shard_id: str) -> SenseAidServer:
        """The server currently serving a shard's ring range."""
        try:
            return self._servers[shard_id]
        except KeyError:
            raise KeyError(
                f"unknown shard {shard_id!r}; available: {sorted(self._specs)}"
            ) from None

    def hosted_by(self, shard_id: str) -> str:
        """Which peer currently hosts a shard's incumbent process."""
        self.instance(shard_id)
        return self._hosted_by[shard_id]

    def deposed_instance(self, shard_id: str) -> Optional[SenseAidServer]:
        return self._deposed.get(shard_id)

    def shard_down(self, shard_id: str) -> bool:
        """Down for *devices*: the serving incumbent has crashed and no
        successor has taken over yet.  A partitioned-but-alive zombie
        still serves its devices, so it does not count."""
        return self.instance(shard_id).crashed

    def home_shard(self, device_id: str) -> str:
        try:
            return self._home[device_id]
        except KeyError:
            raise KeyError(f"unknown device {device_id!r}") from None

    def devices_per_shard(self) -> Dict[str, int]:
        counts = {sid: 0 for sid in self._specs}
        for home in self._home.values():
            counts[home] += 1
        return counts

    def phi(self, shard_id: str) -> float:
        """Current suspicion level for a shard (test/inspection hook)."""
        return self._detectors[shard_id].phi(self._sim.now)

    def writes_fenced(self) -> int:
        """Total zombie writes dropped at the WAL across all deposed
        (and since-retired) incumbents."""
        total = self._fenced_writes_retired
        for server in self._deposed.values():
            if server._wal is not None:
                total += server._wal.writes_fenced
        return total

    # -- registration ---------------------------------------------------

    def register(self, client) -> str:
        """Register a client at its ring-home shard.

        If the home incumbent is down, the next live shard in ring
        preference order takes it (and stays its home — a later
        failover of the original owner does not steal devices back).
        Installs a home resolver so the client's retry path follows
        future range handovers on its own.
        """
        device_id = client.device.device_id
        shard_id = self._place(device_id)
        client.bind_server(self._servers[shard_id])
        client.register()
        client.set_home_resolver(lambda did=device_id: self._resolve_home(did))
        self._clients[device_id] = client
        self._home[device_id] = shard_id
        return shard_id

    def _place(self, device_id: str) -> str:
        for shard_id in self._ring.preference(device_id):
            if not self._servers[shard_id].crashed:
                return shard_id
        return self._ring.owner(device_id)

    def _resolve_home(self, device_id: str) -> Optional[SenseAidServer]:
        home = self._home.get(device_id)
        return self._servers.get(home) if home is not None else None

    def deregister(self, device_id: str) -> None:
        client = self._clients.pop(device_id, None)
        self._home.pop(device_id, None)
        if client is not None and client.registered:
            client.deregister()
        if client is not None:
            client.set_home_resolver(None)

    # -- heartbeats and failure detection -------------------------------

    def _emits_heartbeat(self, shard_id: str) -> bool:
        return (
            not self._servers[shard_id].crashed
            and shard_id not in self._partitioned
        )

    def _heartbeat_tick(self) -> None:
        now = self._sim.now
        for shard_id in self._specs:
            if self._emits_heartbeat(shard_id):
                self._detectors[shard_id].heartbeat(now)
                self.heartbeats_seen += 1
        if not self._auto_failover:
            return
        for shard_id in list(self._specs):
            detector = self._detectors[shard_id]
            if detector.phi(now) > self._phi_threshold:
                self.fail_over(shard_id)

    # -- fault surface (driven by repro.faults or tests) -----------------

    def crash_shard(self, shard_id: str) -> None:
        """Hard-kill a shard's incumbent (process death)."""
        self.instance(shard_id).crash()
        self.log.event("shard_crash", shard=shard_id)

    def partition_shard(self, shard_id: str) -> None:
        """Cut a shard's *peer links* only: heartbeats stop reaching
        the others while the incumbent keeps serving its devices — the
        split-brain case epoch fencing exists for."""
        self.instance(shard_id)
        self._partitioned.add(shard_id)
        self.log.event("shard_partition", shard=shard_id)

    def heal_shard(self, shard_id: str) -> None:
        """Restore a shard's peer links.

        If failover already replaced the incumbent, the old one stays
        deposed (a zombie) until :meth:`repair` reconciles and retires
        it; nothing here undoes a completed handover.
        """
        self.instance(shard_id)
        self._partitioned.discard(shard_id)
        self.log.event("shard_heal", shard=shard_id)

    def recover_shard(self, shard_id: str) -> None:
        """Operator-driven recovery of a crashed incumbent *in place*
        (no failover happened — e.g. detection is off or no standby
        was available): cold restart and client redirects."""
        server = self.instance(shard_id)
        if not server.crashed:
            return
        old_epoch = server.epoch
        server.restart()
        self.epoch_log.append((shard_id, old_epoch, server.epoch))
        self._detectors[shard_id] = self._make_detector()
        self._sim.schedule(
            self._redirect_latency, self._redirect_clients, shard_id, server
        )
        self.log.event("shard_recover", shard=shard_id, epoch=server.epoch)

    # -- epoch-fenced failover -------------------------------------------

    def _standby_for(self, shard_id: str) -> Optional[str]:
        for candidate in self._ring.preference(f"range:{shard_id}"):
            if candidate == shard_id:
                continue
            if self._servers[candidate].crashed:
                continue
            if candidate in self._partitioned:
                continue
            return candidate
        return None

    def fail_over(self, shard_id: str) -> bool:
        """Hand a shard's ring range to a standby-hosted successor.

        Fences the old incumbent's WAL (zombie writes are dropped from
        here on), builds a fresh server over the same registry and WAL
        directory, replays the log — which bumps the incarnation epoch
        past every recorded one, the fence stale assignments die on —
        and redirects the shard's clients after one control latency.
        Returns False when no live standby exists (the outage simply
        persists; a later tick retries).
        """
        old = self.instance(shard_id)
        standby = self._standby_for(shard_id)
        if standby is None:
            self.log.event("failover_no_standby", shard=shard_id)
            return False
        detector = self._detectors[shard_id]
        now = self._sim.now
        last_beat = (
            detector.last_heartbeat if detector.last_heartbeat is not None else now
        )
        was_partitioned = shard_id in self._partitioned
        old_epoch = old.epoch

        if old._wal is not None:
            old._wal.fence()
        replacement = SenseAidServer(
            self._sim,
            self._registries[shard_id],
            self._network,
            self._config,
            wal=self._make_wal(shard_id),
        )
        if replacement._wal is not None:
            # Preseed the delivery callbacks so WAL replay can resume
            # this shard's subtasks under their original task ids.
            for task_id, meta in self._task_meta.items():
                if meta["shard"] == shard_id:
                    replacement._data_callbacks[str(task_id)] = meta["callback"]
            replacement.restart()
        else:
            # No durable log: epoch fencing still works (count past the
            # deposed incumbent), but task state must be re-submitted.
            replacement.epoch = old_epoch
            replacement.restart()
            self._resubmit_tasks(shard_id, replacement)

        self._servers[shard_id] = replacement
        self._hosted_by[shard_id] = standby
        self._incarnations[shard_id] += 1
        self._deposed[shard_id] = old
        self._partitioned.discard(shard_id)
        self._detectors[shard_id] = self._make_detector()
        self.failovers += 1
        self.epoch_log.append((shard_id, old_epoch, replacement.epoch))
        self.failover_log.append(
            FailoverRecord(
                shard_id=shard_id,
                standby_id=standby,
                detected_at=now,
                completed_at=now,
                detection_intervals=(now - last_beat) / self._heartbeat_period,
                old_epoch=old_epoch,
                new_epoch=replacement.epoch,
                was_partitioned=was_partitioned,
            )
        )
        self.log.event(
            "shard_failover",
            shard=shard_id,
            standby=standby,
            old_epoch=old_epoch,
            new_epoch=replacement.epoch,
            was_partitioned=was_partitioned,
        )
        self._sim.schedule(
            self._redirect_latency, self._redirect_clients, shard_id, replacement
        )
        # The range has a live incumbent again; restore the shared
        # Sense-Aid path flag a crash cleared.
        self._network.set_sense_aid_path_available(True)
        return True

    def _resubmit_tasks(self, shard_id: str, replacement: SenseAidServer) -> None:
        now = self._sim.now
        for task_id, meta in list(self._task_meta.items()):
            if meta["shard"] != shard_id:
                continue
            old_task: TaskSpec = meta["task"]
            if meta["end_time"] - now <= 0 or old_task.sampling_period_s is None:
                continue
            remainder = TaskSpec(
                sensor_type=old_task.sensor_type,
                center=old_task.center,
                area_radius_m=old_task.area_radius_m,
                spatial_density=old_task.spatial_density,
                sampling_period_s=old_task.sampling_period_s,
                start_time=now,
                end_time=meta["end_time"],
                device_type=old_task.device_type,
                origin=old_task.origin,
            )
            replacement.submit_task(remainder, meta["callback"])
            parent: Optional[CrossShardTask] = meta.get("parent")
            if parent is not None:
                parent.subtasks[shard_id] = remainder.task_id
            del self._task_meta[task_id]
            self._task_meta[remainder.task_id] = {**meta, "task": remainder}

    def _redirect_clients(self, shard_id: str, server: SenseAidServer) -> None:
        for device_id, home in self._home.items():
            if home != shard_id:
                continue
            client = self._clients[device_id]
            if not client.powered:
                continue
            client.redirect(server)

    # -- cross-shard task planning ---------------------------------------

    def submit_task(self, task: TaskSpec, callback: DataCallback) -> CrossShardTask:
        """Split a campaign across the ring and fan it out.

        The spatial density is apportioned to shards in proportion to
        their candidate populations (registered, powered devices
        inside the task region carrying the sensor), largest-remainder
        rounded with deterministic shard-id tie-breaks, capped at each
        shard's candidate count while any shard has spare capacity.
        Shards whose incumbent is down get no allocation (their share
        goes to the survivors) — the surviving subtasks run at full
        strength and the handle flags degradation instead.
        """
        handle = CrossShardTask(self, task, callback)
        allocation = self._split_density(task)
        handle.allocations = dict(allocation)
        now = self._sim.now
        duration = task.duration_s()
        end_time = (
            task.end_time
            if task.end_time is not None
            else (now + duration if duration is not None else now)
        )
        for shard_id, density in allocation.items():
            if density <= 0:
                continue
            subtask = TaskSpec(
                sensor_type=task.sensor_type,
                center=task.center,
                area_radius_m=task.area_radius_m,
                spatial_density=density,
                sampling_period_s=task.sampling_period_s,
                sampling_duration_s=task.sampling_duration_s,
                start_time=task.start_time,
                end_time=task.end_time,
                device_type=task.device_type,
                origin=f"{task.origin}@{shard_id}",
            )
            subtask_callback = handle.subtask_callback(shard_id)
            self._servers[shard_id].submit_task(subtask, subtask_callback)
            handle.subtasks[shard_id] = subtask.task_id
            self._task_meta[subtask.task_id] = {
                "shard": shard_id,
                "parent": handle,
                "callback": subtask_callback,
                "task": subtask,
                "end_time": end_time,
            }
        self.log.event(
            "cross_shard_task",
            task_id=task.task_id,
            allocations=dict(allocation),
        )
        return handle

    def _candidates(self, task: TaskSpec) -> Dict[str, int]:
        counts = {sid: 0 for sid in self._specs}
        for device_id, client in self._clients.items():
            if not client.registered or not client.powered:
                continue
            device = client.device
            if not device.sensors.has(task.sensor_type):
                continue
            if device.position().distance_to(task.center) > task.area_radius_m:
                continue
            counts[self._home[device_id]] += 1
        return counts

    def _split_density(self, task: TaskSpec) -> Dict[str, int]:
        candidates = self._candidates(task)
        live = {
            sid: n
            for sid, n in candidates.items()
            if n > 0 and not self._servers[sid].crashed
        }
        total = sum(live.values())
        if total == 0:
            # Nobody qualifies right now: park the whole task on the
            # ring owner of its id so late-arriving devices serve it.
            owner = self._ring.owner(f"task:{task.task_id}")
            if self._servers[owner].crashed:
                standby = self._standby_for(owner)
                owner = standby if standby is not None else owner
            return {owner: task.spatial_density}
        density = task.spatial_density
        shares = {
            sid: (density * n) // total for sid, n in sorted(live.items())
        }
        remainders = sorted(
            live,
            key=lambda sid: ((density * live[sid]) % total, sid),
            reverse=True,
        )
        short = density - sum(shares.values())
        for sid in remainders[:short]:
            shares[sid] += 1
        # Cap at capacity while someone has headroom to take the rest.
        overflow = 0
        for sid in sorted(shares):
            if shares[sid] > live[sid]:
                overflow += shares[sid] - live[sid]
                shares[sid] = live[sid]
        for sid in sorted(shares):
            if overflow <= 0:
                break
            headroom = live[sid] - shares[sid]
            take = min(headroom, overflow)
            shares[sid] += take
            overflow -= take
        if overflow > 0:
            # Demand exceeds the whole fleet's candidates: the largest
            # shard absorbs the surplus and under-satisfies visibly.
            biggest = max(sorted(live), key=lambda sid: live[sid])
            shares[biggest] += overflow
        return shares

    # -- anti-entropy reconciliation -------------------------------------

    def anti_entropy_diff(self) -> Dict[str, List[str]]:
        """Upload ids acknowledged somewhere but unburned at the owner.

        Two divergence sources after a partition/failover: (a) a client
        holds an ack for an upload the owning incumbent never saw (a
        zombie acknowledged it after being fenced), and (b) a deposed
        incumbent burned keys its successor lacks.  Empty dict == the
        fleet is convergent.
        """
        missing: Dict[str, Set[str]] = {}
        for device_id, client in self._clients.items():
            home = self._home.get(device_id)
            if home is None:
                continue
            owner = self._servers[home]
            for upload_id in getattr(client, "acked_uploads", ()):
                if upload_id not in owner._seen_upload_ids:
                    missing.setdefault(home, set()).add(upload_id)
        for shard_id, zombie in self._deposed.items():
            current = self._servers[shard_id]
            for upload_id in zombie._seen_upload_ids:
                if upload_id not in current._seen_upload_ids:
                    missing.setdefault(shard_id, set()).add(upload_id)
        return {sid: sorted(keys) for sid, keys in sorted(missing.items())}

    def acked_upload_audit(self) -> Dict[str, List[str]]:
        """Client-held accepted acks unknown to the current home owner.

        Maps ``device_id -> sorted upload ids`` for every acknowledged
        upload whose idempotency key the device's current home
        incumbent does not hold.  After :meth:`repair` this must be
        empty: an acknowledged reading no live incumbent remembers is
        double-countable on retransmit — acknowledged-upload loss from
        the campaign's point of view.
        """
        lost: Dict[str, Set[str]] = {}
        for device_id, client in sorted(self._clients.items()):
            home = self._home.get(device_id)
            if home is None:
                continue
            owner = self._servers[home]
            for upload_id in getattr(client, "acked_uploads", ()):
                if upload_id not in owner._seen_upload_ids:
                    lost.setdefault(device_id, set()).add(upload_id)
        return {did: sorted(keys) for did, keys in sorted(lost.items())}

    def repair(self) -> dict:
        """Merge divergent idempotency state and retire zombies.

        Burned keys flow one way — into the current owner — so a
        reading acknowledged during the split can never be double
        counted after it.  Deposed incumbents are then shut down for
        good and every live shard checkpoints, making the merged keys
        durable.  Returns a report; ``clean`` means a follow-up diff
        found nothing.
        """
        diff = self.anti_entropy_diff()
        repaired = 0
        for shard_id, keys in diff.items():
            self._servers[shard_id]._seen_upload_ids.update(keys)
            repaired += len(keys)
        for shard_id, zombie in list(self._deposed.items()):
            zombie.shutdown()
            if zombie._wal is not None:
                self._fenced_writes_retired += zombie._wal.writes_fenced
            # Quiet retirement: mark dead without flapping the shared
            # network path flag a real crash() toggles.
            zombie._crashed = True
            del self._deposed[shard_id]
            self.log.event("zombie_retired", shard=shard_id)
        for shard_id, server in self._servers.items():
            if server._wal is not None and not server.crashed:
                server._wal.checkpoint(server)
        after = self.anti_entropy_diff()
        report = {
            "repaired_keys": repaired,
            "diff_before": diff,
            "diff_after": after,
            "clean": not after,
        }
        self.log.event(
            "anti_entropy_repair", repaired=repaired, clean=report["clean"]
        )
        return report

    # -- lifecycle -------------------------------------------------------

    def shutdown(self) -> None:
        self._heartbeat_proc.stop()
        for server in self._servers.values():
            server.shutdown()
        for zombie in self._deposed.values():
            zombie.shutdown()

    def total_data_points(self) -> int:
        return sum(s.stats.data_points for s in self._servers.values())


__all__ = [
    "ConsistentHashRing",
    "PhiAccrualFailureDetector",
    "ShardSpec",
    "FailoverRecord",
    "CrossShardTask",
    "ShardedSenseAid",
]
