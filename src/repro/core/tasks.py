"""Crowdsensing tasks and their expansion into sensing requests.

A :class:`TaskSpec` carries every parameter of the paper's Table 1:
sensor type, sampling period, sampling duration *or* absolute start and
end times, the circular target area (centre + radius), the minimum
spatial density, and an optional device-type restriction.

Per the paper's terminology, one *task* generates multiple *requests*:
"a task lasts for 60 minutes and requires sampling period of 10
minutes will generate 6 requests".  Each request has a deadline — the
next sampling instant — which is what orders the run/wait queues.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.devices.sensors import SensorType
from repro.environment.geometry import Point

_task_ids = itertools.count(1)


def reset_task_ids(start: int = 1) -> None:
    """Rewind the global task-id counter.

    Task ids are allocated from a process-global counter, so two
    otherwise-identical simulations run back to back in one process get
    different ``task_id``s (and hence different request ids).  Replay
    harnesses that compare structured event logs bit-for-bit must call
    this before each run.
    """
    global _task_ids
    _task_ids = itertools.count(start)


@dataclass(frozen=True)
class TaskSpec:
    """One crowdsensing task as submitted by an application server."""

    sensor_type: SensorType
    center: Point
    area_radius_m: float
    spatial_density: int
    sampling_period_s: Optional[float] = None
    sampling_duration_s: Optional[float] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    device_type: Optional[str] = None
    origin: str = "cas"
    task_id: int = field(default_factory=lambda: next(_task_ids))

    def __post_init__(self) -> None:
        if self.area_radius_m <= 0:
            raise ValueError(
                f"area_radius_m must be positive, got {self.area_radius_m!r}"
            )
        if self.spatial_density <= 0:
            raise ValueError(
                f"spatial_density must be positive, got {self.spatial_density!r}"
            )
        if self.sampling_period_s is not None and self.sampling_period_s <= 0:
            raise ValueError("sampling_period_s must be positive when given")
        duration_given = self.sampling_duration_s is not None
        window_given = self.start_time is not None and self.end_time is not None
        if duration_given and window_given:
            raise ValueError(
                "specify either sampling_duration_s or start/end times, not both"
            )
        if duration_given and self.sampling_duration_s <= 0:
            raise ValueError("sampling_duration_s must be positive when given")
        if window_given and self.end_time <= self.start_time:
            raise ValueError("end_time must be after start_time")
        if (self.start_time is None) != (self.end_time is None):
            raise ValueError("start_time and end_time must be given together")
        if self.sampling_period_s is not None and not (duration_given or window_given):
            raise ValueError(
                "a periodic task needs a sampling duration or a start/end window"
            )

    @property
    def one_shot(self) -> bool:
        """True for tasks with no period — a single supplemental sample."""
        return self.sampling_period_s is None

    def duration_s(self) -> Optional[float]:
        """Total sensing duration, however it was specified."""
        if self.sampling_duration_s is not None:
            return self.sampling_duration_s
        if self.start_time is not None and self.end_time is not None:
            return self.end_time - self.start_time
        return None

    def effective_start(self, now: float) -> float:
        """Table 1: when a duration is given, start time is *now*."""
        if self.start_time is not None:
            return self.start_time
        return now

    def request_count(self) -> int:
        """How many requests this task expands to."""
        if self.one_shot:
            return 1
        duration = self.duration_s()
        assert duration is not None  # enforced in __post_init__
        return max(1, int(duration // self.sampling_period_s))

    def expand_requests(
        self,
        now: float,
        one_shot_deadline_s: float = 120.0,
        *,
        resume: bool = False,
    ) -> List["SensingRequest"]:
        """Generate this task's requests, deadlines included.

        Request *i* of a periodic task is issued at
        ``start + i·period`` and must be satisfied by the next sampling
        instant.  A one-shot task yields a single request due
        ``one_shot_deadline_s`` after issue.

        With ``resume=True`` (crash recovery), the request grid stays
        anchored at the task's *original* effective start even if that
        is in the past, and only requests still issuable (``issue_time
        >= now``) are returned — so a restored task keeps its original
        sequence numbering and request ids instead of renumbering the
        remainder from zero.
        """
        start = self.effective_start(now)
        if start < now and not resume:
            start = now
        if self.one_shot:
            if resume and start < now:
                return []
            return [
                SensingRequest(
                    task=self,
                    sequence=0,
                    issue_time=start,
                    deadline=start + one_shot_deadline_s,
                )
            ]
        period = self.sampling_period_s
        requests = [
            SensingRequest(
                task=self,
                sequence=i,
                issue_time=start + i * period,
                deadline=start + (i + 1) * period,
            )
            for i in range(self.request_count())
        ]
        if resume:
            requests = [r for r in requests if r.issue_time >= now]
        return requests

    def with_updates(self, **changes) -> "TaskSpec":
        """A copy with updated parameters (same task_id) —
        the ``update_task_param()`` API."""
        changes.setdefault("task_id", self.task_id)
        return replace(self, **changes)


@dataclass(frozen=True)
class SensingRequest:
    """One sampling instant of a task; the schedulable unit."""

    task: TaskSpec
    sequence: int
    issue_time: float
    deadline: float

    def __post_init__(self) -> None:
        if self.deadline <= self.issue_time:
            raise ValueError("deadline must be after issue time")

    @property
    def request_id(self) -> str:
        return f"task{self.task.task_id}-r{self.sequence}"

    @property
    def devices_needed(self) -> int:
        return self.task.spatial_density

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SensingRequest {self.request_id} issue={self.issue_time:.0f} "
            f"deadline={self.deadline:.0f} n={self.devices_needed}>"
        )
