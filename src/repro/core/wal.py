"""Write-ahead logging and crash recovery for the Sense-Aid server.

A carrier-edge control plane cannot afford to lose registration,
assignment, or accounting state across a process crash.  This module
makes :class:`~repro.core.server.SenseAidServer` durable:

- :class:`WriteAheadLog` — the storage layer: an append-only JSON-lines
  log (``wal.jsonl``) plus an atomically-replaced checkpoint file
  (``checkpoint.json``).  ``compact()`` snapshots the full durable
  state and truncates the log, bounding replay time.
- :class:`DurableLog` — the server-facing recorder: one ``record_*``
  method per state-mutating control-plane event (register, deregister,
  task submit/update/delete, selection, upload accept + key burn), and
  :meth:`DurableLog.recover_into`, which rebuilds a restarted server
  from checkpoint + replay and bumps its incarnation epoch.
- :func:`durable_state` / :func:`check_recovery_invariants` — a
  projection of exactly the state recovery promises to preserve, and a
  checker proving a recovered server matches its pre-crash self: no
  lost or double-counted accepted uploads, no resurrected burned
  idempotency keys, monotone (exactly-reconstructed) fairness
  counters, and an epoch strictly one past the pre-crash incarnation.

The server never imports this module; it calls the duck-typed ``wal``
object handed to its constructor, so the dependency points one way
(wal → persistence → server).
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.persistence import (
    SUPPORTED_VERSIONS,
    atomic_write_json,
    checkpoint_server,
    record_from_dict,
    record_to_dict,
    restore_pending,
    resume_task_spec,
    stats_from_dict,
    task_to_dict,
)
from repro.core.server import SenseAidServer, SensedDataPoint, _RequestTracking
from repro.core.tasks import SensingRequest, TaskSpec

DataCallback = Callable[[SensedDataPoint], None]

CRC_FIELD = "crc32"


class CheckpointCorruptError(ValueError):
    """A checkpoint file failed its integrity check (torn write or
    bit rot): unparseable JSON or a CRC footer mismatch."""


def checkpoint_crc(snapshot: dict) -> int:
    """CRC32 over the canonical JSON encoding of the snapshot body
    (everything except the footer field itself)."""
    body = json.dumps(
        {k: v for k, v in snapshot.items() if k != CRC_FIELD}, sort_keys=True
    )
    return zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF


class WriteAheadLog:
    """Append-only JSON-lines log with an atomic checkpoint.

    Entries are sequence-numbered; the log holds only events *after*
    the checkpoint, because :meth:`compact` installs a new snapshot and
    truncates the log in that order — a crash between the two steps
    merely leaves entries that replay as no-ops against the newer
    snapshot's state.

    Checkpoints carry a CRC32 footer over their canonical JSON body.
    :meth:`compact` keeps the superseded checkpoint and the log entries
    it subsumed (``checkpoint.prev.json`` / ``wal.prev.jsonl``) so that
    a torn or bit-rotted current checkpoint degrades recovery to
    "previous checkpoint + full replay" instead of data loss — see
    :meth:`recovery_base`.
    """

    LOG_NAME = "wal.jsonl"
    CHECKPOINT_NAME = "checkpoint.json"
    PREV_LOG_NAME = "wal.prev.jsonl"
    PREV_CHECKPOINT_NAME = "checkpoint.prev.json"

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.log_path = os.path.join(directory, self.LOG_NAME)
        self.checkpoint_path = os.path.join(directory, self.CHECKPOINT_NAME)
        self.prev_log_path = os.path.join(directory, self.PREV_LOG_NAME)
        self.prev_checkpoint_path = os.path.join(
            directory, self.PREV_CHECKPOINT_NAME
        )
        self.fallbacks = 0
        self._seq = 0
        for path in (self.prev_log_path, self.log_path):
            for entry in self._entries_at(path):
                self._seq = max(self._seq, entry.get("seq", 0))

    def append(self, kind: str, **fields) -> dict:
        """Durably append one event; returns the stored entry."""
        self._seq += 1
        entry = {"seq": self._seq, "kind": kind, **fields}
        with open(self.log_path, "a", encoding="utf-8") as f:
            f.write(json.dumps(entry, sort_keys=True) + "\n")
            f.flush()
            os.fsync(f.fileno())
        return entry

    def entries(self) -> List[dict]:
        """All intact entries, in append order.

        A torn final line (crash mid-append) is silently dropped, as is
        everything after it — a hole in the sequence means nothing past
        it can be trusted.
        """
        return self._entries_at(self.log_path)

    @staticmethod
    def _entries_at(path: str) -> List[dict]:
        if not os.path.exists(path):
            return []
        out: List[dict] = []
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    break
                out.append(entry)
        return out

    def load_checkpoint(self) -> Optional[dict]:
        return self._load_checkpoint_at(self.checkpoint_path)

    @staticmethod
    def _load_checkpoint_at(path: str) -> Optional[dict]:
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as f:
                snapshot = json.load(f)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointCorruptError(f"unparseable checkpoint {path}: {exc}")
        if not isinstance(snapshot, dict):
            raise CheckpointCorruptError(f"checkpoint {path} is not an object")
        if CRC_FIELD in snapshot and snapshot[CRC_FIELD] != checkpoint_crc(snapshot):
            raise CheckpointCorruptError(
                f"checkpoint {path} CRC mismatch: stored={snapshot[CRC_FIELD]} "
                f"computed={checkpoint_crc(snapshot)}"
            )
        if snapshot.get("version") not in SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported checkpoint version {snapshot.get('version')!r}"
            )
        return snapshot

    def recovery_base(self) -> Tuple[Optional[dict], List[dict], bool]:
        """The (checkpoint, entries, degraded) triple recovery starts from.

        Normally that is the current checkpoint plus the live log.  If
        the current checkpoint fails its integrity check, fall back to
        the previous checkpoint plus a replay of *both* retained logs —
        every durable event since the previous checkpoint is in
        ``wal.prev.jsonl`` + ``wal.jsonl``, so the rebuilt state is
        identical, just reached the slow way.  ``degraded`` reports
        that the fallback was taken (also counted in ``fallbacks``).
        """
        try:
            return self.load_checkpoint(), self.entries(), False
        except CheckpointCorruptError:
            self.fallbacks += 1
            try:
                snapshot = self._load_checkpoint_at(self.prev_checkpoint_path)
            except CheckpointCorruptError:
                snapshot = None
            entries = self._entries_at(self.prev_log_path) + self.entries()
            return snapshot, entries, True

    def compact(self, snapshot: dict) -> None:
        """Install ``snapshot`` as the recovery base and truncate the log.

        Order of operations preserves a valid recovery base at every
        crash point: first the superseded checkpoint and the log
        entries it subsumes are retained as ``*.prev`` files, then the
        new checkpoint (stamped with its CRC footer) replaces
        atomically, and only then is the log truncated.
        """
        snapshot = dict(snapshot)
        snapshot[CRC_FIELD] = checkpoint_crc(snapshot)
        self._retain_previous()
        atomic_write_json(self.checkpoint_path, snapshot)
        with open(self.log_path, "w", encoding="utf-8") as f:
            f.flush()
            os.fsync(f.fileno())

    def _retain_previous(self) -> None:
        """Keep the current checkpoint + log as the one-step-back base."""
        self._copy_atomic(self.checkpoint_path, self.prev_checkpoint_path)
        self._copy_atomic(self.log_path, self.prev_log_path)

    @staticmethod
    def _copy_atomic(src: str, dst: str) -> None:
        if not os.path.exists(src):
            if os.path.exists(dst):
                os.remove(dst)
            return
        with open(src, "rb") as f:
            payload = f.read()
        tmp = dst + ".tmp"
        with open(tmp, "wb") as f:
            f.write(payload)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, dst)


class DurableLog:
    """Records a server's state-mutating events and replays them.

    Attach one via ``SenseAidServer(..., wal=DurableLog(directory))``;
    the server calls the ``record_*`` hooks at each durable transition.
    Call :meth:`checkpoint` periodically to bound the log, and rely on
    :meth:`~repro.core.server.SenseAidServer.restart` (which calls
    :meth:`recover_into`) after a crash.
    """

    def __init__(self, directory: str) -> None:
        self.wal = WriteAheadLog(directory)
        self.fenced = False
        self.writes_fenced = 0

    # ------------------------------------------------------------------
    # Fencing
    # ------------------------------------------------------------------

    def fence(self) -> None:
        """Revoke this writer's lease on the log.

        Called when a failover hands the shard's range (and WAL
        directory) to a new incumbent.  The deposed process may still
        be running on the wrong side of a partition; from here on its
        ``record_*`` calls are dropped and counted rather than written,
        so a zombie can never corrupt the log its successor recovered
        from.  A durable ``fenced`` marker is appended first so the
        hand-off itself is visible in the history (replay skips it as
        an unknown kind on older readers).
        """
        if self.fenced:
            return
        self.wal.append("fenced", epoch_fenced_at=self.wal._seq)
        self.fenced = True

    def _append(self, kind: str, **fields) -> Optional[dict]:
        if self.fenced:
            self.writes_fenced += 1
            return None
        return self.wal.append(kind, **fields)

    # ------------------------------------------------------------------
    # Recording hooks (called by the server)
    # ------------------------------------------------------------------

    def record_register(self, record) -> None:
        self._append("register", record=record_to_dict(record))

    def record_deregister(self, device_id: str) -> None:
        self._append("deregister", device_id=device_id)

    def record_task_submitted(
        self, task: TaskSpec, effective_start: float, absolute_end: float
    ) -> None:
        self._append(
            "task_submitted",
            task=task_to_dict(task),
            effective_start=effective_start,
            absolute_end=absolute_end,
        )

    def record_task_updated(
        self, task: TaskSpec, effective_start: float, absolute_end: float
    ) -> None:
        self._append(
            "task_updated",
            task=task_to_dict(task),
            effective_start=effective_start,
            absolute_end=absolute_end,
        )

    def record_task_deleted(self, task_id: int) -> None:
        self._append("task_deleted", task_id=task_id)

    def record_assign(self, request: SensingRequest, device_id: str) -> None:
        self._append(
            "assign",
            request_id=request.request_id,
            task_id=request.task.task_id,
            sequence=request.sequence,
            issue_time=request.issue_time,
            deadline=request.deadline,
            device_id=device_id,
        )

    def record_upload_accept(
        self, upload_id: str, device_id: str, request_id: str, satisfied: bool
    ) -> None:
        self._append(
            "upload_accept",
            upload_id=upload_id,
            device_id=device_id,
            request_id=request_id,
            satisfied=satisfied,
        )

    def record_restart(self, epoch: int) -> None:
        self._append("restart", epoch=epoch)

    # ------------------------------------------------------------------
    # Checkpointing / recovery
    # ------------------------------------------------------------------

    def checkpoint(self, server: SenseAidServer) -> None:
        """Snapshot the server and truncate the log behind it."""
        if self.fenced:
            self.writes_fenced += 1
            return
        # A WAL checkpoint is a durability point for the storage
        # backend too: push the live working set down before compacting.
        server.flush_storage()
        self.wal.compact(checkpoint_server(server))

    def recover_into(
        self,
        server: SenseAidServer,
        data_callbacks: Optional[Dict[str, DataCallback]] = None,
    ) -> None:
        """Rebuild a (cleared) server from checkpoint + WAL replay.

        Called by ``SenseAidServer.restart()`` with the datastores,
        tracking, and stats already reset.  Resolves the delivery
        callback for each resumed task from ``data_callbacks`` (keyed
        by task origin) or, failing that, from whatever callback the
        application re-registered under the task id.  Ends by bumping
        the incarnation epoch past every recorded one and compacting,
        so the new epoch is itself durable.
        """
        overrides = dict(data_callbacks or {})
        fallback = dict(server._data_callbacks)
        snapshot, entries, degraded = self.wal.recovery_base()
        if degraded:
            server.log.event(
                "wal_checkpoint_corrupt",
                directory=self.wal.directory,
                fallbacks=self.wal.fallbacks,
            )
        recovered_epoch = snapshot.get("epoch", 1) if snapshot else 1
        for entry in entries:
            if entry["kind"] == "restart":
                recovered_epoch = max(recovered_epoch, entry["epoch"])
        # Bump *before* replaying so resumed tasks schedule their issue
        # events under the new incarnation (the server drops events
        # stamped with a stale epoch).
        server.epoch = recovered_epoch + 1
        wal_ref = server._wal
        server._wal = None  # replay must not re-log itself
        try:
            if snapshot is not None:
                self._apply_checkpoint(server, snapshot, overrides, fallback)
            for entry in entries:
                self._replay_entry(server, entry, overrides, fallback)
        finally:
            server._wal = wal_ref
        self.record_restart(server.epoch)
        self.checkpoint(server)

    def _resolve_callback(
        self,
        server: SenseAidServer,
        task_id: int,
        origin: str,
        overrides: Dict[str, DataCallback],
        fallback: Dict[str, DataCallback],
    ) -> Optional[DataCallback]:
        return (
            overrides.get(origin)
            or fallback.get(str(task_id))
            or server._data_callbacks.get(str(task_id))
        )

    def _apply_checkpoint(
        self,
        server: SenseAidServer,
        snapshot: dict,
        overrides: Dict[str, DataCallback],
        fallback: Dict[str, DataCallback],
    ) -> None:
        now = server._sim.now
        for data in snapshot["devices"]:
            record = record_from_dict(data)
            if record.device_id not in server.devices:
                server.devices.register(record)
        if "stats" in snapshot:
            server.stats = stats_from_dict(snapshot["stats"])
        server._seen_upload_ids.update(snapshot.get("seen_upload_ids", ()))
        for entry in snapshot["tasks"]:
            if entry.get("absolute_end", now) <= now:
                continue
            remainder = resume_task_spec(entry)
            if remainder is None or remainder.task_id in server.tasks:
                continue
            callback = self._resolve_callback(
                server, remainder.task_id, entry["origin"], overrides, fallback
            )
            if callback is None:
                continue
            server.submit_task(remainder, callback, resume=True)
        restore_pending(server, snapshot.get("pending", ()))

    def _replay_entry(
        self,
        server: SenseAidServer,
        entry: dict,
        overrides: Dict[str, DataCallback],
        fallback: Dict[str, DataCallback],
    ) -> None:
        kind = entry["kind"]
        now = server._sim.now
        if kind == "register":
            record = record_from_dict(entry["record"])
            if record.device_id not in server.devices:
                server.devices.register(record)
        elif kind == "deregister":
            if entry["device_id"] in server.devices:
                server.devices.deregister(entry["device_id"])
        elif kind in ("task_submitted", "task_updated"):
            task_dict = entry["task"]
            task_id = task_dict["task_id"]
            callback = self._resolve_callback(
                server, task_id, task_dict["origin"], overrides, fallback
            )
            if task_id in server.tasks:
                server.delete_task(task_id)
            if entry["absolute_end"] <= now:
                return
            remainder = resume_task_spec(
                {
                    **task_dict,
                    "effective_start": entry["effective_start"],
                    "absolute_end": entry["absolute_end"],
                }
            )
            if remainder is None or callback is None:
                return
            server.submit_task(remainder, callback, resume=True)
        elif kind == "task_deleted":
            if entry["task_id"] in server.tasks:
                server.delete_task(entry["task_id"])
        elif kind == "assign":
            device_id = entry["device_id"]
            if device_id in server.devices:
                # Fairness counters are durable: re-count the selection.
                server.devices.record(device_id).times_selected += 1
            task_id = entry["task_id"]
            if task_id in server.tasks and entry["deadline"] > now:
                tracking = server._tracking.get(entry["request_id"])
                if tracking is None:
                    request = SensingRequest(
                        task=server.tasks.get(task_id),
                        sequence=entry["sequence"],
                        issue_time=entry["issue_time"],
                        deadline=entry["deadline"],
                    )
                    tracking = _RequestTracking(request=request)
                    server._tracking[request.request_id] = tracking
                tracking.assigned.add(device_id)
        elif kind == "upload_accept":
            server._seen_upload_ids.add(entry["upload_id"])
            server.stats.data_points += 1
            if entry["satisfied"]:
                server.stats.requests_satisfied += 1
            tracking = server._tracking.get(entry["request_id"])
            if tracking is not None:
                tracking.received.add(entry["device_id"])
                if entry["satisfied"]:
                    tracking.satisfied = True
        elif kind == "restart":
            server.epoch = max(server.epoch, entry["epoch"])
        # Unknown kinds are skipped: a newer writer's entries must not
        # crash an older reader mid-recovery.


# ----------------------------------------------------------------------
# Recovery invariants
# ----------------------------------------------------------------------


def _live_task_ids(server: SenseAidServer) -> List[int]:
    """Tasks whose sensing window is still open.

    Expired tasks linger in the datastore on a live server but are not
    resumed by recovery, so the durable projection only counts open
    ones — the state both sides promise to agree on.
    """
    now = server._sim.now
    live: List[int] = []
    for task in server.tasks.all_tasks():
        if task.one_shot:
            # One-shot supplemental samples are fire-and-forget: their
            # single request is not re-issued by recovery, so they are
            # not part of the durable contract.
            continue
        start = server._task_starts.get(
            task.task_id, task.start_time if task.start_time is not None else 0.0
        )
        if task.end_time is not None:
            end = task.end_time
        else:
            duration = task.duration_s()
            end = (
                start + duration
                if duration is not None
                else start + server.config.one_shot_deadline_s
            )
        if end > now:
            live.append(task.task_id)
    return sorted(live)


def durable_state(server: SenseAidServer) -> dict:
    """Project exactly the state crash recovery promises to preserve.

    Volatile per-device telemetry (battery, energy, last-comm,
    responsiveness, reliability) and scheduler-side counters are
    excluded by design; what remains — identities, fairness counters,
    open tasks, burned idempotency keys, accepted-upload accounting,
    and in-flight assignment bookkeeping — must survive a crash
    bit-for-bit.
    """
    now = server._sim.now
    live_tasks = set(_live_task_ids(server))
    assignments = {}
    for request_id, tracking in server._tracking.items():
        if tracking.request.task.task_id not in live_tasks:
            continue
        if tracking.request.deadline <= now:
            continue
        assignments[request_id] = {
            "assigned": sorted(tracking.assigned),
            "received": sorted(tracking.received),
            "satisfied": tracking.satisfied,
        }
    devices = {
        record.device_id: {
            "imei_hash": record.imei_hash,
            "device_model": record.device_model,
            "times_selected": record.times_selected,
            "registered_at": record.registered_at,
        }
        for record in server.devices.records()
    }
    return {
        "epoch": server.epoch,
        "devices": devices,
        "tasks": sorted(live_tasks),
        "burned_upload_ids": sorted(server._seen_upload_ids),
        "accepted_uploads": server.stats.data_points,
        "requests_satisfied": server.stats.requests_satisfied,
        "assignments": assignments,
    }


class RecoveryViolation(str):
    """One recovery-invariant violation, structured *and* stringly.

    Subclasses ``str`` (the value is the human-readable message) so
    every pre-existing caller — ``"\\n".join(violations)``, substring
    asserts, ``== []`` — keeps working, while new callers (the soak
    invariant suite) assert on :attr:`code` and :attr:`keys` instead
    of parsing prose.
    """

    code: str
    keys: Tuple[str, ...]

    def __new__(
        cls, code: str, message: str, keys: Tuple[str, ...] = ()
    ) -> "RecoveryViolation":
        obj = super().__new__(cls, message)
        obj.code = code
        obj.keys = tuple(str(k) for k in keys)
        return obj

    @property
    def message(self) -> str:
        return str(self)

    def as_dict(self) -> dict:
        return {"code": self.code, "message": str(self), "keys": list(self.keys)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecoveryViolation({self.code!r}, {str(self)!r}, {self.keys!r})"


def check_recovery_invariants(pre: dict, post: dict) -> List[RecoveryViolation]:
    """Compare pre-crash and post-recovery durable state.

    Returns a list of :class:`RecoveryViolation` records (each one a
    ``str`` carrying a stable ``code`` and the offending ``keys``);
    empty means recovery was exact.  The checks encode the durability
    contract:

    - accepted uploads are neither lost nor double-counted;
    - burned idempotency keys are never resurrected (and none appear
      from nowhere);
    - fairness counters (``times_selected``) and device identities
      match exactly — in particular they are monotone w.r.t. the last
      checkpoint, since replay can only re-add recorded selections;
    - open tasks and in-flight assignment bookkeeping match;
    - the recovered server runs exactly one incarnation ahead.
    """
    violations: List[RecoveryViolation] = []
    if post["accepted_uploads"] != pre["accepted_uploads"]:
        violations.append(
            RecoveryViolation(
                "UPLOADS_DIVERGED",
                f"accepted uploads diverged: pre={pre['accepted_uploads']} "
                f"post={post['accepted_uploads']}",
            )
        )
    if post["requests_satisfied"] != pre["requests_satisfied"]:
        violations.append(
            RecoveryViolation(
                "SATISFIED_DIVERGED",
                f"requests_satisfied diverged: pre={pre['requests_satisfied']} "
                f"post={post['requests_satisfied']}",
            )
        )
    pre_burned = set(pre["burned_upload_ids"])
    post_burned = set(post["burned_upload_ids"])
    resurrected = pre_burned - post_burned
    if resurrected:
        violations.append(
            RecoveryViolation(
                "KEYS_RESURRECTED",
                f"burned keys resurrected: {sorted(resurrected)}",
                tuple(sorted(resurrected)),
            )
        )
    conjured = post_burned - pre_burned
    if conjured:
        violations.append(
            RecoveryViolation(
                "KEYS_CONJURED",
                f"burned keys appeared from nowhere: {sorted(conjured)}",
                tuple(sorted(conjured)),
            )
        )
    if post["devices"] != pre["devices"]:
        pre_ids = set(pre["devices"])
        post_ids = set(post["devices"])
        if pre_ids != post_ids:
            violations.append(
                RecoveryViolation(
                    "DEVICE_SET_DIVERGED",
                    f"device sets diverged: lost={sorted(pre_ids - post_ids)} "
                    f"gained={sorted(post_ids - pre_ids)}",
                    tuple(sorted(pre_ids ^ post_ids)),
                )
            )
        else:
            for device_id in sorted(pre_ids):
                if pre["devices"][device_id] != post["devices"][device_id]:
                    violations.append(
                        RecoveryViolation(
                            "DEVICE_RECORD_DIVERGED",
                            f"device {device_id} diverged: "
                            f"pre={pre['devices'][device_id]} "
                            f"post={post['devices'][device_id]}",
                            (device_id,),
                        )
                    )
    if post["tasks"] != pre["tasks"]:
        violations.append(
            RecoveryViolation(
                "TASKS_DIVERGED",
                f"open tasks diverged: pre={pre['tasks']} post={post['tasks']}",
                tuple(sorted(set(pre["tasks"]) ^ set(post["tasks"]))),
            )
        )
    if post["assignments"] != pre["assignments"]:
        pre_keys = set(pre["assignments"])
        post_keys = set(post["assignments"])
        for key in sorted(pre_keys ^ post_keys):
            violations.append(
                RecoveryViolation(
                    "ASSIGNMENT_ONE_SIDED",
                    f"assignment bookkeeping for {key} on one side only",
                    (key,),
                )
            )
        for key in sorted(pre_keys & post_keys):
            if pre["assignments"][key] != post["assignments"][key]:
                violations.append(
                    RecoveryViolation(
                        "ASSIGNMENT_DIVERGED",
                        f"assignment {key} diverged: "
                        f"pre={pre['assignments'][key]} "
                        f"post={post['assignments'][key]}",
                        (key,),
                    )
                )
    if post["epoch"] != pre["epoch"] + 1:
        violations.append(
            RecoveryViolation(
                "EPOCH_SKEW",
                f"epoch did not advance by one: pre={pre['epoch']} "
                f"post={post['epoch']}",
            )
        )
    return violations


def diverged(pre: dict, post: dict) -> bool:
    """Convenience predicate over :func:`check_recovery_invariants`."""
    return bool(check_recovery_invariants(pre, post))


__all__ = [
    "CheckpointCorruptError",
    "WriteAheadLog",
    "DurableLog",
    "checkpoint_crc",
    "durable_state",
    "RecoveryViolation",
    "check_recovery_invariants",
    "diverged",
]
