"""Simulated mobile devices (UEs).

A :class:`SimDevice` composes a battery, a sensor suite, an LTE radio
modem, a background-traffic process, and a mobility model — everything
a framework client (Periodic, PCS, or Sense-Aid) needs to sense and
upload.  Energy is double-entry: the radio and sensors charge a
per-category :class:`EnergyLedger`, and the same Joules drain the
battery.
"""

from repro.devices.battery import Battery
from repro.devices.clocksync import LowDutySync, SkewedClock
from repro.devices.device import SimDevice
from repro.devices.energy import EnergyLedger
from repro.devices.profiles import DEVICE_PROFILES, DeviceProfile, GALAXY_S4
from repro.devices.sensors import SENSOR_SPECS, SensorReading, SensorSuite, SensorType
from repro.devices.traffic import BackgroundTraffic, TrafficPattern

__all__ = [
    "BackgroundTraffic",
    "Battery",
    "DEVICE_PROFILES",
    "DeviceProfile",
    "EnergyLedger",
    "GALAXY_S4",
    "LowDutySync",
    "SkewedClock",
    "SENSOR_SPECS",
    "SensorReading",
    "SensorSuite",
    "SensorType",
    "SimDevice",
    "TrafficPattern",
]
