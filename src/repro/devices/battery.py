"""Battery model.

The paper normalises everything to a nominal 1800 mAh, 3.82 V battery:
its "2% tolerable budget" line is 496 J.  The model tracks remaining
charge in Joules and exposes the percentage level the Sense-Aid device
selector scores on.
"""

from __future__ import annotations

#: The paper's nominal battery: 1800 mAh × 3.82 V ≈ 24.7 kJ.
NOMINAL_CAPACITY_MAH = 1800.0
NOMINAL_VOLTAGE_V = 3.82


def capacity_joules(capacity_mah: float, voltage_v: float) -> float:
    """Convert a battery rating to Joules."""
    if capacity_mah <= 0 or voltage_v <= 0:
        raise ValueError("capacity and voltage must be positive")
    return capacity_mah / 1000.0 * 3600.0 * voltage_v


#: 2% of the nominal battery — the paper's 496 J threshold bar.
TWO_PERCENT_BUDGET_J = 0.02 * capacity_joules(NOMINAL_CAPACITY_MAH, NOMINAL_VOLTAGE_V)


class Battery:
    """A drainable battery with percentage-level reporting."""

    def __init__(
        self,
        capacity_mah: float = NOMINAL_CAPACITY_MAH,
        voltage_v: float = NOMINAL_VOLTAGE_V,
        initial_level_pct: float = 100.0,
    ) -> None:
        if not 0.0 <= initial_level_pct <= 100.0:
            raise ValueError(
                f"initial level must be in [0, 100], got {initial_level_pct!r}"
            )
        self._capacity_j = capacity_joules(capacity_mah, voltage_v)
        self._remaining_j = self._capacity_j * initial_level_pct / 100.0
        self._drained_j = 0.0

    @property
    def capacity_j(self) -> float:
        return self._capacity_j

    @property
    def remaining_j(self) -> float:
        return self._remaining_j

    @property
    def drained_j(self) -> float:
        """Total Joules drained since construction."""
        return self._drained_j

    @property
    def level_pct(self) -> float:
        """Remaining charge as a percentage of capacity."""
        return self._remaining_j / self._capacity_j * 100.0

    @property
    def empty(self) -> bool:
        return self._remaining_j <= 0.0

    def drain(self, joules: float) -> None:
        """Remove ``joules``; clamps at empty rather than going negative."""
        if joules < 0:
            raise ValueError(f"cannot drain negative energy, got {joules!r}")
        drained = min(joules, self._remaining_j)
        self._remaining_j -= drained
        self._drained_j += joules

    def percent_of_capacity(self, joules: float) -> float:
        """Express an energy amount as a % of this battery's capacity."""
        if joules < 0:
            raise ValueError(f"joules must be non-negative, got {joules!r}")
        return joules / self._capacity_j * 100.0
