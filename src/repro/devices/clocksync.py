"""Device clock skew and low-duty synchronization.

Paper §6: "One possible source of errors ... is the lack of
synchronization among the client devices and the server
infrastructure.  However, we can use low-duty synchronization
protocols such as [Koo et al., SenSys'09] to avoid this source of
error."

:class:`SkewedClock` models a phone clock with a constant offset plus
crystal drift (tens of ppm, the realistic range for phone oscillators).
:class:`LowDutySync` is the stand-in for the cited protocol: whenever
the device's radio is already up (the same opportunism Sense-Aid uses
for everything else), it exchanges a timestamp pair with the server
and corrects the clock, keeping the residual error bounded by the
network jitter rather than growing with drift.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.sim.engine import Simulator


class SkewedClock:
    """A device clock: ``device_time = true_time + offset + drift·t``."""

    def __init__(
        self,
        sim: Simulator,
        *,
        initial_offset_s: float = 0.0,
        drift_ppm: float = 0.0,
    ) -> None:
        self._sim = sim
        self._offset = float(initial_offset_s)
        self._drift = float(drift_ppm) * 1e-6
        self._drift_anchor = sim.now

    @property
    def drift_ppm(self) -> float:
        return self._drift * 1e6

    def now(self) -> float:
        """The time this device believes it is."""
        true_now = self._sim.now
        return true_now + self.error()

    def error(self) -> float:
        """Current device-minus-true clock error, in seconds."""
        elapsed = self._sim.now - self._drift_anchor
        return self._offset + self._drift * elapsed

    def correct(self, measured_error_s: float) -> None:
        """Apply a sync correction: subtract the measured error."""
        # Fold accumulated drift into the offset, then remove the
        # estimate; residual error is whatever the estimate missed.
        self._offset = self.error() - measured_error_s
        self._drift_anchor = self._sim.now


class LowDutySync:
    """Opportunistic timestamp-exchange synchronization.

    A sync round measures the clock error through a request/response
    pair whose one-way delays are jittered; the measurement error is
    half the delay asymmetry.  Rounds run at a low duty cycle
    (``period_s``); each round corrects the device clock.
    """

    def __init__(
        self,
        sim: Simulator,
        clock: SkewedClock,
        *,
        period_s: float = 600.0,
        one_way_delay_s: float = 0.05,
        jitter_s: float = 0.01,
        rng: Optional[random.Random] = None,
    ) -> None:
        if period_s <= 0:
            raise ValueError(f"period_s must be positive, got {period_s!r}")
        if one_way_delay_s < 0 or jitter_s < 0:
            raise ValueError("delays must be non-negative")
        self._sim = sim
        self._clock = clock
        self._period = period_s
        self._delay = one_way_delay_s
        self._jitter = jitter_s
        self._rng = rng if rng is not None else sim.rng.stream("clocksync")
        self._running = False
        self._pending = None
        self.rounds = 0

    @property
    def running(self) -> bool:
        return self._running

    def start(self, initial_delay: Optional[float] = None) -> None:
        if self._running:
            raise RuntimeError("sync already running")
        self._running = True
        delay = self._period if initial_delay is None else initial_delay
        self._pending = self._sim.schedule(delay, self._round)

    def stop(self) -> None:
        self._running = False
        if self._pending is not None:
            self._sim.cancel(self._pending)
            self._pending = None

    def sync_now(self) -> float:
        """Run one sync round immediately; returns the residual error."""
        self._round_measurement()
        return self._clock.error()

    def max_residual_error_s(self) -> float:
        """Worst-case error right after a round: delay asymmetry / 2."""
        return self._jitter

    def _round(self) -> None:
        if not self._running:
            return
        self._round_measurement()
        self._pending = self._sim.schedule(self._period, self._round)

    def _round_measurement(self) -> None:
        self.rounds += 1
        # NTP-style two-sample estimate: the error estimate is off by
        # half the difference between the two one-way delays.
        delay_out = self._delay + self._rng.uniform(0.0, self._jitter)
        delay_back = self._delay + self._rng.uniform(0.0, self._jitter)
        asymmetry = (delay_out - delay_back) / 2.0
        measured = self._clock.error() + asymmetry
        self._clock.correct(measured)
