"""The simulated mobile device (UE)."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.cellular.packets import TrafficCategory
from repro.cellular.power import LTE_POWER_PROFILE, RadioPowerProfile
from repro.cellular.rrc import RadioModem, TailPolicy
from repro.devices.battery import Battery
from repro.devices.energy import EnergyLedger
from repro.devices.profiles import DeviceProfile, NOMINAL_PHONE
from repro.devices.sensors import SensorReading, SensorSuite, SensorType
from repro.devices.traffic import BackgroundTraffic, TrafficPattern
from repro.environment.geometry import Point
from repro.environment.mobility import MobilityModel, StaticMobility
from repro.sim.engine import Simulator


@dataclass
class UserPreferences:
    """What a participant signed up for at the bootstrap step.

    ``energy_budget_j`` is the total energy the user tolerates spending
    on crowdsensing (the survey's 2% ≈ 496 J default);
    ``critical_battery_pct`` is the hard floor below which the device
    must never be selected.
    """

    energy_budget_j: float = 496.0
    critical_battery_pct: float = 20.0
    participating: bool = True

    def __post_init__(self) -> None:
        if self.energy_budget_j < 0:
            raise ValueError("energy budget must be non-negative")
        if not 0.0 <= self.critical_battery_pct <= 100.0:
            raise ValueError("critical battery level must be in [0, 100]")


class SimDevice:
    """A phone: radio + battery + sensors + traffic + mobility.

    All radio marginal energy flows into the per-category
    :class:`EnergyLedger` *and* out of the battery; sensor samples are
    charged to the crowdsensing category the same way.
    """

    def __init__(
        self,
        sim: Simulator,
        device_id: str,
        *,
        imei: Optional[str] = None,
        profile: DeviceProfile = NOMINAL_PHONE,
        radio_profile: RadioPowerProfile = LTE_POWER_PROFILE,
        tail_policy: TailPolicy = TailPolicy.RESET,
        mobility: Optional[MobilityModel] = None,
        initial_battery_pct: float = 100.0,
        traffic_pattern: Optional[TrafficPattern] = None,
        preferences: Optional[UserPreferences] = None,
    ) -> None:
        self._sim = sim
        self.device_id = device_id
        self.imei = imei if imei is not None else f"imei-{device_id}"
        self.profile = profile
        self.preferences = preferences if preferences is not None else UserPreferences()
        self.mobility = (
            mobility if mobility is not None else StaticMobility(Point(0.0, 0.0))
        )
        self.battery = Battery(
            capacity_mah=profile.battery_mah,
            voltage_v=profile.battery_voltage_v,
            initial_level_pct=initial_battery_pct,
        )
        self.ledger = EnergyLedger()
        self.modem = RadioModem(sim, radio_profile, device_id, tail_policy)
        self.modem.add_energy_listener(self._on_radio_energy)
        device_rng = sim.rng.stream(f"device:{device_id}")
        self.sensors = SensorSuite(
            device_rng,
            equipped=set(profile.sensors),
            pressure_bias_hpa=device_rng.uniform(-1.0, 1.0),
        )
        pattern = traffic_pattern if traffic_pattern is not None else TrafficPattern()
        self.traffic = BackgroundTraffic(
            sim, self, pattern, sim.rng.stream(f"traffic:{device_id}")
        )
        self._samples_taken = 0

    # ------------------------------------------------------------------
    # Identity & location
    # ------------------------------------------------------------------

    @property
    def imei_hash(self) -> str:
        """SHA-256 of the IMEI — all the server side ever sees."""
        return hashlib.sha256(self.imei.encode("utf-8")).hexdigest()

    def position(self) -> Point:
        """Current location from the mobility model."""
        return self.mobility.position_at(self._sim.now)

    # ------------------------------------------------------------------
    # Sensing
    # ------------------------------------------------------------------

    @property
    def samples_taken(self) -> int:
        return self._samples_taken

    def sample(self, sensor_type: SensorType) -> SensorReading:
        """Acquire one reading; charges sensing energy to crowdsensing."""
        reading = self.sensors.sample(sensor_type, self._sim.now)
        self._samples_taken += 1
        self.ledger.charge(
            TrafficCategory.CROWDSENSING, reading.energy_j, "sensor_sample"
        )
        self.battery.drain(reading.energy_j)
        return reading

    # ------------------------------------------------------------------
    # Energy views
    # ------------------------------------------------------------------

    def crowdsensing_energy_j(self) -> float:
        """Joules attributed to crowdsensing so far (the paper's metric)."""
        return self.ledger.crowdsensing_j()

    def crowdsensing_battery_pct(self) -> float:
        """Crowdsensing energy as a % of this device's battery capacity."""
        return self.battery.percent_of_capacity(self.crowdsensing_energy_j())

    def over_energy_budget(self) -> bool:
        return self.crowdsensing_energy_j() >= self.preferences.energy_budget_j

    def below_critical_battery(self) -> bool:
        return self.battery.level_pct <= self.preferences.critical_battery_pct

    def _on_radio_energy(
        self, category: TrafficCategory, joules: float, reason: str
    ) -> None:
        self.ledger.charge(category, joules, reason)
        self.battery.drain(joules)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimDevice {self.device_id} {self.profile.model} "
            f"battery={self.battery.level_pct:.1f}% "
            f"cs_energy={self.crowdsensing_energy_j():.2f}J>"
        )
