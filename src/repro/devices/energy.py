"""Per-category energy accounting.

The paper compares frameworks by the energy *attributable to
crowdsensing*; control messages are explicitly excluded ("we ignore
energy consumption for these control messages") and regular app
traffic is the user's own business.  The ledger keeps the three
categories separate so experiments can report exactly what the paper
reports.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.cellular.packets import TrafficCategory


class EnergyLedger:
    """Joules charged per :class:`TrafficCategory`, with a reason log."""

    def __init__(self) -> None:
        self._totals: Dict[TrafficCategory, float] = defaultdict(float)
        self._by_reason: Dict[Tuple[TrafficCategory, str], float] = defaultdict(float)
        self._entries = 0

    def charge(self, category: TrafficCategory, joules: float, reason: str) -> None:
        if joules < 0:
            raise ValueError(f"cannot charge negative energy ({joules!r}, {reason!r})")
        self._totals[category] += joules
        self._by_reason[(category, reason)] += joules
        self._entries += 1

    @property
    def entries(self) -> int:
        return self._entries

    def total(self, category: TrafficCategory) -> float:
        """Total Joules charged to one category."""
        return self._totals[category]

    def crowdsensing_j(self) -> float:
        """The headline metric: Joules attributable to crowdsensing."""
        return self._totals[TrafficCategory.CROWDSENSING]

    def grand_total_j(self) -> float:
        return sum(self._totals.values())

    def breakdown(self, category: TrafficCategory) -> Dict[str, float]:
        """Joules per reason string within one category."""
        return {
            reason: joules
            for (cat, reason), joules in self._by_reason.items()
            if cat is category
        }

    def as_rows(self) -> List[Tuple[str, str, float]]:
        """(category, reason, joules) rows sorted for reporting."""
        rows = [
            (cat.value, reason, joules)
            for (cat, reason), joules in self._by_reason.items()
        ]
        rows.sort()
        return rows
