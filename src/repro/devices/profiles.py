"""Device model catalogue.

Table 1's optional ``device_type`` parameter lets a task target a
particular phone model; the catalogue gives the population a realistic
mix and provides per-model battery sizes and sensor complements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

from repro.devices.sensors import SensorType

_FULL_SUITE = frozenset(SensorType)
_NO_BAROMETER = frozenset(s for s in SensorType if s is not SensorType.BAROMETER)


@dataclass(frozen=True)
class DeviceProfile:
    """Hardware characteristics of one phone model."""

    model: str
    battery_mah: float
    battery_voltage_v: float
    sensors: FrozenSet[SensorType] = field(default=_FULL_SUITE)

    def __post_init__(self) -> None:
        if self.battery_mah <= 0 or self.battery_voltage_v <= 0:
            raise ValueError("battery rating must be positive")


GALAXY_S4 = DeviceProfile(
    model="Galaxy S4", battery_mah=2600.0, battery_voltage_v=3.8
)

#: The reference battery the paper normalises its 2% line against.
NOMINAL_PHONE = DeviceProfile(
    model="Nominal", battery_mah=1800.0, battery_voltage_v=3.82
)

DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    p.model: p
    for p in (
        GALAXY_S4,
        NOMINAL_PHONE,
        DeviceProfile("iPhone 6", 1810.0, 3.82),
        DeviceProfile("LG G2", 3000.0, 3.8),
        DeviceProfile("Nexus 5", 2300.0, 3.8),
        # A budget model without a barometer — exercises the paper's
        # "device does not have the sensor required by the task"
        # disqualification.
        DeviceProfile("Moto E", 1980.0, 3.8, sensors=_NO_BAROMETER),
    )
}


def profile_by_model(model: str) -> DeviceProfile:
    try:
        return DEVICE_PROFILES[model]
    except KeyError:
        raise KeyError(
            f"unknown device model {model!r}; available: {sorted(DEVICE_PROFILES)}"
        ) from None


def population_mix(
    count: int, *, barometer_fraction: float = 1.0
) -> List[DeviceProfile]:
    """A deterministic round-robin mix of ``count`` device profiles.

    ``barometer_fraction`` < 1.0 mixes in barometer-less models; the
    user-study experiments use 1.0 (every participant's phone had the
    needed sensor).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count!r}")
    if not 0.0 <= barometer_fraction <= 1.0:
        raise ValueError("barometer_fraction must be in [0, 1]")
    with_baro = [
        p for p in DEVICE_PROFILES.values() if SensorType.BAROMETER in p.sensors
    ]
    without_baro = [
        p for p in DEVICE_PROFILES.values() if SensorType.BAROMETER not in p.sensors
    ]
    with_baro.sort(key=lambda p: p.model)
    without_baro.sort(key=lambda p: p.model)
    result: List[DeviceProfile] = []
    for i in range(count):
        want_barometer = (i + 1) / count <= barometer_fraction if count else True
        pool = with_baro if (want_barometer or not without_baro) else without_baro
        result.append(pool[i % len(pool)])
    return result
