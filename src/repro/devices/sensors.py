"""Smartphone sensors and their power draws.

Power figures are the Samsung Galaxy S4 numbers the paper quotes from
Warden's survey: accelerometer 21 mW, gyroscope 130 mW, barometer
110 mW, GPS 176 mW, microphone 101 mW, camera >1000 mW.  Readings are
synthetic but physically plausible — the barometer, the one sensor the
user study exercises, produces sea-level-ish pressure with slow
weather drift and per-sample noise.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional


class SensorType(Enum):
    """Sensor ids mirroring the Android sensor taxonomy the paper uses."""

    ACCELEROMETER = 1
    GYROSCOPE = 4
    BAROMETER = 6
    GPS = 100
    MICROPHONE = 101
    CAMERA = 102
    MAGNETOMETER = 2
    THERMOMETER = 13
    HYGROMETER = 12
    LIGHT = 5


@dataclass(frozen=True)
class SensorSpec:
    """Power and timing characteristics of one sensor."""

    sensor_type: SensorType
    power_mw: float
    sample_time_s: float

    def sample_energy_j(self) -> float:
        """Energy of one sample: power × acquisition time."""
        return self.power_mw / 1000.0 * self.sample_time_s


#: Galaxy-S4 sensor power table (Warden 2015, as quoted in the paper);
#: sample times are typical acquisition windows (GPS fixes are long).
SENSOR_SPECS: Dict[SensorType, SensorSpec] = {
    SensorType.ACCELEROMETER: SensorSpec(SensorType.ACCELEROMETER, 21.0, 0.1),
    SensorType.GYROSCOPE: SensorSpec(SensorType.GYROSCOPE, 130.0, 0.1),
    SensorType.BAROMETER: SensorSpec(SensorType.BAROMETER, 110.0, 0.2),
    SensorType.GPS: SensorSpec(SensorType.GPS, 176.0, 10.0),
    SensorType.MICROPHONE: SensorSpec(SensorType.MICROPHONE, 101.0, 1.0),
    SensorType.CAMERA: SensorSpec(SensorType.CAMERA, 1200.0, 1.0),
    SensorType.MAGNETOMETER: SensorSpec(SensorType.MAGNETOMETER, 48.0, 0.1),
    SensorType.THERMOMETER: SensorSpec(SensorType.THERMOMETER, 30.0, 0.2),
    SensorType.HYGROMETER: SensorSpec(SensorType.HYGROMETER, 30.0, 0.2),
    SensorType.LIGHT: SensorSpec(SensorType.LIGHT, 15.0, 0.05),
}


@dataclass(frozen=True)
class SensorReading:
    """One sensed value with its acquisition metadata."""

    sensor_type: SensorType
    value: float
    time: float
    energy_j: float


class SensorSuite:
    """The set of sensors on one device, with a reading generator.

    ``equipped`` restricts the suite (not every phone has a barometer —
    that is one of the paper's two reasons a device can be
    *unqualified*).
    """

    STANDARD_PRESSURE_HPA = 1013.25

    def __init__(
        self,
        rng: random.Random,
        equipped: Optional[set] = None,
        *,
        pressure_bias_hpa: float = 0.0,
    ) -> None:
        self._rng = rng
        if equipped is None:
            equipped = set(SENSOR_SPECS)
        unknown = {s for s in equipped if s not in SENSOR_SPECS}
        if unknown:
            names = sorted(getattr(s, "name", repr(s)) for s in unknown)
            raise ValueError(f"unknown sensors: {names}")
        self._equipped = set(equipped)
        self._pressure_bias = pressure_bias_hpa

    def has(self, sensor_type: SensorType) -> bool:
        return sensor_type in self._equipped

    def equipped(self) -> set:
        return set(self._equipped)

    def spec(self, sensor_type: SensorType) -> SensorSpec:
        self._require(sensor_type)
        return SENSOR_SPECS[sensor_type]

    def sample(self, sensor_type: SensorType, time: float) -> SensorReading:
        """Acquire one reading; raises KeyError if the sensor is absent."""
        self._require(sensor_type)
        spec = SENSOR_SPECS[sensor_type]
        return SensorReading(
            sensor_type=sensor_type,
            value=self._generate_value(sensor_type, time),
            time=time,
            energy_j=spec.sample_energy_j(),
        )

    def _require(self, sensor_type: SensorType) -> None:
        if sensor_type not in self._equipped:
            raise KeyError(f"device lacks sensor {sensor_type.name}")

    def _generate_value(self, sensor_type: SensorType, time: float) -> float:
        rng = self._rng
        if sensor_type is SensorType.BAROMETER:
            # Slow sinusoidal weather drift (~6 h period, ±3 hPa) plus
            # instrument noise and a per-device altitude bias.
            drift = 3.0 * math.sin(2.0 * math.pi * time / (6.0 * 3600.0))
            noise = rng.gauss(0.0, 0.15)
            return self.STANDARD_PRESSURE_HPA + self._pressure_bias + drift + noise
        if sensor_type is SensorType.THERMOMETER:
            return 22.0 + rng.gauss(0.0, 0.5)
        if sensor_type is SensorType.HYGROMETER:
            return 45.0 + rng.gauss(0.0, 2.0)
        if sensor_type is SensorType.LIGHT:
            return max(0.0, rng.gauss(400.0, 120.0))
        if sensor_type is SensorType.ACCELEROMETER:
            return rng.gauss(9.81, 0.05)
        if sensor_type is SensorType.GYROSCOPE:
            return rng.gauss(0.0, 0.02)
        if sensor_type is SensorType.MAGNETOMETER:
            return rng.gauss(48.0, 1.0)
        if sensor_type is SensorType.MICROPHONE:
            return max(20.0, rng.gauss(55.0, 8.0))
        # GPS / camera readings are placeholders; their energy matters,
        # the value does not.
        return 0.0
