"""Background (regular app) traffic per device.

Both frameworks under comparison feed off the user's own traffic:
Sense-Aid rides the radio *tail* each burst leaves behind, and PCS
piggybacks on the burst itself.  Modelling the bursts once — a renewal
process of app sessions with exponential think gaps and log-normal
session sizes, the standard shape for interactive smartphone traffic —
keeps the comparison between frameworks fair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cellular.packets import TrafficCategory
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class TrafficPattern:
    """Statistical shape of one user's phone usage."""

    mean_gap_s: float = 480.0
    session_bytes_mu: float = 11.0   # log-normal location (~60 kB median)
    session_bytes_sigma: float = 1.0
    packets_per_session: int = 3
    intra_session_gap_s: float = 1.5

    def __post_init__(self) -> None:
        if self.mean_gap_s <= 0:
            raise ValueError(f"mean_gap_s must be positive, got {self.mean_gap_s!r}")
        if self.packets_per_session <= 0:
            raise ValueError(
                "packets_per_session must be positive, "
                f"got {self.packets_per_session!r}"
            )
        if self.intra_session_gap_s < 0:
            raise ValueError(
                f"intra_session_gap_s must be non-negative, "
                f"got {self.intra_session_gap_s!r}"
            )


#: A heavier pattern for users who are glued to their phone.
HEAVY_USER = TrafficPattern(mean_gap_s=240.0, session_bytes_mu=12.0)

#: A light pattern: rare, small sessions (worst case for both
#: piggybacking and tail-riding).
LIGHT_USER = TrafficPattern(mean_gap_s=1200.0, session_bytes_mu=10.0)


def diurnal_modulator(
    *,
    night_factor: float = 5.0,
    evening_factor: float = 0.6,
    day_start_h: float = 7.0,
    evening_start_h: float = 19.0,
    night_start_h: float = 23.5,
) -> Callable[[float], float]:
    """A gap multiplier following a student's day.

    Returns a function of simulation time (seconds; t=0 is midnight)
    mapping to a multiplier on the mean inter-session gap: phones are
    nearly silent overnight (``night_factor`` > 1), busiest in the
    evening (``evening_factor`` < 1), normal during the day.
    """
    if night_factor <= 0 or evening_factor <= 0:
        raise ValueError("factors must be positive")

    def modulator(time_s: float) -> float:
        hour = (time_s / 3600.0) % 24.0
        if hour < day_start_h or hour >= night_start_h:
            return night_factor
        if hour >= evening_start_h:
            return evening_factor
        return 1.0

    return modulator


class BackgroundTraffic:
    """Drives a device's modem with app-session bursts.

    Observers subscribe to session starts — the PCS client uses this as
    its "the predicted app was opened" signal.
    """

    def __init__(
        self,
        sim: Simulator,
        device: object,
        pattern: TrafficPattern,
        rng,
        *,
        gap_modulator: Optional[Callable[[float], float]] = None,
    ) -> None:
        self._sim = sim
        self._device = device
        self._pattern = pattern
        self._rng = rng
        self._gap_modulator = gap_modulator
        self._running = False
        self._sessions = 0
        self._session_listeners: List[Callable[[float], None]] = []
        self._pending = None

    def set_gap_modulator(
        self, modulator: Optional[Callable[[float], float]]
    ) -> None:
        """Install a time-of-day multiplier on the mean session gap."""
        self._gap_modulator = modulator

    def _current_mean_gap(self) -> float:
        gap = self._pattern.mean_gap_s
        if self._gap_modulator is not None:
            gap *= self._gap_modulator(self._sim.now)
        return gap

    @property
    def sessions(self) -> int:
        return self._sessions

    @property
    def running(self) -> bool:
        return self._running

    def add_session_listener(self, listener: Callable[[float], None]) -> None:
        """Called with the session start time at each session."""
        self._session_listeners.append(listener)

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin generating sessions.

        The first session arrives after ``initial_delay`` (default: one
        exponential gap), so a population of devices desynchronises
        naturally.
        """
        if self._running:
            raise RuntimeError("traffic generator already running")
        self._running = True
        delay = (
            self._rng.expovariate(1.0 / self._current_mean_gap())
            if initial_delay is None
            else initial_delay
        )
        self._pending = self._sim.schedule(delay, self._session)

    def stop(self) -> None:
        self._running = False
        if self._pending is not None:
            self._sim.cancel(self._pending)
            self._pending = None

    def _session(self) -> None:
        if not self._running:
            return
        self._sessions += 1
        now = self._sim.now
        for listener in self._session_listeners:
            listener(now)
        total_bytes = int(
            self._rng.lognormvariate(
                self._pattern.session_bytes_mu, self._pattern.session_bytes_sigma
            )
        )
        packets = self._pattern.packets_per_session
        per_packet = max(1, total_bytes // packets)
        for i in range(packets):
            offset = i * self._pattern.intra_session_gap_s
            self._sim.schedule(offset, self._send_packet, per_packet)
        gap = self._rng.expovariate(1.0 / self._current_mean_gap())
        session_span = packets * self._pattern.intra_session_gap_s
        self._pending = self._sim.schedule(session_span + gap, self._session)

    def _send_packet(self, size_bytes: int) -> None:
        if not self._running:
            return
        self._device.modem.transmit(size_bytes, TrafficCategory.BACKGROUND)
