"""Campus environment: geometry, named sites, and user mobility.

Replaces the paper's physical Purdue campus and its 60 volunteer
students.  The four study sites (Student Union, EE, CS, University Gym)
are placed on a planar campus map; simulated users move between
building waypoints with a random-waypoint model, which recreates the
two mobility effects the paper observes: the qualified-device count
grows with the task's area radius (Fig. 7), and devices drift in and
out of a task's region over time (the device-8 episode of Fig. 9).
"""

from repro.environment.campus import Campus, Site, default_campus
from repro.environment.geometry import Point, distance_m
from repro.environment.mobility import (
    MobilityModel,
    RandomWaypointMobility,
    StaticMobility,
)

__all__ = [
    "Campus",
    "MobilityModel",
    "Point",
    "RandomWaypointMobility",
    "Site",
    "StaticMobility",
    "default_campus",
    "distance_m",
]
