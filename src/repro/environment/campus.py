"""The campus map with the paper's four study sites.

All three user-study experiments place crowdsensing tasks at one or
more of: *Student Union*, *EE department*, *CS department*, and
*University Gym*.  The reproduction lays these out on a 2 km × 2 km
plane with realistic inter-building distances (a few hundred metres),
so that the paper's radius sweep (100 m … 1000 m) spans "just this
building" up to "most of campus".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.environment.geometry import Point

STUDENT_UNION = "Student Union"
EE_DEPARTMENT = "EE department"
CS_DEPARTMENT = "CS department"
UNIVERSITY_GYM = "University Gym"

#: The four sites every paper experiment samples at.
STUDY_SITES = (STUDENT_UNION, EE_DEPARTMENT, CS_DEPARTMENT, UNIVERSITY_GYM)


@dataclass(frozen=True)
class Site:
    """A named campus building / gathering point."""

    name: str
    position: Point


@dataclass
class Campus:
    """A bounded plane with named sites and generic waypoints."""

    width_m: float
    height_m: float
    sites: Dict[str, Site] = field(default_factory=dict)
    waypoints: List[Point] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.width_m <= 0 or self.height_m <= 0:
            raise ValueError("campus dimensions must be positive")

    def add_site(self, name: str, position: Point) -> Site:
        if name in self.sites:
            raise ValueError(f"site {name!r} already exists")
        self._check_bounds(position)
        site = Site(name, position)
        self.sites[name] = site
        return site

    def add_waypoint(self, position: Point) -> None:
        self._check_bounds(position)
        self.waypoints.append(position)

    def site(self, name: str) -> Site:
        try:
            return self.sites[name]
        except KeyError:
            raise KeyError(
                f"unknown site {name!r}; available: {sorted(self.sites)}"
            ) from None

    def all_waypoints(self) -> Sequence[Point]:
        """Every mobility destination: named sites plus extra waypoints."""
        return [site.position for site in self.sites.values()] + list(self.waypoints)

    def contains(self, point: Point) -> bool:
        return 0.0 <= point.x <= self.width_m and 0.0 <= point.y <= self.height_m

    def _check_bounds(self, position: Point) -> None:
        if not self.contains(position):
            raise ValueError(f"{position!r} is outside the campus bounds")


def default_campus() -> Campus:
    """The reproduction's stand-in for the Purdue campus.

    Sites sit a few hundred metres apart near the campus core, with a
    ring of secondary waypoints (dorms, dining, library, parking) that
    users also visit — those are what pull users outside small task
    radii.
    """
    campus = Campus(width_m=3000.0, height_m=3000.0)
    campus.add_site(STUDENT_UNION, Point(1500.0, 1650.0))
    campus.add_site(EE_DEPARTMENT, Point(1875.0, 1425.0))
    campus.add_site(CS_DEPARTMENT, Point(1275.0, 1350.0))
    campus.add_site(UNIVERSITY_GYM, Point(1650.0, 2325.0))
    # Secondary destinations (dorms, dining, library, parking) spread
    # toward the campus edges; they are what pulls users outside small
    # task radii around the study sites.
    for point in (
        Point(400.0, 450.0),
        Point(750.0, 2550.0),
        Point(2625.0, 2475.0),
        Point(2700.0, 600.0),
        Point(2250.0, 1800.0),
        Point(450.0, 1500.0),
        Point(1500.0, 375.0),
        Point(975.0, 825.0),
        Point(2100.0, 900.0),
        Point(1350.0, 2775.0),
    ):
        campus.add_waypoint(point)
    return campus
