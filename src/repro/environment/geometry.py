"""Planar geometry for the campus map.

Campus scale (a couple of kilometres) is small enough that a flat
x/y metre grid is an accurate stand-in for geodesic coordinates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """A position on the campus plane, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def within(self, center: "Point", radius_m: float) -> bool:
        """True when the point lies inside (or on) a circle."""
        if radius_m < 0:
            raise ValueError(f"radius must be non-negative, got {radius_m!r}")
        return self.distance_to(center) <= radius_m

    def towards(self, other: "Point", meters: float) -> "Point":
        """The point ``meters`` along the segment from self to other.

        Clamps at ``other`` — used by mobility to step toward a
        waypoint without overshooting.
        """
        total = self.distance_to(other)
        if total == 0.0 or meters >= total:
            return other
        fraction = meters / total
        return Point(
            self.x + (other.x - self.x) * fraction,
            self.y + (other.y - self.y) * fraction,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Point({self.x:.1f}, {self.y:.1f})"


def distance_m(a: Point, b: Point) -> float:
    """Distance between two points in metres."""
    return a.distance_to(b)


def interpolate(a: Point, b: Point, fraction: float) -> Point:
    """Linear interpolation between two points, ``fraction`` in [0, 1]."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
    return Point(a.x + (b.x - a.x) * fraction, a.y + (b.y - a.y) * fraction)
