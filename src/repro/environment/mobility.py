"""User mobility models.

The random-waypoint model drives the qualified-device dynamics the
paper reports: users walk between campus waypoints, pause, and walk
again, drifting in and out of task regions.  Positions are generated
lazily as a piecewise itinerary so any (monotone or not) time can be
queried without simulation events.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.environment.geometry import Point


class MobilityModel:
    """Interface: where is the user at simulation time ``t``?"""

    def position_at(self, time: float) -> Point:
        raise NotImplementedError

    def position_valid_until(self, time: float) -> float:
        """Latest instant the position at ``time`` is guaranteed unchanged.

        The spatial-index refresh uses this to skip devices that are
        provably stationary (mid-pause) instead of re-reading every
        position on every snapshot.  Returning ``time`` (the default)
        promises nothing and keeps the old always-re-read behaviour.
        """
        return time


class StaticMobility(MobilityModel):
    """A user who never moves — useful in unit tests and quickstarts."""

    def __init__(self, position: Point) -> None:
        self._position = position

    def position_at(self, time: float) -> Point:
        return self._position

    def position_valid_until(self, time: float) -> float:
        return float("inf")


@dataclass
class _Leg:
    """One itinerary segment: either a pause or a straight walk."""

    start_time: float
    end_time: float
    start: Point
    end: Point

    def position_at(self, time: float) -> Point:
        if self.end_time <= self.start_time:
            return self.end
        span = self.end_time - self.start_time
        fraction = min(1.0, max(0.0, (time - self.start_time) / span))
        return Point(
            self.start.x + (self.end.x - self.start.x) * fraction,
            self.start.y + (self.end.y - self.start.y) * fraction,
        )


class RandomWaypointMobility(MobilityModel):
    """Random-waypoint walking between campus destinations.

    The user starts at ``home``, pauses, picks a random waypoint, walks
    there at a per-user walking speed, pauses (exponential holding
    time), and repeats.  A ``home_bias`` probability makes users return
    to their home site, which keeps the population clustered the way a
    campus crowd is.
    """

    def __init__(
        self,
        home: Point,
        waypoints: Sequence[Point],
        rng: random.Random,
        *,
        speed_mps: Optional[float] = None,
        mean_pause_s: float = 420.0,
        home_bias: float = 0.35,
    ) -> None:
        if not waypoints:
            raise ValueError("waypoints must be non-empty")
        if not 0.0 <= home_bias <= 1.0:
            raise ValueError(f"home_bias must be in [0, 1], got {home_bias!r}")
        if mean_pause_s <= 0:
            raise ValueError(f"mean_pause_s must be positive, got {mean_pause_s!r}")
        self._home = home
        self._waypoints = list(waypoints)
        self._rng = rng
        self._speed = speed_mps if speed_mps is not None else rng.uniform(1.0, 1.6)
        if self._speed <= 0:
            raise ValueError(f"speed must be positive, got {self._speed!r}")
        self._mean_pause = mean_pause_s
        self._home_bias = home_bias
        first_pause = rng.expovariate(1.0 / mean_pause_s)
        self._legs: List[_Leg] = [_Leg(0.0, first_pause, home, home)]

    @property
    def speed_mps(self) -> float:
        return self._speed

    def position_at(self, time: float) -> Point:
        if time < 0:
            raise ValueError(f"time must be non-negative, got {time!r}")
        self._extend_until(time)
        leg = self._find_leg(time)
        return leg.position_at(time)

    def position_valid_until(self, time: float) -> float:
        """End of the current pause leg, or ``time`` while walking.

        Extends the itinerary exactly like :meth:`position_at`, so the
        per-user RNG stream is consumed in the same order whether the
        caller polls positions or validity windows.
        """
        if time < 0:
            raise ValueError(f"time must be non-negative, got {time!r}")
        self._extend_until(time)
        leg = self._find_leg(time)
        if leg.start == leg.end:  # pause: stationary until the leg ends
            return leg.end_time
        return time

    def _extend_until(self, time: float) -> None:
        while self._legs[-1].end_time < time:
            self._append_next_leg()

    def _append_next_leg(self) -> None:
        last = self._legs[-1]
        here = last.end
        destination = self._pick_destination(here)
        walk_s = here.distance_to(destination) / self._speed
        walk = _Leg(last.end_time, last.end_time + walk_s, here, destination)
        self._legs.append(walk)
        pause_s = self._rng.expovariate(1.0 / self._mean_pause)
        self._legs.append(
            _Leg(walk.end_time, walk.end_time + pause_s, destination, destination)
        )

    def _pick_destination(self, here: Point) -> Point:
        if self._rng.random() < self._home_bias and here != self._home:
            return self._home
        choices = [p for p in self._waypoints if p != here]
        if not choices:
            return self._home
        return self._rng.choice(choices)

    def _find_leg(self, time: float) -> _Leg:
        # Itineraries are short (tens of legs for a multi-hour run);
        # scan from the end since queries cluster near "now".
        for leg in reversed(self._legs):
            if leg.start_time <= time <= leg.end_time:
                return leg
        return self._legs[0]
