"""Builds the simulated study population.

One call produces the N participants of a user-study run: each user
gets a phone (from the device-profile mix), a random-waypoint itinerary
over the campus, a battery at a realistic level, and a background
traffic pattern.  All randomness is drawn from the simulator's named
streams keyed by stable user indices, so two runs with the same master
seed — e.g. the Periodic, PCS, and Sense-Aid arms of one experiment —
see *identical* users, removing the mobility noise the paper's
disjoint 20-student groups suffered from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cellular.power import LTE_POWER_PROFILE, RadioPowerProfile
from repro.cellular.rrc import TailPolicy
from repro.devices.device import SimDevice, UserPreferences
from repro.devices.profiles import population_mix
from repro.devices.traffic import TrafficPattern
from repro.environment.campus import Campus
from repro.environment.mobility import RandomWaypointMobility
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs for one study population."""

    size: int = 20
    min_battery_pct: float = 55.0
    max_battery_pct: float = 100.0
    energy_budget_j: float = 496.0
    critical_battery_pct: float = 20.0
    barometer_fraction: float = 1.0
    traffic: TrafficPattern = field(default_factory=TrafficPattern)
    #: Fractions of the population using the HEAVY_USER / LIGHT_USER
    #: patterns instead of ``traffic`` (the rest).  Real crowds are not
    #: homogeneous, and the heavy users are exactly the ones whose
    #: tails Sense-Aid rides most often.
    heavy_user_fraction: float = 0.0
    light_user_fraction: float = 0.0
    mean_pause_s: float = 900.0
    home_bias: float = 0.40
    #: Fraction of users whose home base is one of the named study
    #: sites (students cluster at the union / departments / gym); the
    #: rest are homed at random secondary waypoints.
    site_home_fraction: float = 0.6

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"population size must be positive, got {self.size!r}")
        if not 0.0 <= self.min_battery_pct <= self.max_battery_pct <= 100.0:
            raise ValueError("battery range must satisfy 0 <= min <= max <= 100")
        if not 0.0 <= self.site_home_fraction <= 1.0:
            raise ValueError("site_home_fraction must be in [0, 1]")
        if (
            self.heavy_user_fraction < 0
            or self.light_user_fraction < 0
            or self.heavy_user_fraction + self.light_user_fraction > 1.0
        ):
            raise ValueError(
                "heavy and light user fractions must be non-negative and "
                "sum to at most 1"
            )

    def pattern_for(self, index: int) -> TrafficPattern:
        """The traffic pattern of user ``index`` under the mix.

        Deterministic striping: the first ``heavy`` share of indices is
        heavy, the last ``light`` share is light, the middle uses the
        default pattern.
        """
        from repro.devices.traffic import HEAVY_USER, LIGHT_USER

        position = (index + 0.5) / self.size
        if position <= self.heavy_user_fraction:
            return HEAVY_USER
        if position > 1.0 - self.light_user_fraction:
            return LIGHT_USER
        return self.traffic


def build_population(
    sim: Simulator,
    campus: Campus,
    config: Optional[PopulationConfig] = None,
    *,
    tail_policy: TailPolicy = TailPolicy.RESET,
    radio_profile: RadioPowerProfile = LTE_POWER_PROFILE,
    start_traffic: bool = True,
) -> List[SimDevice]:
    """Create the participants and (optionally) start their app traffic."""
    if config is None:
        config = PopulationConfig()
    profiles = population_mix(config.size, barometer_fraction=config.barometer_fraction)
    waypoints = campus.all_waypoints()
    site_positions = [site.position for site in campus.sites.values()]
    devices: List[SimDevice] = []
    for i in range(config.size):
        user_rng = sim.rng.stream(f"user:{i}")
        if site_positions and i < config.site_home_fraction * config.size:
            home = site_positions[i % len(site_positions)]
        else:
            home = user_rng.choice(waypoints)
        mobility = RandomWaypointMobility(
            home,
            waypoints,
            sim.rng.stream(f"mobility:{i}"),
            mean_pause_s=config.mean_pause_s,
            home_bias=config.home_bias,
        )
        battery_pct = user_rng.uniform(config.min_battery_pct, config.max_battery_pct)
        device = SimDevice(
            sim,
            device_id=f"u{i:02d}",
            profile=profiles[i],
            radio_profile=radio_profile,
            tail_policy=tail_policy,
            mobility=mobility,
            initial_battery_pct=battery_pct,
            traffic_pattern=config.pattern_for(i),
            preferences=UserPreferences(
                energy_budget_j=config.energy_budget_j,
                critical_battery_pct=config.critical_battery_pct,
            ),
        )
        if start_traffic:
            device.traffic.start()
        devices.append(device)
    return devices
