"""Reproductions of every table and figure in the paper's evaluation.

Each module exposes a ``run(...)`` returning structured results and a
``main()`` that prints the paper-style rows.  The per-experiment index
lives in DESIGN.md; paper-vs-measured numbers live in EXPERIMENTS.md.
"""

from repro.experiments.common import (
    ArmResult,
    ScenarioConfig,
    TaskParams,
    run_pcs_arm,
    run_periodic_arm,
    run_sense_aid_arm,
)

__all__ = [
    "ArmResult",
    "ScenarioConfig",
    "TaskParams",
    "run_pcs_arm",
    "run_periodic_arm",
    "run_sense_aid_arm",
]
