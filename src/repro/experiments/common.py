"""Shared experiment harness.

One *arm* = one framework (Periodic, PCS, Sense-Aid Basic/Complete)
run over an identical simulated world: same campus, same 20 users with
the same itineraries and the same background traffic (guaranteed by
seeding every random stream from the scenario's master seed by stable
names).  The paper had to hand each framework a *different* group of
20 students and notes that cross-framework differences in qualified
devices are mobility noise; fixing the world removes that noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.analysis.energy import EnergySummary, summarize_devices
from repro.baselines.coverage import CoverageFramework
from repro.baselines.pcs import PCSFramework
from repro.baselines.periodic import PeriodicFramework
from repro.cellular.enodeb import TowerRegistry, grid_towers
from repro.cellular.network import CellularNetwork
from repro.clientlib.client import SenseAidClient
from repro.core.config import SelectorWeights, SenseAidConfig, ServerMode
from repro.core.server import SelectionEvent, SenseAidServer
from repro.core.tasks import TaskSpec
from repro.devices.device import SimDevice
from repro.devices.sensors import SensorType
from repro.devices.traffic import TrafficPattern
from repro.environment.campus import CS_DEPARTMENT, Campus, default_campus
from repro.environment.population import PopulationConfig, build_population
from repro.serverlib.appserver import CrowdsensingAppServer
from repro.sim.engine import Simulator

#: Extra simulated time after the last task deadline, so tails close
#: and in-flight deliveries land.
RUN_SLACK_S = 60.0


@dataclass(frozen=True)
class TaskParams:
    """Framework-independent description of one crowdsensing task."""

    site: str = CS_DEPARTMENT
    sensor: SensorType = SensorType.BAROMETER
    area_radius_m: float = 500.0
    spatial_density: int = 2
    sampling_period_s: float = 600.0
    sampling_duration_s: float = 5400.0
    #: Concurrent tasks from different applications do not tick in
    #: lockstep; a per-task offset desynchronises their sampling
    #: instants (exercised by Experiment 3).
    start_offset_s: float = 0.0

    def to_spec(self, campus: Campus, origin: str) -> TaskSpec:
        return TaskSpec(
            sensor_type=self.sensor,
            center=campus.site(self.site).position,
            area_radius_m=self.area_radius_m,
            spatial_density=self.spatial_density,
            sampling_period_s=self.sampling_period_s,
            start_time=self.start_offset_s,
            end_time=self.start_offset_s + self.sampling_duration_s,
            origin=origin,
        )


@dataclass(frozen=True)
class ScenarioConfig:
    """One experiment scenario: the world every arm shares."""

    seed: int = 7
    population: PopulationConfig = field(
        default_factory=lambda: PopulationConfig(
            size=20, traffic=TrafficPattern(mean_gap_s=420.0)
        )
    )

    def with_seed(self, seed: int) -> "ScenarioConfig":
        return replace(self, seed=seed)


@dataclass
class ArmResult:
    """Uniform result record for one framework arm."""

    name: str
    energy: EnergySummary
    data_points: int
    participants_per_request: Dict[str, int]
    devices: List[SimDevice]
    #: Sense-Aid only: the selector's execution log (Fig. 9).
    selection_log: List[SelectionEvent] = field(default_factory=list)
    #: Sense-Aid only: qualified-device counts per request (Fig. 7).
    qualified_per_request: Dict[str, int] = field(default_factory=dict)
    extras: Dict[str, object] = field(default_factory=dict)

    def mean_participants(self) -> float:
        if not self.participants_per_request:
            return 0.0
        counts = self.participants_per_request.values()
        return sum(counts) / len(counts)

    def mean_qualified(self) -> float:
        if not self.qualified_per_request:
            return 0.0
        counts = self.qualified_per_request.values()
        return sum(counts) / len(counts)

    def mean_energy_per_device_j(self) -> float:
        return self.energy.mean_per_device_j

    def active_devices(self) -> List[str]:
        """Devices that actually spent crowdsensing energy this run.

        For the baselines this is every device that ever entered the
        task region; for Sense-Aid, every device the rotation touched.
        This is the denominator Figs. 11 and 13 average over.
        """
        return [
            device_id
            for device_id, joules in self.energy.per_device_j.items()
            if joules > 1e-6
        ]

    def mean_energy_per_active_device_j(self) -> float:
        active = self.active_devices()
        if not active:
            return 0.0
        return self.energy.total_j / len(active)

    def detached(self) -> "ArmResult":
        """A plain-data copy safe to pickle across process boundaries.

        The live simulation world (devices, server, clients, baseline
        frameworks) holds closures and cross-references that cannot —
        and should not — travel between worker processes; a detached
        result keeps every derived metric (energy summary, selection
        log, per-request counts) and summarises the world objects that
        downstream analysis actually reads into plain ``extras`` keys.
        """
        extras: Dict[str, object] = {}
        server = self.extras.get("server")
        if server is not None:
            extras["selections_per_device"] = dict(server.selections_per_device())
        return ArmResult(
            name=self.name,
            energy=self.energy,
            data_points=self.data_points,
            participants_per_request=dict(self.participants_per_request),
            devices=[],
            selection_log=list(self.selection_log),
            qualified_per_request=dict(self.qualified_per_request),
            extras=extras,
        )


def _build_world(config: ScenarioConfig):
    """Simulator + campus + towers + network + population."""
    sim = Simulator(seed=config.seed)
    campus = default_campus()
    registry = TowerRegistry(
        grid_towers(campus.width_m, campus.height_m, rows=2, cols=2)
    )
    network = CellularNetwork(sim)
    devices = build_population(sim, campus, config.population)
    return sim, campus, registry, network, devices


def _run_duration(tasks: Sequence[TaskParams]) -> float:
    longest = max(t.start_offset_s + t.sampling_duration_s for t in tasks)
    return longest + RUN_SLACK_S


def run_sense_aid_arm(
    config: ScenarioConfig,
    tasks: Sequence[TaskParams],
    mode: ServerMode,
    *,
    select_all_qualified: bool = False,
    weights: Optional[SelectorWeights] = None,
) -> ArmResult:
    """Run Sense-Aid (Basic or Complete) over the scenario's world."""
    if not tasks:
        raise ValueError("at least one task is required")
    sim, campus, registry, network, devices = _build_world(config)
    server_config = SenseAidConfig(
        mode=mode,
        select_all_qualified=select_all_qualified,
        weights=weights if weights is not None else SelectorWeights(),
    )
    server = SenseAidServer(sim, registry, network, server_config)
    clients = []
    for device in devices:
        client = SenseAidClient(sim, device, server, network)
        client.register()
        clients.append(client)
    cas = CrowdsensingAppServer(server, "cas-weather")
    for params in tasks:
        cas.task(
            params.sensor,
            campus.site(params.site).position,
            params.area_radius_m,
            params.spatial_density,
            sampling_period_s=params.sampling_period_s,
            sampling_duration_s=params.sampling_duration_s,
        )
    sim.run(until=_run_duration(tasks))
    server.shutdown()
    name = "sense-aid-basic" if mode is ServerMode.BASIC else "sense-aid-complete"
    if select_all_qualified:
        name += "-all"
    return ArmResult(
        name=name,
        energy=summarize_devices(devices),
        data_points=server.stats.data_points,
        participants_per_request={
            e.request_id: len(e.selected) for e in server.selection_log
        },
        devices=devices,
        selection_log=list(server.selection_log),
        qualified_per_request={
            e.request_id: len(e.qualified) for e in server.selection_log
        },
        extras={"server": server, "clients": clients, "cas": cas},
    )


def run_periodic_arm(
    config: ScenarioConfig, tasks: Sequence[TaskParams]
) -> ArmResult:
    """Run the Periodic baseline over the scenario's world."""
    if not tasks:
        raise ValueError("at least one task is required")
    sim, campus, registry, network, devices = _build_world(config)
    framework = PeriodicFramework(sim, network, devices)
    for params in tasks:
        framework.add_task(params.to_spec(campus, "periodic"))
    sim.run(until=_run_duration(tasks))
    return ArmResult(
        name="periodic",
        energy=summarize_devices(devices),
        data_points=framework.stats.data_points_delivered,
        participants_per_request=dict(framework.stats.participants_per_request),
        devices=devices,
        extras={"framework": framework},
    )


def run_coverage_arm(
    config: ScenarioConfig, tasks: Sequence[TaskParams]
) -> ArmResult:
    """Run the coverage-recruitment (CrowdRecruiter-style) comparator."""
    if not tasks:
        raise ValueError("at least one task is required")
    sim, campus, registry, network, devices = _build_world(config)
    framework = CoverageFramework(sim, network, devices)
    for params in tasks:
        framework.add_task(params.to_spec(campus, "coverage"))
    sim.run(until=_run_duration(tasks))
    return ArmResult(
        name="coverage",
        energy=summarize_devices(devices),
        data_points=framework.stats.data_points_delivered,
        participants_per_request=dict(framework.stats.participants_per_request),
        devices=devices,
        extras={"framework": framework},
    )


def run_arm(
    kind: str,
    config: ScenarioConfig,
    tasks: Sequence[TaskParams],
    **kwargs,
) -> ArmResult:
    """Run one framework arm by name.

    A single module-level entry point the parallel engine
    (:class:`repro.runner.ExperimentEngine`) can pickle into worker
    processes; ``kind`` is one of ``periodic``, ``pcs``, ``coverage``,
    ``sense-aid-basic``, or ``sense-aid-complete``, and extra keyword
    arguments flow to the underlying arm runner.
    """
    if kind == "periodic":
        return run_periodic_arm(config, tasks, **kwargs)
    if kind == "pcs":
        return run_pcs_arm(config, tasks, **kwargs)
    if kind == "coverage":
        return run_coverage_arm(config, tasks, **kwargs)
    if kind == "sense-aid-basic":
        return run_sense_aid_arm(config, tasks, ServerMode.BASIC, **kwargs)
    if kind == "sense-aid-complete":
        return run_sense_aid_arm(config, tasks, ServerMode.COMPLETE, **kwargs)
    raise ValueError(
        f"unknown arm kind {kind!r}; expected periodic, pcs, coverage, "
        "sense-aid-basic, or sense-aid-complete"
    )


def run_pcs_arm(
    config: ScenarioConfig,
    tasks: Sequence[TaskParams],
    *,
    accuracy: float = 0.40,
    oracle_sessions: bool = False,
) -> ArmResult:
    """Run the PCS baseline over the scenario's world."""
    if not tasks:
        raise ValueError("at least one task is required")
    sim, campus, registry, network, devices = _build_world(config)
    framework = PCSFramework(
        sim, network, devices, accuracy=accuracy, oracle_sessions=oracle_sessions
    )
    for params in tasks:
        framework.add_task(params.to_spec(campus, "pcs"))
    sim.run(until=_run_duration(tasks))
    return ArmResult(
        name=f"pcs@{accuracy:.0%}",
        energy=summarize_devices(devices),
        data_points=framework.stats.data_points_delivered,
        participants_per_request=dict(framework.stats.participants_per_request),
        devices=devices,
        extras={"framework": framework},
    )
