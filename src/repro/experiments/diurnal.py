"""Diurnal extension experiment: savings across a day of phone usage.

Not a paper figure — an extension probing the mechanism behind the
paper's results: Sense-Aid's cheap uploads depend on the user's own
traffic opening radio tails, so its advantage should track the daily
rhythm of phone use.  A 24-hour campaign with a diurnal traffic
modulation (quiet nights, busy evenings) measures energy per 4-hour
window for Sense-Aid Complete vs Periodic.

Expected shape: overnight, tails are rare, Sense-Aid falls back to
deadline uploads and its saving shrinks toward the pure orchestration
gain; during waking hours the tail-riding works and the saving is
large — evidence for the paper's premise that crowdsensing and regular
traffic synergise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.tables import format_table
from repro.cellular.enodeb import TowerRegistry, grid_towers
from repro.cellular.network import CellularNetwork
from repro.cellular.packets import TrafficCategory
from repro.clientlib import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer
from repro.devices.sensors import SensorType
from repro.devices.traffic import diurnal_modulator
from repro.environment.campus import CS_DEPARTMENT, default_campus
from repro.environment.population import PopulationConfig, build_population
from repro.runner import ExperimentEngine
from repro.serverlib import CrowdsensingAppServer
from repro.sim.engine import Simulator

DAY_S = 24 * 3600.0
WINDOW_S = 4 * 3600.0
SAMPLING_PERIOD_S = 600.0
DENSITY = 2
RADIUS_M = 1000.0


@dataclass(frozen=True)
class WindowRow:
    """Energy in one 4-hour window of the day."""

    window_label: str
    sense_aid_j: float
    periodic_j: float

    @property
    def saving_pct(self) -> float:
        if self.periodic_j == 0:
            return 0.0
        return (1.0 - self.sense_aid_j / self.periodic_j) * 100.0


def _window_energy(samples: List[float], window: int) -> float:
    """Energy accumulated in window ``window`` from cumulative samples."""
    start = samples[window]
    end = samples[window + 1]
    return end - start


def _run_framework(seed: int, use_sense_aid: bool) -> List[float]:  # noqa: C901
    """Run 24 h; return cumulative crowdsensing energy at window edges."""
    sim = Simulator(seed=seed)
    campus = default_campus()
    network = CellularNetwork(sim)
    devices = build_population(
        sim, campus, PopulationConfig(size=20), start_traffic=False
    )
    modulator = diurnal_modulator()
    for device in devices:
        device.traffic.set_gap_modulator(modulator)
        device.traffic.start()
    server: Optional[SenseAidServer] = None
    if use_sense_aid:
        registry = TowerRegistry(grid_towers(campus.width_m, campus.height_m))
        server = SenseAidServer(
            sim, registry, network, SenseAidConfig(mode=ServerMode.COMPLETE)
        )
        for device in devices:
            SenseAidClient(sim, device, server, network).register()
        cas = CrowdsensingAppServer(server, "diurnal")
        cas.task(
            SensorType.BAROMETER,
            campus.site(CS_DEPARTMENT).position,
            area_radius_m=RADIUS_M,
            spatial_density=DENSITY,
            sampling_period_s=SAMPLING_PERIOD_S,
            sampling_duration_s=DAY_S,
        )
    else:
        from repro.baselines import PeriodicFramework
        from repro.core.tasks import TaskSpec

        framework = PeriodicFramework(sim, network, devices)
        framework.add_task(
            TaskSpec(
                sensor_type=SensorType.BAROMETER,
                center=campus.site(CS_DEPARTMENT).position,
                area_radius_m=RADIUS_M,
                spatial_density=DENSITY,
                sampling_period_s=SAMPLING_PERIOD_S,
                sampling_duration_s=DAY_S,
                origin="diurnal",
            )
        )
    cumulative = [0.0]
    for w in range(int(DAY_S / WINDOW_S)):
        sim.run(until=(w + 1) * WINDOW_S)
        cumulative.append(sum(d.crowdsensing_energy_j() for d in devices))
    if server is not None:
        server.shutdown()
    return cumulative


def run(
    seed: int = 7, *, engine: Optional["ExperimentEngine"] = None
) -> List[WindowRow]:
    if engine is None:
        engine = ExperimentEngine()
    sense_aid, periodic = engine.run_points(
        _run_framework,
        [
            {"seed": seed, "use_sense_aid": True},
            {"seed": seed, "use_sense_aid": False},
        ],
    )
    rows = []
    for w in range(int(DAY_S / WINDOW_S)):
        label = f"{4 * w:02d}:00-{4 * w + 4:02d}:00"
        rows.append(
            WindowRow(
                window_label=label,
                sense_aid_j=_window_energy(sense_aid, w),
                periodic_j=_window_energy(periodic, w),
            )
        )
    return rows


def main(seed: int = 7, engine: Optional[ExperimentEngine] = None) -> str:
    rows = run(seed, engine=engine)
    table = format_table(
        ["window", "Sense-Aid (J)", "Periodic (J)", "saving"],
        [
            (r.window_label, r.sense_aid_j, r.periodic_j, f"{r.saving_pct:.1f}%")
            for r in rows
        ],
        title="Diurnal extension — energy per 4 h window "
        "(quiet nights starve the tail-riding)",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
