"""Experiment 1 — impact of the task's area radius (Figs. 7, 8, 9).

Setup (paper Table 2): tasks need barometer values around the CS
department; radius sweeps {100, 200, 300, 400, 500, 1000} m; each test
lasts 90 minutes with a 10-minute sampling period and spatial density
2; one task per device set.

Reproduced artifacts:

- **Fig. 7** — the number of qualified devices grows with the radius.
- **Fig. 8** — total crowdsensing energy across devices: Sense-Aid
  Basic and Complete use far less than PCS, and the gap widens with
  the radius (PCS tasks every qualified device; Sense-Aid keeps
  selecting only 2).
- **Fig. 9** — the selection timeline at radius 1000 m: the selector
  rotates through the qualified devices so each is picked a fair
  number of times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.energy import savings_pct
from repro.analysis.fairness import fairness_report
from repro.analysis.tables import format_bar_chart, format_table
from repro.core.config import ServerMode
from repro.core.server import SelectionEvent
from repro.experiments.common import (
    ArmResult,
    ScenarioConfig,
    TaskParams,
    run_pcs_arm,
    run_periodic_arm,
    run_sense_aid_arm,
)
from repro.runner import ExperimentEngine

RADII_M = (100.0, 200.0, 300.0, 400.0, 500.0, 1000.0)
TEST_DURATION_S = 90 * 60.0
SAMPLING_PERIOD_S = 10 * 60.0
SPATIAL_DENSITY = 2


@dataclass(frozen=True)
class RadiusPoint:
    """All four arms at one radius."""

    radius_m: float
    qualified_mean: float
    periodic: ArmResult
    pcs: ArmResult
    basic: ArmResult
    complete: ArmResult

    def savings_row(self) -> Dict[str, float]:
        """Table-2-style savings percentages at this radius."""
        e_per = self.periodic.energy.total_j
        e_pcs = self.pcs.energy.total_j
        return {
            "basic_vs_periodic": savings_pct(self.basic.energy.total_j, e_per),
            "complete_vs_periodic": savings_pct(self.complete.energy.total_j, e_per),
            "basic_vs_pcs": savings_pct(self.basic.energy.total_j, e_pcs),
            "complete_vs_pcs": savings_pct(self.complete.energy.total_j, e_pcs),
        }


@dataclass
class Experiment1Result:
    points: List[RadiusPoint]
    #: Fig. 9 source: the Sense-Aid selection log of the 1000 m test.
    fairness_log: List[SelectionEvent]
    fairness_counts: Dict[str, int]

    def fig7_rows(self) -> List[Tuple[float, float]]:
        return [(p.radius_m, p.qualified_mean) for p in self.points]

    def fig8_rows(self) -> List[Tuple[float, float, float, float]]:
        return [
            (
                p.radius_m,
                p.pcs.energy.total_j,
                p.basic.energy.total_j,
                p.complete.energy.total_j,
            )
            for p in self.points
        ]

    def fig9_matrix(self) -> List[Tuple[float, Tuple[str, ...]]]:
        """(selection time, selected device ids) per selector round."""
        return [(e.time, e.selected) for e in self.fairness_log]


def _task(radius_m: float) -> TaskParams:
    return TaskParams(
        area_radius_m=radius_m,
        spatial_density=SPATIAL_DENSITY,
        sampling_period_s=SAMPLING_PERIOD_S,
        sampling_duration_s=TEST_DURATION_S,
    )


def _radius_point(config: ScenarioConfig, radius_m: float) -> RadiusPoint:
    """One sweep point: all four frameworks at one radius (picklable)."""
    tasks = [_task(radius_m)]
    periodic = run_periodic_arm(config, tasks)
    pcs = run_pcs_arm(config, tasks)
    basic = run_sense_aid_arm(config, tasks, ServerMode.BASIC)
    complete = run_sense_aid_arm(config, tasks, ServerMode.COMPLETE)
    return RadiusPoint(
        radius_m=radius_m,
        qualified_mean=basic.mean_qualified(),
        periodic=periodic.detached(),
        pcs=pcs.detached(),
        basic=basic.detached(),
        complete=complete.detached(),
    )


def run(
    config: Optional[ScenarioConfig] = None,
    radii_m: Sequence[float] = RADII_M,
    *,
    engine: Optional[ExperimentEngine] = None,
) -> Experiment1Result:
    """Run the full radius sweep (all four frameworks per radius)."""
    if config is None:
        config = ScenarioConfig()
    if engine is None:
        engine = ExperimentEngine()
    points: List[RadiusPoint] = engine.run_points(
        _radius_point,
        [{"config": config, "radius_m": radius} for radius in radii_m],
    )
    fairness_log: List[SelectionEvent] = []
    fairness_counts: Dict[str, int] = {}
    for point in points:
        if point.radius_m == max(radii_m):
            fairness_log = point.basic.selection_log
            fairness_counts = point.basic.extras["selections_per_device"]
    return Experiment1Result(
        points=points,
        fairness_log=fairness_log,
        fairness_counts=fairness_counts,
    )


def main(
    config: Optional[ScenarioConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> str:
    result = run(config, engine=engine)
    lines = []
    lines.append(
        format_table(
            ["radius (m)", "qualified devices"],
            result.fig7_rows(),
            title="Figure 7 — qualified devices at the CS department vs area radius",
        )
    )
    lines.append("")
    lines.append(
        format_table(
            ["radius (m)", "PCS (J)", "SA-Basic (J)", "SA-Complete (J)"],
            result.fig8_rows(),
            title="Figure 8 — total crowdsensing energy vs area radius "
            "(Periodic omitted as in the paper; see savings below)",
        )
    )
    lines.append("")
    bar_rows = []
    for radius, pcs_j, basic_j, complete_j in result.fig8_rows():
        bar_rows.append((f"{radius:.0f}m PCS", pcs_j))
        bar_rows.append((f"{radius:.0f}m SA-C", complete_j))
    lines.append(
        format_bar_chart(bar_rows, title="Figure 8 as bars (J):", width=46)
    )
    lines.append("")
    savings_rows = []
    for point in result.points:
        s = point.savings_row()
        savings_rows.append(
            (
                point.radius_m,
                f"{s['basic_vs_periodic']:.1f}%",
                f"{s['complete_vs_periodic']:.1f}%",
                f"{s['basic_vs_pcs']:.1f}%",
                f"{s['complete_vs_pcs']:.1f}%",
            )
        )
    lines.append(
        format_table(
            ["radius (m)", "B/Periodic", "C/Periodic", "B/PCS", "C/PCS"],
            savings_rows,
            title="Experiment 1 — Sense-Aid energy savings per radius",
        )
    )
    lines.append("")
    lines.append("Figure 9 — selection rounds at radius 1000 m (fair rotation):")
    for time, selected in result.fig9_matrix():
        lines.append(f"  t={time / 60.0:5.1f} min  selected: {', '.join(selected)}")
    report = fairness_report(result.fairness_counts)
    lines.append(
        f"  per-device selection counts: min={report['min_selections']} "
        f"max={report['max_selections']} jain={report['jain_index']:.3f}"
    )
    output = "\n".join(lines)
    print(output)
    return output


if __name__ == "__main__":
    main()
