"""Experiment 2 — impact of the sampling period (Figs. 10, 11).

Setup (paper Table 2): 2-hour tests, one task, spatial density 3,
radius 500 m around the CS department, sampling period swept over
{1, 5, 10} minutes.

Reproduced artifacts:

- **Fig. 10** — devices selected per test: Sense-Aid selects exactly
  the spatial density (3) regardless of period; Periodic and PCS task
  every qualified device.
- **Fig. 11** — average energy per participating device falls as the
  period grows; Sense-Aid stays far below PCS and Periodic, and at the
  1-minute period every framework's most-loaded devices approach or
  exceed the 2% budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.energy import savings_pct
from repro.analysis.tables import format_table
from repro.core.config import ServerMode
from repro.devices.battery import TWO_PERCENT_BUDGET_J
from repro.experiments.common import (
    ArmResult,
    ScenarioConfig,
    TaskParams,
    run_pcs_arm,
    run_periodic_arm,
    run_sense_aid_arm,
)
from repro.runner import ExperimentEngine

PERIODS_S = (60.0, 300.0, 600.0)
TEST_DURATION_S = 2 * 3600.0
SPATIAL_DENSITY = 3
AREA_RADIUS_M = 500.0


@dataclass(frozen=True)
class PeriodPoint:
    period_s: float
    periodic: ArmResult
    pcs: ArmResult
    basic: ArmResult
    complete: ArmResult

    def selected_counts(self) -> Dict[str, float]:
        """Fig. 10: mean devices used per request, per framework."""
        return {
            "periodic": self.periodic.mean_participants(),
            "pcs": self.pcs.mean_participants(),
            "sense-aid": self.basic.mean_participants(),
        }

    def energy_per_device(self) -> Dict[str, float]:
        """Fig. 11: mean Joules per participating device."""
        return {
            "periodic": self.periodic.mean_energy_per_active_device_j(),
            "pcs": self.pcs.mean_energy_per_active_device_j(),
            "basic": self.basic.mean_energy_per_active_device_j(),
            "complete": self.complete.mean_energy_per_active_device_j(),
        }

    def savings_row(self) -> Dict[str, float]:
        e_per = self.periodic.energy.total_j
        e_pcs = self.pcs.energy.total_j
        return {
            "basic_vs_periodic": savings_pct(self.basic.energy.total_j, e_per),
            "complete_vs_periodic": savings_pct(self.complete.energy.total_j, e_per),
            "basic_vs_pcs": savings_pct(self.basic.energy.total_j, e_pcs),
            "complete_vs_pcs": savings_pct(self.complete.energy.total_j, e_pcs),
        }


@dataclass
class Experiment2Result:
    points: List[PeriodPoint]

    def fig10_rows(self) -> List[Tuple[str, float, float, float]]:
        rows = []
        for p in self.points:
            counts = p.selected_counts()
            rows.append(
                (
                    f"{p.period_s / 60:.0f} min",
                    counts["periodic"],
                    counts["pcs"],
                    counts["sense-aid"],
                )
            )
        return rows

    def fig11_rows(self) -> List[Tuple[str, float, float, float, float]]:
        rows = []
        for p in self.points:
            energy = p.energy_per_device()
            rows.append(
                (
                    f"{p.period_s / 60:.0f} min",
                    energy["periodic"],
                    energy["pcs"],
                    energy["basic"],
                    energy["complete"],
                )
            )
        return rows


def _task(period_s: float) -> TaskParams:
    return TaskParams(
        area_radius_m=AREA_RADIUS_M,
        spatial_density=SPATIAL_DENSITY,
        sampling_period_s=period_s,
        sampling_duration_s=TEST_DURATION_S,
    )


def _period_point(config: ScenarioConfig, period_s: float) -> PeriodPoint:
    """One sweep point: all four frameworks at one period (picklable)."""
    tasks = [_task(period_s)]
    return PeriodPoint(
        period_s=period_s,
        periodic=run_periodic_arm(config, tasks).detached(),
        pcs=run_pcs_arm(config, tasks).detached(),
        basic=run_sense_aid_arm(config, tasks, ServerMode.BASIC).detached(),
        complete=run_sense_aid_arm(config, tasks, ServerMode.COMPLETE).detached(),
    )


def run(
    config: Optional[ScenarioConfig] = None,
    periods_s: Sequence[float] = PERIODS_S,
    *,
    engine: Optional[ExperimentEngine] = None,
) -> Experiment2Result:
    if config is None:
        config = ScenarioConfig()
    if engine is None:
        engine = ExperimentEngine()
    points = engine.run_points(
        _period_point,
        [{"config": config, "period_s": period} for period in periods_s],
    )
    return Experiment2Result(points=points)


def main(
    config: Optional[ScenarioConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> str:
    result = run(config, engine=engine)
    lines = []
    lines.append(
        format_table(
            ["period", "Periodic", "PCS", "Sense-Aid"],
            result.fig10_rows(),
            title=(
                "Figure 10 — devices selected per request "
                f"(minimum required: {SPATIAL_DENSITY})"
            ),
        )
    )
    lines.append("")
    lines.append(
        format_table(
            ["period", "Periodic (J)", "PCS (J)", "SA-Basic (J)", "SA-Complete (J)"],
            result.fig11_rows(),
            title=(
                "Figure 11 — mean energy per participating device "
                f"(2% budget bar = {TWO_PERCENT_BUDGET_J:.0f} J)"
            ),
        )
    )
    lines.append("")
    savings_rows = []
    for point in result.points:
        s = point.savings_row()
        savings_rows.append(
            (
                f"{point.period_s / 60:.0f} min",
                f"{s['basic_vs_periodic']:.1f}%",
                f"{s['complete_vs_periodic']:.1f}%",
                f"{s['basic_vs_pcs']:.1f}%",
                f"{s['complete_vs_pcs']:.1f}%",
            )
        )
    lines.append(
        format_table(
            ["period", "B/Periodic", "C/Periodic", "B/PCS", "C/PCS"],
            savings_rows,
            title="Experiment 2 — Sense-Aid energy savings per sampling period",
        )
    )
    output = "\n".join(lines)
    print(output)
    return output


if __name__ == "__main__":
    main()
