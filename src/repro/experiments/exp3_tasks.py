"""Experiment 3 — impact of concurrent tasks per device (Figs. 12, 13).

Setup (paper Table 2): 90-minute tests, 5-minute sampling period,
spatial density 3, radius 500 m; the number of concurrent tasks sweeps
{3, 5, 10, 15}.  Concurrent tasks come from independent applications,
so their sampling instants are staggered across the period rather than
ticking in lockstep.

Reproduced artifacts:

- **Fig. 12** — devices selected: Periodic/PCS task all qualified
  devices for every task; Sense-Aid schedules the multiple tasks over
  the limited pool of qualified devices (so selected counts track the
  pool, not density × tasks).
- **Fig. 13** — energy per device rises with the task count for every
  framework, but Sense-Aid's rises far more slowly because pending
  assignments amortise: any radio burst flushes a device's whole
  backlog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.energy import savings_pct
from repro.analysis.tables import format_table
from repro.core.config import ServerMode
from repro.experiments.common import (
    ArmResult,
    ScenarioConfig,
    TaskParams,
    run_pcs_arm,
    run_periodic_arm,
    run_sense_aid_arm,
)
from repro.runner import ExperimentEngine

TASK_COUNTS = (3, 5, 10, 15)
TEST_DURATION_S = 90 * 60.0
SAMPLING_PERIOD_S = 5 * 60.0
SPATIAL_DENSITY = 3
AREA_RADIUS_M = 500.0


@dataclass(frozen=True)
class TaskCountPoint:
    task_count: int
    periodic: ArmResult
    pcs: ArmResult
    basic: ArmResult
    complete: ArmResult

    def selected_counts(self) -> Dict[str, float]:
        return {
            "periodic": self.periodic.mean_participants(),
            "pcs": self.pcs.mean_participants(),
            "sense-aid": self.basic.mean_participants(),
        }

    def energy_per_device(self) -> Dict[str, float]:
        return {
            "periodic": self.periodic.mean_energy_per_active_device_j(),
            "pcs": self.pcs.mean_energy_per_active_device_j(),
            "basic": self.basic.mean_energy_per_active_device_j(),
            "complete": self.complete.mean_energy_per_active_device_j(),
        }

    def savings_row(self) -> Dict[str, float]:
        e_per = self.periodic.energy.total_j
        e_pcs = self.pcs.energy.total_j
        return {
            "basic_vs_periodic": savings_pct(self.basic.energy.total_j, e_per),
            "complete_vs_periodic": savings_pct(self.complete.energy.total_j, e_per),
            "basic_vs_pcs": savings_pct(self.basic.energy.total_j, e_pcs),
            "complete_vs_pcs": savings_pct(self.complete.energy.total_j, e_pcs),
        }


@dataclass
class Experiment3Result:
    points: List[TaskCountPoint]

    def fig12_rows(self) -> List[Tuple[int, float, float, float]]:
        rows = []
        for p in self.points:
            counts = p.selected_counts()
            rows.append(
                (p.task_count, counts["periodic"], counts["pcs"], counts["sense-aid"])
            )
        return rows

    def fig13_rows(self) -> List[Tuple[int, float, float, float, float]]:
        rows = []
        for p in self.points:
            energy = p.energy_per_device()
            rows.append(
                (
                    p.task_count,
                    energy["periodic"],
                    energy["pcs"],
                    energy["basic"],
                    energy["complete"],
                )
            )
        return rows


def _tasks(count: int) -> List[TaskParams]:
    """``count`` concurrent tasks, staggered across one period."""
    return [
        TaskParams(
            area_radius_m=AREA_RADIUS_M,
            spatial_density=SPATIAL_DENSITY,
            sampling_period_s=SAMPLING_PERIOD_S,
            sampling_duration_s=TEST_DURATION_S,
            start_offset_s=i * SAMPLING_PERIOD_S / count,
        )
        for i in range(count)
    ]


def _count_point(config: ScenarioConfig, task_count: int) -> TaskCountPoint:
    """One sweep point: all four frameworks at one task count."""
    tasks = _tasks(task_count)
    return TaskCountPoint(
        task_count=task_count,
        periodic=run_periodic_arm(config, tasks).detached(),
        pcs=run_pcs_arm(config, tasks).detached(),
        basic=run_sense_aid_arm(config, tasks, ServerMode.BASIC).detached(),
        complete=run_sense_aid_arm(config, tasks, ServerMode.COMPLETE).detached(),
    )


def run(
    config: Optional[ScenarioConfig] = None,
    task_counts: Sequence[int] = TASK_COUNTS,
    *,
    engine: Optional[ExperimentEngine] = None,
) -> Experiment3Result:
    if config is None:
        config = ScenarioConfig()
    if engine is None:
        engine = ExperimentEngine()
    points = engine.run_points(
        _count_point,
        [{"config": config, "task_count": count} for count in task_counts],
    )
    return Experiment3Result(points=points)


def main(
    config: Optional[ScenarioConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> str:
    result = run(config, engine=engine)
    lines = []
    lines.append(
        format_table(
            ["tasks", "Periodic", "PCS", "Sense-Aid"],
            result.fig12_rows(),
            title="Figure 12 — devices selected per request vs concurrent tasks",
        )
    )
    lines.append("")
    lines.append(
        format_table(
            ["tasks", "Periodic (J)", "PCS (J)", "SA-Basic (J)", "SA-Complete (J)"],
            result.fig13_rows(),
            title=(
                "Figure 13 — mean energy per participating device "
                "vs concurrent tasks"
            ),
        )
    )
    lines.append("")
    savings_rows = []
    for point in result.points:
        s = point.savings_row()
        savings_rows.append(
            (
                point.task_count,
                f"{s['basic_vs_periodic']:.1f}%",
                f"{s['complete_vs_periodic']:.1f}%",
                f"{s['basic_vs_pcs']:.1f}%",
                f"{s['complete_vs_pcs']:.1f}%",
            )
        )
    lines.append(
        format_table(
            ["tasks", "B/Periodic", "C/Periodic", "B/PCS", "C/PCS"],
            savings_rows,
            title="Experiment 3 — Sense-Aid energy savings vs concurrent tasks",
        )
    )
    output = "\n".join(lines)
    print(output)
    return output


if __name__ == "__main__":
    main()
