"""Figure 14 — Sense-Aid vs PCS at different prediction accuracies.

The paper's three main experiments pin PCS at the 40% top-1-app
accuracy observed by Lane et al.; Fig. 14 then asks how good the
predictor would have to be for PCS to win.  The paper's energy cost
model assumes a *correct* prediction always yields a piggyback
opportunity, so we run PCS in ``oracle_sessions`` mode here (the
predicted session materialises somewhere in the window) and sweep the
accuracy from 40% to the 100% ideal.

Expected shape: at realistic accuracies PCS costs a multiple of
Sense-Aid; only near-perfect prediction lets PCS undercut Sense-Aid
(the paper's ideal-PCS points are 75.8% of Basic's and 85% of
Complete's energy) — which is the paper's argument that purely local
decisions need an implausibly good personalised model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.core.config import ServerMode
from repro.experiments.common import (
    ScenarioConfig,
    TaskParams,
    run_pcs_arm,
    run_sense_aid_arm,
)

ACCURACIES = (0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 1.00)
TEST_DURATION_S = 2 * 3600.0
SAMPLING_PERIOD_S = 5 * 60.0
SPATIAL_DENSITY = 3
AREA_RADIUS_M = 500.0


@dataclass(frozen=True)
class AccuracyPoint:
    accuracy: float
    pcs_energy_per_device_j: float
    ratio_vs_basic: float
    ratio_vs_complete: float


@dataclass
class Figure14Result:
    basic_energy_per_device_j: float
    complete_energy_per_device_j: float
    points: List[AccuracyPoint]

    def crossover_accuracy(self, *, against: str = "basic") -> Optional[float]:
        """The lowest swept accuracy at which PCS beats Sense-Aid."""
        target = 1.0
        for point in self.points:
            ratio = (
                point.ratio_vs_basic if against == "basic" else point.ratio_vs_complete
            )
            if ratio < target:
                return point.accuracy
        return None


def _task() -> TaskParams:
    return TaskParams(
        area_radius_m=AREA_RADIUS_M,
        spatial_density=SPATIAL_DENSITY,
        sampling_period_s=SAMPLING_PERIOD_S,
        sampling_duration_s=TEST_DURATION_S,
    )


def run(
    config: Optional[ScenarioConfig] = None,
    accuracies: Sequence[float] = ACCURACIES,
) -> Figure14Result:
    if config is None:
        config = ScenarioConfig()
    tasks = [_task()]
    basic = run_sense_aid_arm(config, tasks, ServerMode.BASIC)
    complete = run_sense_aid_arm(config, tasks, ServerMode.COMPLETE)
    basic_j = basic.mean_energy_per_active_device_j()
    complete_j = complete.mean_energy_per_active_device_j()
    points = []
    for accuracy in accuracies:
        pcs = run_pcs_arm(config, tasks, accuracy=accuracy, oracle_sessions=True)
        pcs_j = pcs.mean_energy_per_active_device_j()
        points.append(
            AccuracyPoint(
                accuracy=accuracy,
                pcs_energy_per_device_j=pcs_j,
                ratio_vs_basic=pcs_j / basic_j if basic_j else float("inf"),
                ratio_vs_complete=pcs_j / complete_j if complete_j else float("inf"),
            )
        )
    return Figure14Result(
        basic_energy_per_device_j=basic_j,
        complete_energy_per_device_j=complete_j,
        points=points,
    )


def main(config: Optional[ScenarioConfig] = None) -> str:
    result = run(config)
    rows: List[Tuple[str, float, float, float]] = [
        (
            f"{p.accuracy:.0%}",
            p.pcs_energy_per_device_j,
            p.ratio_vs_basic,
            p.ratio_vs_complete,
        )
        for p in result.points
    ]
    lines = [
        format_table(
            ["accuracy", "PCS J/device", "vs SA-Basic", "vs SA-Complete"],
            rows,
            title=(
                "Figure 14 — PCS energy vs prediction accuracy "
                f"(SA-Basic {result.basic_energy_per_device_j:.1f} J/device, "
                f"SA-Complete {result.complete_energy_per_device_j:.1f} J/device)"
            ),
            float_format="{:.2f}",
        )
    ]
    basic_cross = result.crossover_accuracy(against="basic")
    complete_cross = result.crossover_accuracy(against="complete")
    lines.append("")
    lines.append(
        "crossover (PCS cheaper than SA-Basic): "
        + (f"{basic_cross:.0%}" if basic_cross is not None else "never in sweep")
    )
    lines.append(
        "crossover (PCS cheaper than SA-Complete): "
        + (f"{complete_cross:.0%}" if complete_cross is not None else "never in sweep")
    )
    output = "\n".join(lines)
    print(output)
    return output


if __name__ == "__main__":
    main()
