"""Figure 2 — power consumption of two real crowdsensing apps.

The paper runs Pressurenet and WeatherSignal on a Galaxy S4, varying
the upload frequency (5-minute updates for 4 h, 10-minute updates for
8 h — equal update counts) over 3G and LTE, and shows every
configuration exceeding the 2% battery budget most users tolerate.

The reproduction drives the Periodic client model with app profiles
standing in for the two apps: Pressurenet samples only the barometer
and uploads a small payload; WeatherSignal samples a richer sensor set
(barometer, magnetometer, light, thermometer, hygrometer) and uploads
a larger payload, plus it takes a GPS fix per update and runs a higher
client-side overhead — which is why it is the more energy-hungry app
in the paper's measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.cellular.packets import TrafficCategory
from repro.cellular.power import profile_by_name
from repro.devices.battery import TWO_PERCENT_BUDGET_J
from repro.devices.device import SimDevice
from repro.devices.profiles import NOMINAL_PHONE
from repro.devices.sensors import SensorType
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class AppProfile:
    """Sensing/upload behaviour of one crowdsensing app."""

    name: str
    sensors: Tuple[SensorType, ...]
    upload_bytes: int
    gps_fix_per_update: bool
    overhead_mw: float  # steady client-side draw (wakelocks, processing)


PRESSURENET = AppProfile(
    name="Pressurenet",
    sensors=(SensorType.BAROMETER,),
    upload_bytes=600,
    gps_fix_per_update=False,
    overhead_mw=18.0,
)

WEATHERSIGNAL = AppProfile(
    name="WeatherSignal",
    sensors=(
        SensorType.BAROMETER,
        SensorType.MAGNETOMETER,
        SensorType.LIGHT,
        SensorType.THERMOMETER,
        SensorType.HYGROMETER,
    ),
    upload_bytes=2400,
    gps_fix_per_update=True,
    overhead_mw=35.0,
)

#: The paper's two test configurations: equal update counts.
CONFIGURATIONS = (
    ("5 min", 300.0, 4 * 3600.0),
    ("10 min", 600.0, 8 * 3600.0),
)


@dataclass(frozen=True)
class CaseStudyRow:
    """One bar of Figure 2."""

    app: str
    update_period_label: str
    radio: str
    duration_s: float
    updates: int
    energy_j: float
    battery_pct: float
    over_2pct_budget: bool


def run_single(
    app: AppProfile, period_s: float, duration_s: float, radio_name: str
) -> CaseStudyRow:
    """Simulate one app/frequency/radio configuration on a quiet phone."""
    sim = Simulator(seed=11)
    device = SimDevice(
        sim,
        device_id=f"case-{app.name}-{radio_name}-{period_s:.0f}",
        profile=NOMINAL_PHONE,
        radio_profile=profile_by_name(radio_name),
    )
    updates = int(duration_s // period_s)

    def one_update() -> None:
        for sensor in app.sensors:
            device.sample(sensor)
        if app.gps_fix_per_update:
            device.sample(SensorType.GPS)
        device.modem.transmit(
            app.upload_bytes, TrafficCategory.CROWDSENSING, resets_tail=True
        )

    for i in range(updates):
        sim.schedule_at(i * period_s, one_update)
    sim.run(until=duration_s)
    # Client-side steady overhead while the app runs.
    overhead_j = app.overhead_mw / 1000.0 * duration_s
    device.ledger.charge(
        TrafficCategory.CROWDSENSING, overhead_j, "app_overhead"
    )
    device.battery.drain(overhead_j)
    energy = device.crowdsensing_energy_j()
    return CaseStudyRow(
        app=app.name,
        update_period_label=f"{period_s / 60:.0f} min",
        radio=radio_name,
        duration_s=duration_s,
        updates=updates,
        energy_j=energy,
        battery_pct=device.battery.percent_of_capacity(energy),
        over_2pct_budget=energy > TWO_PERCENT_BUDGET_J,
    )


def run(
    apps: Sequence[AppProfile] = (PRESSURENET, WEATHERSIGNAL),
    radios: Sequence[str] = ("3G", "LTE"),
) -> List[CaseStudyRow]:
    """All Figure-2 bars."""
    rows = []
    for app in apps:
        for label, period_s, duration_s in CONFIGURATIONS:
            for radio in radios:
                rows.append(run_single(app, period_s, duration_s, radio))
    return rows


def main() -> str:
    rows = run()
    table = format_table(
        ["app", "period", "radio", "updates", "energy (J)", "battery %", "> 2% budget"],
        [
            (
                r.app,
                r.update_period_label,
                r.radio,
                r.updates,
                r.energy_j,
                f"{r.battery_pct:.2f}%",
                "yes" if r.over_2pct_budget else "no",
            )
            for r in rows
        ],
        title=(
            "Figure 2 — crowdsensing app energy vs the 2% tolerance bar "
            f"({TWO_PERCENT_BUDGET_J:.0f} J)"
        ),
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
