"""Seed-robustness extension: how stable are the headline savings?

The paper's numbers come from one live user study; a simulation can do
better and quantify run-to-run variance.  This experiment repeats the
representative campaign (radius 1000 m, density 2, 10-minute period,
90 minutes) over several independently seeded worlds and reports the
mean ± spread of every savings comparison — evidence that the
reproduction's conclusions don't hinge on one lucky world.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.energy import savings_pct
from repro.analysis.tables import format_table
from repro.core.config import ServerMode
from repro.experiments.common import (
    ScenarioConfig,
    TaskParams,
    run_pcs_arm,
    run_periodic_arm,
    run_sense_aid_arm,
)
from repro.runner import ExperimentEngine

DEFAULT_SEEDS = tuple(range(7, 17))

TASK = TaskParams(
    area_radius_m=1000.0,
    spatial_density=2,
    sampling_period_s=600.0,
    sampling_duration_s=5400.0,
)

COMPARISONS = (
    "basic_vs_periodic",
    "complete_vs_periodic",
    "basic_vs_pcs",
    "complete_vs_pcs",
)


@dataclass(frozen=True)
class RobustnessStats:
    """Savings distribution for one comparison across seeds."""

    comparison: str
    mean_pct: float
    std_pct: float
    min_pct: float
    max_pct: float
    samples: int


def _seed_savings(seed: int) -> Dict[str, float]:
    """All four savings comparisons in one seeded world (picklable)."""
    config = ScenarioConfig(seed=seed)
    tasks = [TASK]
    periodic = run_periodic_arm(config, tasks).energy.total_j
    pcs = run_pcs_arm(config, tasks).energy.total_j
    basic = run_sense_aid_arm(config, tasks, ServerMode.BASIC).energy.total_j
    complete = run_sense_aid_arm(config, tasks, ServerMode.COMPLETE).energy.total_j
    return {
        "basic_vs_periodic": savings_pct(basic, periodic),
        "complete_vs_periodic": savings_pct(complete, periodic),
        "basic_vs_pcs": savings_pct(basic, pcs),
        "complete_vs_pcs": savings_pct(complete, pcs),
    }


def run(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    *,
    engine: Optional[ExperimentEngine] = None,
) -> List[RobustnessStats]:
    if not seeds:
        raise ValueError("need at least one seed")
    if engine is None:
        engine = ExperimentEngine()
    worlds = engine.run_points(_seed_savings, [{"seed": seed} for seed in seeds])
    per_comparison: Dict[str, List[float]] = {key: [] for key in COMPARISONS}
    for world in worlds:
        for key in COMPARISONS:
            per_comparison[key].append(world[key])
    results = []
    for key in COMPARISONS:
        values = per_comparison[key]
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        results.append(
            RobustnessStats(
                comparison=key,
                mean_pct=mean,
                std_pct=math.sqrt(variance),
                min_pct=min(values),
                max_pct=max(values),
                samples=len(values),
            )
        )
    return results


def main(seed: int = 7, engine: Optional[ExperimentEngine] = None) -> str:
    """Seed argument anchors the range: seeds ``seed .. seed+9``."""
    stats = run(seeds=tuple(range(seed, seed + 10)), engine=engine)
    table = format_table(
        ["comparison", "mean", "std", "min", "max", "worlds"],
        [
            (
                s.comparison,
                f"{s.mean_pct:.1f}%",
                f"{s.std_pct:.1f}",
                f"{s.min_pct:.1f}%",
                f"{s.max_pct:.1f}%",
                s.samples,
            )
            for s in stats
        ],
        title=(
            "Robustness extension — savings across independently seeded "
            "worlds (radius 1 km, density 2, 10-min period, 90 min)"
        ),
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
