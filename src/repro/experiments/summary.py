"""Table 2 — the summary of energy savings across experiments 1–3.

For each experiment the table reports, over its parameter sweep, the
average (min, max) of four savings comparisons:

1. Sense-Aid Basic vs Periodic
2. Sense-Aid Complete vs Periodic
3. Sense-Aid Basic vs PCS
4. Sense-Aid Complete vs PCS
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.energy import min_mean_max
from repro.analysis.tables import format_min_mean_max, format_table
from repro.experiments import exp1_radius, exp2_period, exp3_tasks
from repro.experiments.common import ScenarioConfig

COMPARISONS = (
    ("basic_vs_periodic", "1: Basic/Periodic"),
    ("complete_vs_periodic", "2: Complete/Periodic"),
    ("basic_vs_pcs", "3: Basic/PCS"),
    ("complete_vs_pcs", "4: Complete/PCS"),
)


@dataclass(frozen=True)
class SummaryCell:
    """Average (min, max) savings for one comparison in one experiment."""

    comparison: str
    min_pct: float
    mean_pct: float
    max_pct: float

    def formatted(self) -> str:
        return format_min_mean_max(self.min_pct, self.mean_pct, self.max_pct)


@dataclass
class Table2Result:
    experiment_cells: Dict[str, List[SummaryCell]]

    def cell(self, experiment: str, comparison_key: str) -> SummaryCell:
        for cell in self.experiment_cells[experiment]:
            if cell.comparison == comparison_key:
                return cell
        raise KeyError(f"no cell {comparison_key!r} in {experiment!r}")


def _cells_from_savings(rows: List[Dict[str, float]]) -> List[SummaryCell]:
    cells = []
    for key, _label in COMPARISONS:
        lo, mean, hi = min_mean_max(row[key] for row in rows)
        cells.append(SummaryCell(key, lo, mean, hi))
    return cells


def run(config: Optional[ScenarioConfig] = None) -> Table2Result:
    """Run all three experiments and aggregate Table 2."""
    if config is None:
        config = ScenarioConfig()
    exp1 = exp1_radius.run(config)
    exp2 = exp2_period.run(config)
    exp3 = exp3_tasks.run(config)
    return Table2Result(
        experiment_cells={
            "Experiment 1 (area radius)": _cells_from_savings(
                [p.savings_row() for p in exp1.points]
            ),
            "Experiment 2 (sampling period)": _cells_from_savings(
                [p.savings_row() for p in exp2.points]
            ),
            "Experiment 3 (tasks per device)": _cells_from_savings(
                [p.savings_row() for p in exp3.points]
            ),
        }
    )


def main(config: Optional[ScenarioConfig] = None) -> str:
    result = run(config)
    rows: List[Tuple[str, str, str, str, str]] = []
    labels = {key: label for key, label in COMPARISONS}
    for experiment, cells in result.experiment_cells.items():
        formatted = {cell.comparison: cell.formatted() for cell in cells}
        rows.append(
            (
                experiment,
                formatted["basic_vs_periodic"],
                formatted["complete_vs_periodic"],
                formatted["basic_vs_pcs"],
                formatted["complete_vs_pcs"],
            )
        )
    table = format_table(
        [
            "experiment",
            labels["basic_vs_periodic"],
            labels["complete_vs_periodic"],
            labels["basic_vs_pcs"],
            labels["complete_vs_pcs"],
        ],
        rows,
        title="Table 2 — energy savings summary: average (min, max) per sweep",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
