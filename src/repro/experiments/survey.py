"""Figure 1 — the 109-respondent energy-tolerance survey.

The survey is *input data*, not a system output: the paper asked 109
university students "at what battery cost level are you willing to
take part in participatory sensing applications?"  The published
anchors are that 41.4% picked "up to 2%" and nobody picked "over
10%"; the remaining mass is distributed across the other buckets
consistently with the paper's reading that the *majority* tolerate at
most 2%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.tables import format_table

RESPONDENTS = 109

#: Fraction of respondents per tolerance bucket.  "up to 2%" = 41.4%
#: and "over 10%" = 0 are the paper's published numbers; the others
#: complete the distribution under the paper's majority-≤2% reading.
SURVEY_DISTRIBUTION: Dict[str, float] = {
    "up to 1%": 0.303,
    "up to 2%": 0.414,
    "up to 5%": 0.220,
    "up to 10%": 0.063,
    "over 10%": 0.0,
}


@dataclass(frozen=True)
class SurveyBucket:
    label: str
    fraction: float
    respondents: int


def run() -> List[SurveyBucket]:
    """The Figure-1 histogram as structured rows."""
    buckets = []
    assigned = 0
    labels = list(SURVEY_DISTRIBUTION)
    for i, label in enumerate(labels):
        fraction = SURVEY_DISTRIBUTION[label]
        if i == len(labels) - 1:
            count = RESPONDENTS - assigned if fraction > 0 else 0
        else:
            count = round(fraction * RESPONDENTS)
        assigned += count
        buckets.append(SurveyBucket(label, fraction, count))
    return buckets


def majority_tolerance_pct() -> float:
    """The cumulative share tolerating at most 2% (the paper's hook)."""
    return (
        SURVEY_DISTRIBUTION["up to 1%"] + SURVEY_DISTRIBUTION["up to 2%"]
    ) * 100.0


def main() -> str:
    buckets = run()
    table = format_table(
        ["battery tolerance", "share", "respondents"],
        [(b.label, f"{b.fraction * 100:.1f}%", b.respondents) for b in buckets],
        title="Figure 1 — tolerable battery cost for crowdsensing (109 respondents)",
    )
    lines = [
        table,
        "",
        f"majority tolerating <= 2%: {majority_tolerance_pct():.1f}%"
        " (paper: 41.4% chose 'up to 2%'; none over 10%)",
    ]
    output = "\n".join(lines)
    print(output)
    return output


if __name__ == "__main__":
    main()
