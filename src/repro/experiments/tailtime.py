"""Figure 6 — visualising the radio tail and an in-tail upload.

The paper's Fig. 6 is an AT&T-ARO screenshot: regular traffic at
~591 s opens the radio; at ~592.5 s the crowdsensing packets go out
during the tail; the tail then runs for about 10 more seconds and the
radio idles at ~602.5 s — a total connected stretch of ~11.5 s,
unchanged by the upload (the tail was not reset).

The reproduction replays exactly that scenario on the simulated modem
and returns the state timeline, ASCII-rendered like the ARO strip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.trace import RadioTraceRecorder, TraceSegment
from repro.cellular.packets import TrafficCategory
from repro.cellular.rrc import RRCState, TailPolicy
from repro.devices.device import SimDevice
from repro.sim.engine import Simulator

#: The Fig.-6 timeline anchors (seconds).
REGULAR_TRAFFIC_AT = 591.0
CROWDSENSING_AT = 592.5
OBSERVE_UNTIL = 610.0


@dataclass
class TailTimeResult:
    """The reproduced Fig.-6 story."""

    segments: List[TraceSegment]
    ascii_strip: str
    crowdsensing_energy_j: float
    idle_at: float
    connected_stretch_s: float
    tail_was_reset: bool


def run(*, reset_tail: bool = False, seed: int = 3) -> TailTimeResult:
    """Replay the Fig.-6 scenario.

    ``reset_tail=False`` is the Sense-Aid Complete behaviour the figure
    shows; ``True`` shows the stock-RRC (Basic) alternative for
    comparison.
    """
    sim = Simulator(seed=seed)
    policy = TailPolicy.RESET if reset_tail else TailPolicy.NO_RESET
    device = SimDevice(sim, "fig6-device", tail_policy=policy)
    recorder = RadioTraceRecorder(sim, device.modem)

    def regular_burst() -> None:
        device.modem.transmit(40_000, TrafficCategory.BACKGROUND)

    def crowdsensing_upload() -> None:
        device.modem.transmit(600, TrafficCategory.CROWDSENSING)

    sim.schedule_at(REGULAR_TRAFFIC_AT, regular_burst)
    sim.schedule_at(CROWDSENSING_AT, crowdsensing_upload)
    sim.run(until=OBSERVE_UNTIL)

    segments = recorder.segments(closed_at=OBSERVE_UNTIL)
    idle_at = OBSERVE_UNTIL
    for segment in segments:
        if segment.state is RRCState.IDLE and segment.start > REGULAR_TRAFFIC_AT:
            idle_at = segment.start
            break
    connected = idle_at - REGULAR_TRAFFIC_AT
    strip = recorder.render_ascii(
        until=OBSERVE_UNTIL,
        start=REGULAR_TRAFFIC_AT - 2.0,
        resolution_s=0.25,
        width=120,
    )
    return TailTimeResult(
        segments=segments,
        ascii_strip=strip,
        crowdsensing_energy_j=device.crowdsensing_energy_j(),
        idle_at=idle_at,
        connected_stretch_s=connected,
        tail_was_reset=reset_tail,
    )


def main() -> str:
    lines = ["Figure 6 — LTE radio states around an in-tail crowdsensing upload", ""]
    for reset in (False, True):
        result = run(reset_tail=reset)
        mode = (
            "tail NOT reset (Sense-Aid Complete)"
            if not reset
            else "tail reset (stock RRC / Basic)"
        )
        lines.append(f"[{mode}]")
        lines.append(
            f"  regular burst at {REGULAR_TRAFFIC_AT:.1f}s, crowdsensing upload at "
            f"{CROWDSENSING_AT:.1f}s, radio idle at {result.idle_at:.1f}s "
            f"(connected stretch {result.connected_stretch_s:.1f}s)"
        )
        lines.append(
            f"  crowdsensing marginal energy: {result.crowdsensing_energy_j:.3f} J"
        )
        lines.append(f"  strip (.idle P promo A active t tail, 0.25s/char):")
        lines.append(f"  {result.ascii_strip}")
        lines.append("")
    output = "\n".join(lines)
    print(output)
    return output


if __name__ == "__main__":
    main()
