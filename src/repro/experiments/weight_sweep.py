"""Selector-weight sensitivity extension: fairness vs energy.

The paper fixes α, β, γ, φ "configurable" but never maps the trade
space.  This extension sweeps the fairness weight β against the
radio-opportunism weight φ and charts the frontier: β-heavy selectors
spread load evenly (high Jain index) but sometimes pick cold radios;
φ-heavy selectors chase warm radios (lower energy) but concentrate
load.  The default weights sit on the knee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.fairness import jain_index
from repro.analysis.tables import format_table
from repro.core.config import SelectorWeights, ServerMode
from repro.experiments.common import ScenarioConfig, TaskParams, run_sense_aid_arm
from repro.runner import ExperimentEngine

TASK = TaskParams(
    area_radius_m=1000.0,
    spatial_density=2,
    sampling_period_s=600.0,
    sampling_duration_s=5400.0,
)

#: (label, weights) sweep from fairness-only to TTL-only.
DEFAULT_SWEEP: Tuple[Tuple[str, SelectorWeights], ...] = (
    ("fairness-only", SelectorWeights(alpha=0.0, beta=1.0, gamma=0.0, phi=0.0)),
    ("default", SelectorWeights()),
    ("balanced", SelectorWeights(beta=0.5, phi=0.0015)),
    ("ttl-leaning", SelectorWeights(beta=0.2, phi=0.003)),
    ("ttl-only", SelectorWeights(alpha=0.0, beta=0.0, gamma=0.0, phi=1.0)),
)


@dataclass(frozen=True)
class WeightPoint:
    """One weight setting's outcome."""

    label: str
    total_energy_j: float
    jain: float
    max_selections: int
    devices_used: int
    data_points: int


def _world_metrics(
    config: ScenarioConfig, weights: SelectorWeights, offset: int
) -> Tuple[float, float, int, int, int]:
    """One (weight setting, world) cell of the sweep (picklable)."""
    arm = run_sense_aid_arm(
        config.with_seed(config.seed + offset),
        [TASK],
        ServerMode.COMPLETE,
        weights=weights,
    )
    counts = arm.extras["server"].selections_per_device()
    return (
        arm.energy.total_j,
        jain_index(counts.values()),
        max(counts.values()) if counts else 0,
        len(counts),
        arm.data_points,
    )


def run(
    config: Optional[ScenarioConfig] = None,
    sweep: Sequence[Tuple[str, SelectorWeights]] = DEFAULT_SWEEP,
    *,
    worlds: int = 10,
    engine: Optional[ExperimentEngine] = None,
) -> List[WeightPoint]:
    """Average each weight setting over ``worlds`` seeded worlds —
    single-world energies swing by one forced upload (~13 J)."""
    if worlds < 1:
        raise ValueError("worlds must be positive")
    if config is None:
        config = ScenarioConfig()
    if engine is None:
        engine = ExperimentEngine()
    cells = engine.run_points(
        _world_metrics,
        [
            {"config": config, "weights": weights, "offset": offset}
            for _, weights in sweep
            for offset in range(worlds)
        ],
    )
    points = []
    n = float(worlds)
    for i, (label, _) in enumerate(sweep):
        rows = cells[i * worlds : (i + 1) * worlds]
        energies, jains, max_sels, used, data = zip(*rows)
        points.append(
            WeightPoint(
                label=label,
                total_energy_j=sum(energies) / n,
                jain=sum(jains) / n,
                max_selections=round(sum(max_sels) / n),
                devices_used=round(sum(used) / n),
                data_points=round(sum(data) / n),
            )
        )
    return points


def main(
    config: Optional[ScenarioConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> str:
    points = run(config, engine=engine)
    table = format_table(
        ["weights", "energy (J)", "Jain", "max sel", "devices", "data"],
        [
            (
                p.label,
                p.total_energy_j,
                f"{p.jain:.3f}",
                p.max_selections,
                p.devices_used,
                p.data_points,
            )
            for p in points
        ],
        title="Selector-weight sweep — the fairness/energy trade space",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
