"""Deterministic, scenario-driven fault injection (chaos layer).

Compose a :class:`FaultPlan` (what breaks, when), hand it to a
:class:`FaultInjector` bound to the live network/registry/server, and
run the simulation: bursty loss, delays, duplicates, reordering, tower
outages, partitions, and device churn all fire on schedule, drawn from
dedicated ``faults:*`` RNG streams so the rest of the world is
bit-identical to the fault-free same-seed run.
"""

from repro.faults.injector import FaultDecision, FaultInjector, FaultStats
from repro.faults.models import GilbertElliott
from repro.faults.plan import (
    ACTION_SCHEMAS,
    PLAN_SCHEMA,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
)


def reset_global_ids() -> None:
    """Reset process-global id counters (task ids, message ids).

    Named RNG streams make a single run reproducible, but task and
    message ids are allocated from process-global counters, so two
    same-seed runs executed back to back in one process would otherwise
    disagree on every id baked into the event log.  Replay harnesses
    (and the chaos benchmark's bit-identity check) call this before
    each run.
    """
    from repro.cellular.packets import reset_message_ids
    from repro.core.tasks import reset_task_ids

    reset_message_ids()
    reset_task_ids()


__all__ = [
    "ACTION_SCHEMAS",
    "PLAN_SCHEMA",
    "FaultDecision",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultStats",
    "GilbertElliott",
    "reset_global_ids",
]
