"""Deterministic fault injection for the client–network–server path.

:class:`FaultInjector` sits behind the :class:`CellularNetwork` fault
hook and executes a :class:`~repro.faults.plan.FaultPlan` against the
live topology.  Everything it does is deterministic per master seed:
all randomness comes from its own named streams (``faults:loss``,
``faults:delay``, ``faults:dup``), so switching the chaos layer on
never perturbs the mobility/traffic/sensor draws of a same-seed run —
the baseline and the chaos arm of an experiment still see the same
world, they just suffer different deliveries.

What it can inject:

- **bursty loss** — a :class:`GilbertElliott` chain stepped per message;
- **delay / reordering** — extra per-message core delay; unequal
  delays reorder consecutive messages naturally;
- **duplication** — extra deliveries of the same message, exercising
  the server's idempotency keys;
- **tower outages** — ``ENodeB.fail()/restore()`` with device
  re-association; messages through a dead tower are dropped;
- **partitions** — the Sense-Aid edge becomes unreachable (traffic
  fail-safes to path 1, clients enter degraded mode);
- **device churn** — abrupt device death (client powers off) and
  server-side record loss.

Every injection lands in the structured event log, so a chaos run is
auditable — and fingerprintable — from the log alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.cellular.network import CellularNetwork
from repro.cellular.packets import Message
from repro.faults.models import GilbertElliott
from repro.faults.plan import FaultEvent, FaultPlan
from repro.sim.engine import Simulator
from repro.sim.simlog import SimLogger


@dataclass(frozen=True)
class FaultDecision:
    """What the fault layer decided for one message.

    ``copy_delays`` holds one extra-delay entry per *additional*
    delivery (duplication); the network adds each to its base core
    latency, so copies can overtake the original (reordering).
    """

    drop: bool = False
    reason: str = ""
    extra_delay_s: float = 0.0
    copy_delays: Tuple[float, ...] = ()


@dataclass
class FaultStats:
    """Counters for everything the injector did to a run."""

    messages_seen: int = 0
    losses_injected: int = 0
    outage_drops: int = 0
    dead_device_drops: int = 0
    delays_injected: int = 0
    duplicates_injected: int = 0
    tower_failures: int = 0
    tower_restores: int = 0
    partitions: int = 0
    heals: int = 0
    devices_killed: int = 0
    devices_deregistered: int = 0
    server_crashes: int = 0
    server_restarts: int = 0
    shard_crashes: int = 0
    shard_partitions: int = 0
    shard_heals: int = 0
    overload_bursts: int = 0
    burst_requests: int = 0
    events_executed: int = 0
    events_skipped: int = 0


class FaultInjector:
    """Scenario-driven chaos for one simulated cellular deployment."""

    def __init__(
        self,
        sim: Simulator,
        network: CellularNetwork,
        registry=None,
        *,
        server=None,
        fleet=None,
        plan: Optional[FaultPlan] = None,
        loss_model: Optional[GilbertElliott] = None,
        delay_probability: float = 0.0,
        delay_range_s: Tuple[float, float] = (0.5, 5.0),
        duplicate_probability: float = 0.0,
        duplicate_lag_s: Tuple[float, float] = (0.0, 2.0),
    ) -> None:
        if not 0.0 <= delay_probability <= 1.0:
            raise ValueError("delay_probability must be in [0, 1]")
        if not 0.0 <= duplicate_probability <= 1.0:
            raise ValueError("duplicate_probability must be in [0, 1]")
        _check_range("delay_range_s", delay_range_s)
        _check_range("duplicate_lag_s", duplicate_lag_s)
        self._sim = sim
        self._network = network
        self._registry = registry
        self._server = server
        self._fleet = fleet
        self._loss_model = loss_model
        self._delay_probability = delay_probability
        self._delay_range_s = delay_range_s
        self._duplicate_probability = duplicate_probability
        self._duplicate_lag_s = duplicate_lag_s
        self._loss_rng = sim.rng.stream("faults:loss")
        self._delay_rng = sim.rng.stream("faults:delay")
        self._dup_rng = sim.rng.stream("faults:dup")
        self._clients: Dict[str, object] = {}
        self._dead_devices: Set[str] = set()
        self.stats = FaultStats()
        self.log = SimLogger(sim, "repro.faults")
        network.install_fault_hook(self)
        if plan is not None:
            # Temporal sanity is enforced at attach time: a strict plan
            # with a heal preceding its outage raises here, before any
            # event is scheduled (strict=False plans warn instead).
            plan.validate()
            for event in plan.events:
                at = max(event.at, sim.now)
                sim.schedule_at(at, self._execute, event)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def adopt_client(self, client) -> None:
        """Track a client so churn actions can reach it by device id."""
        self._clients[client.device.device_id] = client

    def detach(self) -> None:
        """Unhook from the network (the plan's remaining events become
        no-ops on the message path)."""
        self._network.clear_fault_hook()

    @property
    def loss_model(self) -> Optional[GilbertElliott]:
        return self._loss_model

    def is_dead(self, device_id: str) -> bool:
        return device_id in self._dead_devices

    # ------------------------------------------------------------------
    # Network hook (called per message, after the radio transmitted)
    # ------------------------------------------------------------------

    def on_uplink(self, device, message: Message) -> Optional[FaultDecision]:
        return self._decide(device, message, direction="up")

    def on_downlink(self, device, message: Message) -> Optional[FaultDecision]:
        return self._decide(device, message, direction="down")

    def _decide(
        self, device, message: Message, *, direction: str
    ) -> Optional[FaultDecision]:
        self.stats.messages_seen += 1
        device_id = getattr(device, "device_id", None)
        if device_id in self._dead_devices:
            self.stats.dead_device_drops += 1
            return self._drop(message, device_id, direction, "device_dead")
        if (
            self._registry is not None
            and device_id is not None
            and device_id in self._registry.device_ids()
            and not self._registry.serving_tower_operational(device_id)
        ):
            self.stats.outage_drops += 1
            return self._drop(message, device_id, direction, "tower_outage")
        if self._loss_model is not None and self._loss_model.step(self._loss_rng):
            self.stats.losses_injected += 1
            return self._drop(message, device_id, direction, "burst_loss")
        extra_delay = 0.0
        copy_delays: Tuple[float, ...] = ()
        if (
            self._delay_probability > 0.0
            and self._delay_rng.random() < self._delay_probability
        ):
            lo, hi = self._delay_range_s
            extra_delay = lo + self._delay_rng.random() * (hi - lo)
            self.stats.delays_injected += 1
            self.log.event(
                "fault.delay",
                message_kind=message.kind.value,
                device_id=device_id,
                direction=direction,
                extra_delay_s=round(extra_delay, 6),
            )
        if (
            self._duplicate_probability > 0.0
            and self._dup_rng.random() < self._duplicate_probability
        ):
            lo, hi = self._duplicate_lag_s
            copy_delays = (lo + self._dup_rng.random() * (hi - lo),)
            self.stats.duplicates_injected += 1
            self.log.event(
                "fault.duplicate",
                message_kind=message.kind.value,
                device_id=device_id,
                direction=direction,
                copy_lag_s=round(copy_delays[0], 6),
            )
        if extra_delay == 0.0 and not copy_delays:
            return None
        return FaultDecision(extra_delay_s=extra_delay, copy_delays=copy_delays)

    def _drop(
        self, message: Message, device_id, direction: str, reason: str
    ) -> FaultDecision:
        self.log.event(
            "fault.drop",
            message_kind=message.kind.value,
            device_id=device_id,
            direction=direction,
            reason=reason,
        )
        return FaultDecision(drop=True, reason=reason)

    # ------------------------------------------------------------------
    # Plan execution
    # ------------------------------------------------------------------

    def _execute(self, event: FaultEvent) -> None:
        if event.condition is not None and not event.condition():
            self.stats.events_skipped += 1
            self.log.event("fault.skipped", action=event.action)
            return
        handler = getattr(self, f"_do_{event.action}")
        handler(**event.kwargs)
        self.stats.events_executed += 1

    def _do_tower_down(self, tower_id: str) -> None:
        if self._registry is None:
            raise RuntimeError("tower faults need a TowerRegistry")
        self._registry.fail_tower(tower_id)
        self.stats.tower_failures += 1
        self.log.event("fault.tower_down", tower_id=tower_id)

    def _do_tower_up(self, tower_id: str) -> None:
        if self._registry is None:
            raise RuntimeError("tower faults need a TowerRegistry")
        self._registry.restore_tower(tower_id)
        self.stats.tower_restores += 1
        self.log.event("fault.tower_up", tower_id=tower_id)

    def _do_partition(self) -> None:
        self._network.set_sense_aid_path_available(False)
        self.stats.partitions += 1
        self.log.event("fault.partition")

    def _do_heal(self) -> None:
        self._network.set_sense_aid_path_available(True)
        self.stats.heals += 1
        self.log.event("fault.heal")

    def _do_kill_device(self, device_id: str) -> None:
        self._dead_devices.add(device_id)
        client = self._clients.get(device_id)
        if client is not None:
            client.power_off()
        self.stats.devices_killed += 1
        self.log.event("fault.kill_device", device_id=device_id)

    def _do_deregister_device(self, device_id: str) -> None:
        if self._server is None:
            raise RuntimeError("deregister faults need a server reference")
        if device_id in self._server.devices:
            self._server.deregister_device(device_id)
            self.stats.devices_deregistered += 1
            self.log.event("fault.deregister_device", device_id=device_id)

    def _do_set_loss_model(self, model: GilbertElliott) -> None:
        self._loss_model = model
        self.log.event(
            "fault.set_loss_model",
            loss_bad=model.loss_bad,
            p_good_to_bad=model.p_good_to_bad,
            p_bad_to_good=model.p_bad_to_good,
        )

    def _do_clear_loss_model(self) -> None:
        self._loss_model = None
        self.log.event("fault.clear_loss_model")

    def _do_set_delay(
        self, probability: float, delay_range_s: Tuple[float, float]
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        _check_range("delay_range_s", delay_range_s)
        self._delay_probability = probability
        self._delay_range_s = delay_range_s
        self.log.event(
            "fault.set_delay", probability=probability, delay_range_s=delay_range_s
        )

    def _do_set_duplication(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self._duplicate_probability = probability
        self.log.event("fault.set_duplication", probability=probability)

    def _do_server_crash(self) -> None:
        if self._server is None:
            raise RuntimeError("server faults need a server reference")
        self._server.crash()
        self.stats.server_crashes += 1
        self.log.event("fault.server_crash")

    def _do_server_restart(self) -> None:
        if self._server is None:
            raise RuntimeError("server faults need a server reference")
        self._server.restart()
        self.stats.server_restarts += 1
        self.log.event("fault.server_restart", epoch=self._server.epoch)

    def _require_fleet(self):
        if self._fleet is None:
            raise RuntimeError(
                "shard faults need a fleet reference (ShardedSenseAid)"
            )
        return self._fleet

    def _do_shard_crash(self, shard_id: str) -> None:
        self._require_fleet().crash_shard(shard_id)
        self.stats.shard_crashes += 1
        self.log.event("fault.shard_crash", shard_id=shard_id)

    def _do_shard_partition(self, shard_id: str) -> None:
        self._require_fleet().partition_shard(shard_id)
        self.stats.shard_partitions += 1
        self.log.event("fault.shard_partition", shard_id=shard_id)

    def _do_shard_heal(self, shard_id: str) -> None:
        self._require_fleet().heal_shard(shard_id)
        self.stats.shard_heals += 1
        self.log.event("fault.shard_heal", shard_id=shard_id)

    def _do_overload_burst(
        self, rate_per_s: float, duration_s: float, request_class: str = "query"
    ) -> None:
        from repro.core.overload import RequestClass

        if self._server is None:
            raise RuntimeError("overload faults need a server reference")
        if self._server.admission is None:
            raise RuntimeError(
                "overload_burst needs a server with an OverloadPolicy configured"
            )
        cls = RequestClass(request_class)
        count = int(rate_per_s * duration_s)
        spacing = 1.0 / rate_per_s
        self.stats.overload_bursts += 1
        self.log.event(
            "fault.overload_burst",
            rate_per_s=rate_per_s,
            duration_s=duration_s,
            request_class=cls.value,
            requests=count,
        )
        for i in range(count):
            self._sim.schedule(i * spacing, self._burst_tick, cls)

    def _burst_tick(self, request_class) -> None:
        self.stats.burst_requests += 1
        self._server.admission.admit(request_class)


def _check_range(name: str, bounds: Tuple[float, float]) -> None:
    lo, hi = bounds
    if lo < 0 or hi < lo:
        raise ValueError(f"{name} must satisfy 0 <= lo <= hi, got {bounds!r}")
