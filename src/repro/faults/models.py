"""Stochastic failure models for the fault-injection layer.

The paper's §8 open problem — "issues of consistency and failures in
the data collection" — is about failures that are *correlated*: a
device driving through a coverage hole loses a run of consecutive
messages, not an i.i.d. sprinkle.  The classic two-state Gilbert–
Elliott chain captures exactly that: a GOOD state with (near-)zero
loss and a BAD state (fade, congested cell) where most messages die,
with geometric sojourn times in each.
"""

from __future__ import annotations

from dataclasses import dataclass


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


@dataclass
class GilbertElliott:
    """Two-state Markov (bursty) loss model.

    ``p_good_to_bad`` / ``p_bad_to_good`` are per-message transition
    probabilities, so the mean burst length is ``1/p_bad_to_good``
    messages.  The chain steps once per message through
    :meth:`step`, drawing only from the RNG it is handed — the fault
    layer passes its own ``faults:loss`` stream, keeping every other
    stream of a same-seed run untouched.
    """

    p_good_to_bad: float = 0.05
    p_bad_to_good: float = 0.25
    loss_good: float = 0.0
    loss_bad: float = 0.9
    bad: bool = False

    def __post_init__(self) -> None:
        _check_probability("p_good_to_bad", self.p_good_to_bad)
        _check_probability("p_bad_to_good", self.p_bad_to_good)
        _check_probability("loss_good", self.loss_good)
        _check_probability("loss_bad", self.loss_bad)

    @property
    def state(self) -> str:
        return "bad" if self.bad else "good"

    @property
    def mean_burst_length(self) -> float:
        """Expected number of messages spent in the BAD state."""
        if self.p_bad_to_good == 0.0:
            return float("inf")
        return 1.0 / self.p_bad_to_good

    def steady_state_loss(self) -> float:
        """Long-run loss fraction implied by the chain parameters."""
        p, q = self.p_good_to_bad, self.p_bad_to_good
        if p == 0.0 and q == 0.0:
            return self.loss_bad if self.bad else self.loss_good
        pi_bad = p / (p + q)
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def step(self, rng) -> bool:
        """Advance the chain one message; True means the message is lost."""
        if self.bad:
            if rng.random() < self.p_bad_to_good:
                self.bad = False
        else:
            if rng.random() < self.p_good_to_bad:
                self.bad = True
        loss = self.loss_bad if self.bad else self.loss_good
        if loss <= 0.0:
            return False
        return rng.random() < loss
