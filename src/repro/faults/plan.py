"""The fault schedule: *what* breaks, *when*, and optionally *if*.

A :class:`FaultPlan` is a declarative list of timed injections the
:class:`~repro.faults.injector.FaultInjector` executes against a live
simulation.  Building the plan is side-effect-free, so the same plan
object can drive many runs (the chaos benchmark's determinism check
re-runs one plan and demands bit-identical logs).

Every entry may carry a ``condition`` — a zero-argument predicate
evaluated at fire time; a False skips the injection (e.g. "partition
only if the server has not already crashed").

Plans are also *data*: :meth:`FaultPlan.to_json` serializes a plan to
a schema-tagged JSON document and :meth:`FaultPlan.from_json` rebuilds
it (validating as it goes), which is what the soak harness's shrunken
reproducers are made of.  ``add()`` validates every injection eagerly
— unknown actions, unknown or missing kwargs, and out-of-range values
fail at build time with a clear message instead of blowing up later
inside ``FaultInjector._execute`` — and :meth:`FaultPlan.validate`
checks *temporal* sanity: a ``heal``/``tower_up``/``shard_heal`` with
no matching earlier outage is a silent no-op at run time, so a strict
plan (the default) refuses it and a ``strict=False`` plan warns.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.models import GilbertElliott

#: Schema tag stamped on serialized plans (bump on layout changes).
PLAN_SCHEMA = "fault-plan/v1"


class FaultPlanError(ValueError):
    """A fault plan failed validation (bad action, kwargs, or timing)."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled injection."""

    at: float
    action: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    condition: Optional[Callable[[], bool]] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"fault time must be non-negative, got {self.at!r}")


#: Per-action kwargs schema: name -> (kind, required).  Kinds drive
#: both eager validation in :meth:`FaultPlan.add` and the JSON
#: encode/decode in :meth:`FaultPlan.to_json` / ``from_json``.
ACTION_SCHEMAS: Dict[str, Dict[str, Tuple[str, bool]]] = {
    "tower_down": {"tower_id": ("str", True)},
    "tower_up": {"tower_id": ("str", True)},
    "partition": {},
    "heal": {},
    "kill_device": {"device_id": ("str", True)},
    "deregister_device": {"device_id": ("str", True)},
    "set_loss_model": {"model": ("loss_model", True)},
    "clear_loss_model": {},
    "set_delay": {
        "probability": ("probability", True),
        "delay_range_s": ("range", True),
    },
    "set_duplication": {"probability": ("probability", True)},
    "server_crash": {},
    "server_restart": {},
    "overload_burst": {
        "rate_per_s": ("positive", True),
        "duration_s": ("positive", True),
        "request_class": ("str", False),
    },
    "shard_crash": {"shard_id": ("str", True)},
    "shard_partition": {"shard_id": ("str", True)},
    "shard_heal": {"shard_id": ("str", True)},
}

#: Heal-type actions and the outage action each one undoes.  Keyed
#: kinds match on the kwarg naming the resource (``None`` = global).
_HEAL_PAIRS: Dict[str, Tuple[str, Optional[str]]] = {
    "heal": ("partition", None),
    "tower_up": ("tower_down", "tower_id"),
    "shard_heal": ("shard_partition", "shard_id"),
}


def _check_kind(action: str, name: str, kind: str, value: Any) -> Any:
    """Validate (and normalize) one kwarg value against its kind."""
    label = f"{action} kwarg {name!r}"
    if kind == "str":
        if not isinstance(value, str):
            raise FaultPlanError(f"{label} must be a string, got {value!r}")
        return value
    if kind in ("number", "positive", "probability"):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise FaultPlanError(f"{label} must be a number, got {value!r}")
        if kind == "positive" and value <= 0:
            raise FaultPlanError(f"{label} must be positive, got {value!r}")
        if kind == "probability" and not 0.0 <= value <= 1.0:
            raise FaultPlanError(f"{label} must be in [0, 1], got {value!r}")
        return value
    if kind == "range":
        if (
            not isinstance(value, (tuple, list))
            or len(value) != 2
            or any(
                isinstance(v, bool) or not isinstance(v, (int, float))
                for v in value
            )
        ):
            raise FaultPlanError(
                f"{label} must be a (lo, hi) pair of numbers, got {value!r}"
            )
        lo, hi = value
        if lo < 0 or hi < lo:
            raise FaultPlanError(
                f"{label} must satisfy 0 <= lo <= hi, got {value!r}"
            )
        return (float(lo), float(hi))
    if kind == "loss_model":
        if not isinstance(value, GilbertElliott):
            raise FaultPlanError(
                f"{label} must be a GilbertElliott model, got {value!r}"
            )
        return value
    raise AssertionError(f"unknown schema kind {kind!r}")  # pragma: no cover


class FaultPlan:
    """Ordered schedule of fault injections (builder-style API).

    ``strict`` governs temporal-sanity enforcement: a strict plan (the
    default) raises :class:`FaultPlanError` from :meth:`validate` when
    a heal-type event precedes any matching outage; ``strict=False``
    downgrades that to a warning (useful for shrunken reproducers whose
    minimization may orphan a heal).
    """

    #: Actions the injector knows how to execute.
    ACTIONS = tuple(ACTION_SCHEMAS)

    def __init__(self, *, strict: bool = True) -> None:
        self._events: List[FaultEvent] = []
        self.strict = strict

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """Events in firing order (stable for equal times)."""
        return tuple(sorted(self._events, key=lambda e: e.at))

    def add(
        self,
        at: float,
        action: str,
        condition: Optional[Callable[[], bool]] = None,
        **kwargs: Any,
    ) -> "FaultPlan":
        """Append one injection; unknown actions and malformed kwargs
        are rejected eagerly with the offending name spelled out."""
        schema = ACTION_SCHEMAS.get(action)
        if schema is None:
            raise FaultPlanError(
                f"unknown fault action {action!r}; known: {self.ACTIONS}"
            )
        unknown = sorted(set(kwargs) - set(schema))
        if unknown:
            raise FaultPlanError(
                f"{action} got unknown kwargs {unknown}; "
                f"allowed: {sorted(schema)}"
            )
        missing = sorted(
            name
            for name, (_, required) in schema.items()
            if required and name not in kwargs
        )
        if missing:
            raise FaultPlanError(f"{action} is missing required kwargs {missing}")
        normalized = {
            name: _check_kind(action, name, schema[name][0], value)
            for name, value in kwargs.items()
        }
        self._events.append(
            FaultEvent(at=at, action=action, kwargs=normalized, condition=condition)
        )
        return self

    # ------------------------------------------------------------------
    # Temporal sanity
    # ------------------------------------------------------------------

    def validate(self) -> List[str]:
        """Check heal-before-outage sanity over the firing order.

        Walks the events as they will fire, tracking active outages; a
        ``heal``/``tower_up``/``shard_heal`` with no matching active
        outage would silently no-op at run time, so it is reported —
        raised as :class:`FaultPlanError` on a strict plan, warned on a
        ``strict=False`` one.  Conditional outage events are counted
        optimistically (their condition may well be true at fire time).
        Returns the list of problems (empty == sane).
        """
        problems: List[str] = []
        active: Dict[Tuple[str, Optional[str]], int] = {}
        for event in self.events:
            pair = _HEAL_PAIRS.get(event.action)
            if pair is not None:
                down_action, key_name = pair
                key = (
                    down_action,
                    event.kwargs.get(key_name) if key_name else None,
                )
                if active.get(key, 0) <= 0:
                    target = f" for {key[1]!r}" if key[1] is not None else ""
                    problems.append(
                        f"{event.action} at t={event.at} precedes any "
                        f"matching {down_action}{target} and would no-op"
                    )
                else:
                    active[key] -= 1
            elif event.action in ("partition", "tower_down", "shard_partition"):
                resource = event.kwargs.get("tower_id") or event.kwargs.get(
                    "shard_id"
                )
                key = (event.action, resource)
                active[key] = active.get(key, 0) + 1
        if problems:
            if self.strict:
                raise FaultPlanError(
                    "temporally invalid fault plan:\n  " + "\n  ".join(problems)
                )
            for problem in problems:
                warnings.warn(f"fault plan: {problem}", stacklevel=2)
        return problems

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_json_obj(self) -> dict:
        """The plan as a JSON-ready dict (schema-tagged).

        Conditions are run-time predicates and cannot be serialized; a
        plan carrying any is refused rather than silently stripped.
        """
        events = []
        for event in self.events:
            if event.condition is not None:
                raise FaultPlanError(
                    f"cannot serialize {event.action} at t={event.at}: "
                    "fire-time conditions are not serializable"
                )
            kwargs = {}
            for name, value in event.kwargs.items():
                kind = ACTION_SCHEMAS[event.action][name][0]
                if kind == "loss_model":
                    kwargs[name] = {
                        "p_good_to_bad": value.p_good_to_bad,
                        "p_bad_to_good": value.p_bad_to_good,
                        "loss_good": value.loss_good,
                        "loss_bad": value.loss_bad,
                        "bad": value.bad,
                    }
                elif kind == "range":
                    kwargs[name] = list(value)
                else:
                    kwargs[name] = value
            events.append({"at": event.at, "action": event.action, "kwargs": kwargs})
        return {"schema": PLAN_SCHEMA, "strict": self.strict, "events": events}

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_json_obj(), indent=indent, sort_keys=True)

    @classmethod
    def from_json_obj(
        cls, obj: dict, *, strict: Optional[bool] = None
    ) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json_obj` output, re-validating
        every event through :meth:`add`."""
        if not isinstance(obj, dict):
            raise FaultPlanError(f"fault plan document must be an object: {obj!r}")
        if obj.get("schema") != PLAN_SCHEMA:
            raise FaultPlanError(
                f"unsupported fault plan schema {obj.get('schema')!r}; "
                f"expected {PLAN_SCHEMA!r}"
            )
        events = obj.get("events")
        if not isinstance(events, list):
            raise FaultPlanError("fault plan 'events' must be a list")
        plan = cls(
            strict=bool(obj.get("strict", True)) if strict is None else strict
        )
        for i, entry in enumerate(events):
            if not isinstance(entry, dict) or not {"at", "action"} <= set(entry):
                raise FaultPlanError(
                    f"event #{i} must be an object with 'at' and 'action': "
                    f"{entry!r}"
                )
            extra = set(entry) - {"at", "action", "kwargs"}
            if extra:
                raise FaultPlanError(
                    f"event #{i} has unknown fields {sorted(extra)}"
                )
            at, action = entry["at"], entry["action"]
            if isinstance(at, bool) or not isinstance(at, (int, float)):
                raise FaultPlanError(f"event #{i} time must be a number: {at!r}")
            kwargs = entry.get("kwargs", {})
            if not isinstance(kwargs, dict):
                raise FaultPlanError(f"event #{i} kwargs must be an object")
            schema = ACTION_SCHEMAS.get(action)
            if schema is None:
                raise FaultPlanError(
                    f"event #{i}: unknown fault action {action!r}"
                )
            decoded = {}
            for name, value in kwargs.items():
                kind = schema.get(name, ("", True))[0]
                if kind == "loss_model":
                    if not isinstance(value, dict):
                        raise FaultPlanError(
                            f"event #{i} kwarg {name!r} must be an object"
                        )
                    decoded[name] = GilbertElliott(**value)
                elif kind == "range" and isinstance(value, list):
                    decoded[name] = tuple(value)
                else:
                    decoded[name] = value
            plan.add(float(at), action, **decoded)
        return plan

    @classmethod
    def from_json(cls, text: str, *, strict: Optional[bool] = None) -> "FaultPlan":
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"unparseable fault plan JSON: {exc}") from None
        return cls.from_json_obj(obj, strict=strict)

    @classmethod
    def from_events(
        cls, events: Sequence[FaultEvent], *, strict: bool = True
    ) -> "FaultPlan":
        """A plan over an existing event subset (the shrinker's tool:
        candidate subsequences keep their original ``FaultEvent``
        objects, conditions included)."""
        plan = cls(strict=strict)
        for event in events:
            plan.add(event.at, event.action, event.condition, **event.kwargs)
        return plan

    # ------------------------------------------------------------------
    # Convenience builders (all chainable)
    # ------------------------------------------------------------------

    def tower_down(
        self,
        at: float,
        tower_id: str,
        *,
        restore_after: Optional[float] = None,
        condition: Optional[Callable[[], bool]] = None,
    ) -> "FaultPlan":
        """Fail a tower; optionally schedule its restoration too."""
        self.add(at, "tower_down", condition, tower_id=tower_id)
        if restore_after is not None:
            if restore_after <= 0:
                raise ValueError("restore_after must be positive")
            self.add(at + restore_after, "tower_up", None, tower_id=tower_id)
        return self

    def tower_up(self, at: float, tower_id: str) -> "FaultPlan":
        return self.add(at, "tower_up", tower_id=tower_id)

    def partition(
        self,
        at: float,
        *,
        heal_after: Optional[float] = None,
        condition: Optional[Callable[[], bool]] = None,
    ) -> "FaultPlan":
        """Cut the core path between the RAN and the Sense-Aid edge.

        Regular traffic fail-safes to path 1 (the paper's §3 design);
        crowdsensing devices lose their control plane and — if so
        configured — drop into degraded autonomous mode.
        """
        self.add(at, "partition", condition)
        if heal_after is not None:
            if heal_after <= 0:
                raise ValueError("heal_after must be positive")
            self.add(at + heal_after, "heal")
        return self

    def heal(self, at: float) -> "FaultPlan":
        return self.add(at, "heal")

    def kill_device(self, at: float, device_id: str) -> "FaultPlan":
        """Abrupt device death (battery exhaustion, power-off)."""
        return self.add(at, "kill_device", device_id=device_id)

    def deregister_device(self, at: float, device_id: str) -> "FaultPlan":
        """Server-side record loss: the device vanishes unannounced."""
        return self.add(at, "deregister_device", device_id=device_id)

    def set_loss_model(self, at: float, model) -> "FaultPlan":
        """Install (or replace) the bursty-loss model from this time on."""
        return self.add(at, "set_loss_model", model=model)

    def clear_loss_model(self, at: float) -> "FaultPlan":
        return self.add(at, "clear_loss_model")

    def set_delay(
        self,
        at: float,
        *,
        probability: float,
        delay_range_s: Tuple[float, float],
    ) -> "FaultPlan":
        """Inject extra per-message core delay (reordering's raw material)."""
        return self.add(
            at, "set_delay", probability=probability, delay_range_s=delay_range_s
        )

    def set_duplication(self, at: float, *, probability: float) -> "FaultPlan":
        """Duplicate messages in the core with the given probability."""
        return self.add(at, "set_duplication", probability=probability)

    def server_crash(
        self,
        at: float,
        *,
        restart_after: Optional[float] = None,
        condition: Optional[Callable[[], bool]] = None,
    ) -> "FaultPlan":
        """Kill the Sense-Aid server process.

        Volatile state is lost; with ``restart_after`` a cold restart
        (new incarnation epoch, WAL recovery when one is attached) is
        scheduled too.
        """
        self.add(at, "server_crash", condition)
        if restart_after is not None:
            if restart_after <= 0:
                raise ValueError("restart_after must be positive")
            self.add(at + restart_after, "server_restart", None)
        return self

    def server_restart(self, at: float) -> "FaultPlan":
        """Cold-restart the server (crashing it first if still up)."""
        return self.add(at, "server_restart")

    def shard_crash(
        self,
        at: float,
        shard_id: str,
        *,
        condition: Optional[Callable[[], bool]] = None,
    ) -> "FaultPlan":
        """Hard-kill one shard's incumbent in a sharded fleet.

        The fleet's failure detector notices the missing heartbeats
        and (with auto-failover on) hands the ring range to a standby.
        """
        return self.add(at, "shard_crash", condition, shard_id=shard_id)

    def shard_partition(
        self,
        at: float,
        shard_id: str,
        *,
        heal_after: Optional[float] = None,
        condition: Optional[Callable[[], bool]] = None,
    ) -> "FaultPlan":
        """Cut one shard's peer links (split brain: it keeps serving
        devices while its peers declare it dead and fail over)."""
        self.add(at, "shard_partition", condition, shard_id=shard_id)
        if heal_after is not None:
            if heal_after <= 0:
                raise ValueError("heal_after must be positive")
            self.add(at + heal_after, "shard_heal", None, shard_id=shard_id)
        return self

    def shard_heal(self, at: float, shard_id: str) -> "FaultPlan":
        """Restore a partitioned shard's peer links."""
        return self.add(at, "shard_heal", shard_id=shard_id)

    def overload_burst(
        self,
        at: float,
        *,
        rate_per_s: float,
        duration_s: float,
        request_class: str = "query",
    ) -> "FaultPlan":
        """Flood the server's admission controller with synthetic
        control-plane traffic of one class, at a fixed rate, for a
        fixed window — deterministic by construction (evenly spaced
        arrivals, no RNG)."""
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        return self.add(
            at,
            "overload_burst",
            rate_per_s=rate_per_s,
            duration_s=duration_s,
            request_class=request_class,
        )
