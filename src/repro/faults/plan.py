"""The fault schedule: *what* breaks, *when*, and optionally *if*.

A :class:`FaultPlan` is a declarative list of timed injections the
:class:`~repro.faults.injector.FaultInjector` executes against a live
simulation.  Building the plan is side-effect-free, so the same plan
object can drive many runs (the chaos benchmark's determinism check
re-runs one plan and demands bit-identical logs).

Every entry may carry a ``condition`` — a zero-argument predicate
evaluated at fire time; a False skips the injection (e.g. "partition
only if the server has not already crashed").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled injection."""

    at: float
    action: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    condition: Optional[Callable[[], bool]] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"fault time must be non-negative, got {self.at!r}")


class FaultPlan:
    """Ordered schedule of fault injections (builder-style API)."""

    #: Actions the injector knows how to execute.
    ACTIONS = (
        "tower_down",
        "tower_up",
        "partition",
        "heal",
        "kill_device",
        "deregister_device",
        "set_loss_model",
        "clear_loss_model",
        "set_delay",
        "set_duplication",
        "server_crash",
        "server_restart",
        "overload_burst",
        "shard_crash",
        "shard_partition",
        "shard_heal",
    )

    def __init__(self) -> None:
        self._events: List[FaultEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """Events in firing order (stable for equal times)."""
        return tuple(sorted(self._events, key=lambda e: e.at))

    def add(
        self,
        at: float,
        action: str,
        condition: Optional[Callable[[], bool]] = None,
        **kwargs: Any,
    ) -> "FaultPlan":
        """Append one injection; unknown actions are rejected eagerly."""
        if action not in self.ACTIONS:
            raise ValueError(
                f"unknown fault action {action!r}; known: {self.ACTIONS}"
            )
        self._events.append(
            FaultEvent(at=at, action=action, kwargs=kwargs, condition=condition)
        )
        return self

    # ------------------------------------------------------------------
    # Convenience builders (all chainable)
    # ------------------------------------------------------------------

    def tower_down(
        self,
        at: float,
        tower_id: str,
        *,
        restore_after: Optional[float] = None,
        condition: Optional[Callable[[], bool]] = None,
    ) -> "FaultPlan":
        """Fail a tower; optionally schedule its restoration too."""
        self.add(at, "tower_down", condition, tower_id=tower_id)
        if restore_after is not None:
            if restore_after <= 0:
                raise ValueError("restore_after must be positive")
            self.add(at + restore_after, "tower_up", None, tower_id=tower_id)
        return self

    def tower_up(self, at: float, tower_id: str) -> "FaultPlan":
        return self.add(at, "tower_up", tower_id=tower_id)

    def partition(
        self,
        at: float,
        *,
        heal_after: Optional[float] = None,
        condition: Optional[Callable[[], bool]] = None,
    ) -> "FaultPlan":
        """Cut the core path between the RAN and the Sense-Aid edge.

        Regular traffic fail-safes to path 1 (the paper's §3 design);
        crowdsensing devices lose their control plane and — if so
        configured — drop into degraded autonomous mode.
        """
        self.add(at, "partition", condition)
        if heal_after is not None:
            if heal_after <= 0:
                raise ValueError("heal_after must be positive")
            self.add(at + heal_after, "heal")
        return self

    def heal(self, at: float) -> "FaultPlan":
        return self.add(at, "heal")

    def kill_device(self, at: float, device_id: str) -> "FaultPlan":
        """Abrupt device death (battery exhaustion, power-off)."""
        return self.add(at, "kill_device", device_id=device_id)

    def deregister_device(self, at: float, device_id: str) -> "FaultPlan":
        """Server-side record loss: the device vanishes unannounced."""
        return self.add(at, "deregister_device", device_id=device_id)

    def set_loss_model(self, at: float, model) -> "FaultPlan":
        """Install (or replace) the bursty-loss model from this time on."""
        return self.add(at, "set_loss_model", model=model)

    def clear_loss_model(self, at: float) -> "FaultPlan":
        return self.add(at, "clear_loss_model")

    def set_delay(
        self,
        at: float,
        *,
        probability: float,
        delay_range_s: Tuple[float, float],
    ) -> "FaultPlan":
        """Inject extra per-message core delay (reordering's raw material)."""
        return self.add(
            at, "set_delay", probability=probability, delay_range_s=delay_range_s
        )

    def set_duplication(self, at: float, *, probability: float) -> "FaultPlan":
        """Duplicate messages in the core with the given probability."""
        return self.add(at, "set_duplication", probability=probability)

    def server_crash(
        self,
        at: float,
        *,
        restart_after: Optional[float] = None,
        condition: Optional[Callable[[], bool]] = None,
    ) -> "FaultPlan":
        """Kill the Sense-Aid server process.

        Volatile state is lost; with ``restart_after`` a cold restart
        (new incarnation epoch, WAL recovery when one is attached) is
        scheduled too.
        """
        self.add(at, "server_crash", condition)
        if restart_after is not None:
            if restart_after <= 0:
                raise ValueError("restart_after must be positive")
            self.add(at + restart_after, "server_restart", None)
        return self

    def server_restart(self, at: float) -> "FaultPlan":
        """Cold-restart the server (crashing it first if still up)."""
        return self.add(at, "server_restart")

    def shard_crash(
        self,
        at: float,
        shard_id: str,
        *,
        condition: Optional[Callable[[], bool]] = None,
    ) -> "FaultPlan":
        """Hard-kill one shard's incumbent in a sharded fleet.

        The fleet's failure detector notices the missing heartbeats
        and (with auto-failover on) hands the ring range to a standby.
        """
        return self.add(at, "shard_crash", condition, shard_id=shard_id)

    def shard_partition(
        self,
        at: float,
        shard_id: str,
        *,
        heal_after: Optional[float] = None,
        condition: Optional[Callable[[], bool]] = None,
    ) -> "FaultPlan":
        """Cut one shard's peer links (split brain: it keeps serving
        devices while its peers declare it dead and fail over)."""
        self.add(at, "shard_partition", condition, shard_id=shard_id)
        if heal_after is not None:
            if heal_after <= 0:
                raise ValueError("heal_after must be positive")
            self.add(at + heal_after, "shard_heal", None, shard_id=shard_id)
        return self

    def shard_heal(self, at: float, shard_id: str) -> "FaultPlan":
        """Restore a partitioned shard's peer links."""
        return self.add(at, "shard_heal", shard_id=shard_id)

    def overload_burst(
        self,
        at: float,
        *,
        rate_per_s: float,
        duration_s: float,
        request_class: str = "query",
    ) -> "FaultPlan":
        """Flood the server's admission controller with synthetic
        control-plane traffic of one class, at a fixed rate, for a
        fixed window — deterministic by construction (evenly spaced
        arrivals, no RNG)."""
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        return self.add(
            at,
            "overload_burst",
            rate_per_s=rate_per_s,
            duration_s=duration_s,
            request_class=request_class,
        )
