"""Parallel experiment execution engine.

The paper's evaluation was a 60-device campus study; this repo's keeps
growing sweeps, replications, and scenario tiers, and every point of
every sweep is an independent seeded simulation.  ``repro.runner``
fans those points out across a process pool while keeping the results
*bit-identical* to a serial run:

- **Deterministic seeding** — :func:`derive_seed` hashes the scenario
  config and replication index, so a task's world never depends on
  which worker ran it or in what order.
- **Content-addressed caching** — :class:`ResultCache` keys each
  point's result by a stable hash of the point function and its
  arguments; re-running a sweep recomputes only the points that
  changed.
- **Ordered merging** — :meth:`ExperimentEngine.map` returns outcomes
  in submission order regardless of completion order, so downstream
  analysis sees the same sequence a serial loop would produce.
- **Failure isolation** — a point that raises (or a worker process
  that dies) fails that point only; every other point still completes
  and the failure surfaces at the end with its traceback.
"""

from repro.runner.cache import CACHE_SCHEMA_VERSION, ResultCache
from repro.runner.engine import (
    ExperimentEngine,
    PointFailure,
    TaskOutcome,
)
from repro.runner.hashing import (
    canonical_json,
    canonicalize,
    config_hash,
    derive_seed,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ExperimentEngine",
    "PointFailure",
    "ResultCache",
    "TaskOutcome",
    "canonical_json",
    "canonicalize",
    "config_hash",
    "derive_seed",
]
