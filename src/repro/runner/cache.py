"""Content-addressed cache for experiment point results.

A cache entry is one computed sweep point, keyed by the stable hash of
(point function, arguments, code-version salt).  Entries are pickled —
sweep points return rich result objects (full arm results, selection
logs) — and written atomically so a crash mid-write can never leave a
truncated entry that later poisons a run.  Any unreadable, mismatched,
or cross-schema entry is treated as a miss and discarded.

Large payloads do not live in the entry file: anything whose pickle
exceeds ``spill_threshold`` bytes spills to a content-addressed object
store under ``objects/`` (named by the SHA-256 of the bytes, written
atomically) and the entry keeps only the digest reference.  Identical
artifacts produced by different sweep points therefore share one file,
and loads verify the digest — a truncated or tampered artifact can
never come back as a hit.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Any, Optional, Tuple

#: Bump to invalidate every existing cache entry (pickle layout or
#: keying scheme changes).  v2: large payloads moved out of the entry
#: into the digest-addressed object store.
CACHE_SCHEMA_VERSION = 2

#: Payload pickles at or above this many bytes spill to the object
#: store by default (small entries stay self-contained for speed).
DEFAULT_SPILL_THRESHOLD = 262_144


class ResultCache:
    """Directory of content-addressed pickled point results."""

    def __init__(
        self, root: str, *, spill_threshold: int = DEFAULT_SPILL_THRESHOLD
    ) -> None:
        if spill_threshold < 1:
            raise ValueError("spill_threshold must be positive")
        self.root = os.path.abspath(root)
        self.objects_dir = os.path.join(self.root, "objects")
        os.makedirs(self.root, exist_ok=True)
        self.spill_threshold = spill_threshold
        self.hits = 0
        self.misses = 0
        self.spills = 0

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.pkl")

    def object_path(self, digest: str) -> str:
        return os.path.join(self.objects_dir, f"{digest}.bin")

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` for ``key``; corrupt entries count as misses."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as f:
                entry = pickle.load(f)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            self.misses += 1
            return False, None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != CACHE_SCHEMA_VERSION
            or entry.get("key") != key
        ):
            # Stale schema or a file renamed into the wrong slot: drop
            # it so the bad entry cannot shadow a future write.
            self._discard(path)
            self.misses += 1
            return False, None
        ref = entry.get("payload_ref")
        if ref is not None:
            payload = self._load_object(ref)
            if payload is None:
                # Missing, truncated, or digest-mismatched artifact:
                # the entry is unusable, drop it and miss.
                self._discard(path)
                self.misses += 1
                return False, None
            self.hits += 1
            return True, payload
        self.hits += 1
        return True, entry["payload"]

    def put(self, key: str, value: Any, *, fn: Optional[str] = None) -> str:
        """Store ``value`` under ``key`` atomically; returns the path."""
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "fn": fn,
        }
        if len(blob) >= self.spill_threshold:
            digest = hashlib.sha256(blob).hexdigest()
            self._store_object(digest, blob)
            entry["payload_ref"] = {"digest": digest, "size": len(blob)}
            self.spills += 1
        else:
            entry["payload"] = value
        path = self.path_for(key)
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(entry, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            self._discard(tmp_path)
            raise
        return path

    def _store_object(self, digest: str, blob: bytes) -> str:
        """Write a payload blob to the object store, atomically.

        Content addressing makes the write idempotent: if the object
        already exists it is left untouched (its content is, by
        construction, the same bytes).
        """
        os.makedirs(self.objects_dir, exist_ok=True)
        path = self.object_path(digest)
        if os.path.exists(path):
            return path
        fd, tmp_path = tempfile.mkstemp(dir=self.objects_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(blob)
            os.replace(tmp_path, path)
        except BaseException:
            self._discard(tmp_path)
            raise
        return path

    def _load_object(self, ref: Any) -> Optional[Any]:
        """Load and digest-verify a spilled payload; ``None`` on any
        mismatch (the caller turns that into a miss)."""
        if not isinstance(ref, dict) or "digest" not in ref:
            return None
        digest = ref["digest"]
        try:
            with open(self.object_path(digest), "rb") as f:
                blob = f.read()
        except OSError:
            return None
        if hashlib.sha256(blob).hexdigest() != digest:
            self._discard(self.object_path(digest))
            return None
        try:
            return pickle.loads(blob)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            return None

    def clear(self) -> int:
        """Delete every entry (and spilled object); returns how many
        entries were removed."""
        removed = 0
        for name in os.listdir(self.root):
            if name.endswith(".pkl"):
                self._discard(os.path.join(self.root, name))
                removed += 1
        if os.path.isdir(self.objects_dir):
            for name in os.listdir(self.objects_dir):
                if name.endswith(".bin"):
                    self._discard(os.path.join(self.objects_dir, name))
        return removed

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root) if name.endswith(".pkl"))

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass
