"""Content-addressed cache for experiment point results.

A cache entry is one computed sweep point, keyed by the stable hash of
(point function, arguments, code-version salt).  Entries are pickled —
sweep points return rich result objects (full arm results, selection
logs) — and written atomically so a crash mid-write can never leave a
truncated entry that later poisons a run.  Any unreadable, mismatched,
or cross-schema entry is treated as a miss and discarded.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any, Optional, Tuple

#: Bump to invalidate every existing cache entry (pickle layout or
#: keying scheme changes).
CACHE_SCHEMA_VERSION = 1


class ResultCache:
    """Directory of content-addressed pickled point results."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.pkl")

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` for ``key``; corrupt entries count as misses."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as f:
                entry = pickle.load(f)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            self.misses += 1
            return False, None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != CACHE_SCHEMA_VERSION
            or entry.get("key") != key
        ):
            # Stale schema or a file renamed into the wrong slot: drop
            # it so the bad entry cannot shadow a future write.
            self._discard(path)
            self.misses += 1
            return False, None
        self.hits += 1
        return True, entry["payload"]

    def put(self, key: str, value: Any, *, fn: Optional[str] = None) -> str:
        """Store ``value`` under ``key`` atomically; returns the path."""
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "fn": fn,
            "payload": value,
        }
        path = self.path_for(key)
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(entry, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            self._discard(tmp_path)
            raise
        return path

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for name in os.listdir(self.root):
            if name.endswith(".pkl"):
                self._discard(os.path.join(self.root, name))
                removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root) if name.endswith(".pkl"))

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass
