"""The process-pool experiment engine.

``ExperimentEngine.map`` executes one picklable *point function* over
a list of keyword-argument dicts.  With ``workers=1`` the points run
inline, in order, in this process — the exact loop the experiments ran
before the engine existed.  With ``workers>1`` the points fan out over
a process pool; because every point is a pure function of its (fully
seeded) arguments and outcomes are merged back in submission order,
the two modes produce identical results.

Failure isolation: a point that raises records a failure outcome and
every other point still runs.  A worker process that *dies* (segfault,
``os._exit``) breaks the whole ``ProcessPoolExecutor``; the engine
reruns every affected point alone in a fresh single-worker pool so a
repeat crash is attributable to exactly one point, charges only that
point's retry budget, and marks it failed once the budget is spent —
one poisoned point cannot take down a 500-point sweep, and points that
were mere collateral of a neighbour's crash always complete.
"""

from __future__ import annotations

import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.runner.cache import CACHE_SCHEMA_VERSION, ResultCache
from repro.runner.hashing import config_hash, derive_seed


@dataclass
class TaskOutcome:
    """What happened to one sweep point."""

    index: int
    key: str
    value: Any = None
    error: Optional[str] = None
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


class PointFailure(RuntimeError):
    """One or more sweep points failed; the rest completed."""

    def __init__(self, outcomes: Sequence[TaskOutcome]) -> None:
        self.failed = [o for o in outcomes if not o.ok]
        self.outcomes = list(outcomes)
        lines = [f"{len(self.failed)} of {len(outcomes)} sweep points failed:"]
        for outcome in self.failed:
            first = (outcome.error or "").strip().splitlines()
            lines.append(
                f"  point {outcome.index}: {first[-1] if first else 'unknown'}"
            )
        super().__init__("\n".join(lines))


def _invoke(fn: Callable[..., Any], kwargs: Dict[str, Any]) -> Any:
    """Top-level trampoline so the pool pickles only (fn, kwargs)."""
    return fn(**kwargs)


@dataclass
class _Pending:
    index: int
    kwargs: Dict[str, Any]
    attempts: int = 0


@dataclass
class EngineStats:
    """Counters for one engine lifetime (all ``map`` calls)."""

    executed: int = 0
    cached: int = 0
    failed: int = 0
    pool_rebuilds: int = 0


class ExperimentEngine:
    """Runs experiment point functions serially or over a process pool.

    Parameters
    ----------
    workers:
        Pool size.  ``1`` (the default) runs points inline with no
        subprocesses — the behaviour every experiment had before the
        engine, and the mode the test suite compares against.
    cache_dir:
        If set, point results are cached content-addressed under this
        directory and already-computed points are skipped.
    max_crash_retries:
        How many times a point whose *worker process died* is retried
        in a fresh pool before being marked failed.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        cache: Optional[ResultCache] = None,
        max_crash_retries: int = 1,
        spill_threshold: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if max_crash_retries < 0:
            raise ValueError("max_crash_retries must be >= 0")
        self.workers = workers
        if cache is None and cache_dir is not None:
            if spill_threshold is not None:
                cache = ResultCache(cache_dir, spill_threshold=spill_threshold)
            else:
                cache = ResultCache(cache_dir)
        self.cache = cache
        self.max_crash_retries = max_crash_retries
        self.stats = EngineStats()

    # -- keying ---------------------------------------------------------

    @staticmethod
    def task_key(
        fn: Callable[..., Any], kwargs: Dict[str, Any], version: str = ""
    ) -> str:
        """Content hash identifying one point computation."""
        return config_hash(
            {
                "fn": f"{fn.__module__}.{fn.__qualname__}",
                "kwargs": kwargs,
                "version": version,
                "cache_schema": CACHE_SCHEMA_VERSION,
            }
        )

    # -- execution ------------------------------------------------------

    def map(
        self,
        fn: Callable[..., Any],
        kwargs_list: Sequence[Dict[str, Any]],
        *,
        version: str = "",
    ) -> List[TaskOutcome]:
        """Run ``fn(**kwargs)`` for each entry; outcomes in input order."""
        outcomes: List[Optional[TaskOutcome]] = [None] * len(kwargs_list)
        pending: List[_Pending] = []
        fn_name = f"{fn.__module__}.{fn.__qualname__}"
        for index, kwargs in enumerate(kwargs_list):
            key = self.task_key(fn, kwargs, version)
            if self.cache is not None:
                hit, value = self.cache.get(key)
                if hit:
                    self.stats.cached += 1
                    outcomes[index] = TaskOutcome(
                        index=index, key=key, value=value, from_cache=True
                    )
                    continue
            pending.append(_Pending(index=index, kwargs=dict(kwargs)))
            outcomes[index] = TaskOutcome(index=index, key=key)

        if self.workers == 1 or len(pending) <= 1:
            self._run_serial(fn, pending, outcomes)
        else:
            self._run_pool(fn, pending, outcomes)

        done = [o for o in outcomes if o is not None]
        assert len(done) == len(kwargs_list)
        for outcome in done:
            if outcome.ok and not outcome.from_cache and self.cache is not None:
                self.cache.put(outcome.key, outcome.value, fn=fn_name)
        return done

    def run_points(
        self,
        fn: Callable[..., Any],
        kwargs_list: Sequence[Dict[str, Any]],
        *,
        version: str = "",
    ) -> List[Any]:
        """Like :meth:`map` but returns bare values, raising
        :class:`PointFailure` (after every point has run) if any failed."""
        outcomes = self.map(fn, kwargs_list, version=version)
        if any(not o.ok for o in outcomes):
            raise PointFailure(outcomes)
        return [o.value for o in outcomes]

    def replicate(
        self,
        fn: Callable[..., Any],
        config: Any,
        replications: int,
        *,
        kwargs: Optional[Dict[str, Any]] = None,
        version: str = "",
    ) -> List[Any]:
        """Run ``fn(config=<reseeded config>, **kwargs)`` for each
        replication, seeding each world with :func:`derive_seed`.

        ``config`` must expose ``with_seed(seed)`` (as
        ``ScenarioConfig`` does).
        """
        if replications < 1:
            raise ValueError("replications must be >= 1")
        base = dict(kwargs or {})
        tasks = [
            {"config": config.with_seed(derive_seed(config, rep)), **base}
            for rep in range(replications)
        ]
        return self.run_points(fn, tasks, version=version)

    # -- internals ------------------------------------------------------

    def _run_serial(
        self,
        fn: Callable[..., Any],
        pending: Sequence[_Pending],
        outcomes: List[Optional[TaskOutcome]],
    ) -> None:
        for task in pending:
            outcome = outcomes[task.index]
            assert outcome is not None
            try:
                outcome.value = fn(**task.kwargs)
                self.stats.executed += 1
            except Exception:
                outcome.error = traceback.format_exc()
                self.stats.failed += 1

    def _run_pool(
        self,
        fn: Callable[..., Any],
        pending: Sequence[_Pending],
        outcomes: List[Optional[TaskOutcome]],
    ) -> None:
        crashed = self._run_batch(fn, list(pending), outcomes)
        # A dead worker breaks the whole pool, so every in-flight future
        # raises BrokenProcessPool — culprit and collateral alike.  Rerun
        # each affected point alone in a single-worker pool: a repeat
        # crash is then definitively that point's fault and charged
        # against its retry budget, while innocent points complete
        # without ever being charged for a neighbour's crash.
        while crashed:
            self.stats.pool_rebuilds += 1
            task = crashed.pop(0)
            if not self._run_batch(fn, [task], outcomes, solo=True):
                continue
            task.attempts += 1
            if task.attempts <= self.max_crash_retries:
                crashed.insert(0, task)
            else:
                outcome = outcomes[task.index]
                assert outcome is not None
                outcome.error = (
                    "worker process died while running this "
                    f"point (after {task.attempts} attempts)"
                )
                self.stats.failed += 1

    def _run_batch(
        self,
        fn: Callable[..., Any],
        batch: Sequence[_Pending],
        outcomes: List[Optional[TaskOutcome]],
        *,
        solo: bool = False,
    ) -> List[_Pending]:
        """Run one batch over a fresh pool; returns the tasks whose
        worker process died, in index order."""
        crashed: List[_Pending] = []
        workers = 1 if solo else min(self.workers, len(batch))
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            future_to_task = {
                pool.submit(_invoke, fn, task.kwargs): task for task in batch
            }
            not_done = set(future_to_task)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    task = future_to_task[future]
                    outcome = outcomes[task.index]
                    assert outcome is not None
                    try:
                        outcome.value = future.result()
                        self.stats.executed += 1
                    except BrokenProcessPool:
                        crashed.append(task)
                    except Exception:
                        outcome.error = traceback.format_exc()
                        self.stats.failed += 1
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        crashed.sort(key=lambda t: t.index)
        return crashed
