"""Stable hashing of experiment configurations.

Everything the engine does — cache keys, replication seeds — rests on
one primitive: a *canonical* representation of a task's parameters
that is identical across processes, interpreter restarts, and
platforms.  Python's built-in ``hash()`` is salted per process, so the
canonical form is JSON with sorted keys and the hash is SHA-256.

Dataclass instances are tagged with their qualified class name so two
config types with the same field values never collide; enums reduce to
their value; tuples and lists both canonicalize as JSON arrays
(a config that switches between them is the same config).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

#: Seeds fit the platform-independent positive 63-bit range, so they
#: are valid for ``random.Random`` and numpy generators alike.
_SEED_BITS = 63


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-serializable canonical form.

    Supported: primitives, enums, lists/tuples, dicts with primitive
    keys, sets (sorted), and dataclass instances (tagged with the
    class's qualified name).  Anything else raises ``TypeError`` so an
    unstable representation can never silently enter a cache key.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return {"__enum__": _type_tag(type(obj)), "value": canonicalize(obj.value)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": _type_tag(type(obj)), "fields": fields}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(json.dumps(canonicalize(i)) for i in obj)}
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"cannot canonicalize dict key {key!r}: only str keys are stable"
                )
            out[key] = canonicalize(value)
        return out
    raise TypeError(f"cannot canonicalize {type(obj).__qualname__!r} for hashing")


def _type_tag(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def canonical_json(obj: Any) -> str:
    """The canonical JSON text of ``obj`` (sorted keys, no whitespace)."""
    return json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))


def config_hash(obj: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def derive_seed(config: Any, replication: int, *, salt: str = "") -> int:
    """A stable per-replication seed from a scenario config.

    The seed depends only on the config's canonical content and the
    replication index — never on worker identity, completion order, or
    process start method — which is what makes a parallel sweep
    bit-identical to a serial one.
    """
    payload = canonical_json(
        {"config": canonicalize(config), "replication": replication, "salt": salt}
    )
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << _SEED_BITS) - 1)
