"""Crowdsensing application-server library.

The paper's server-side API: ``task()`` to create and submit a task,
``update_task_param()``, ``delete_task()``, and the
``receive_sensed_data()`` callback.  Multiple application servers can
share one Sense-Aid server; each sees only its own tasks' data, keyed
by hashed device identifiers.
"""

from repro.serverlib.adaptive import AdaptiveDensityController, DensityChange
from repro.serverlib.appserver import CrowdsensingAppServer

__all__ = ["AdaptiveDensityController", "CrowdsensingAppServer", "DensityChange"]
