"""Dynamic tasks that adapt their requirements to the received data.

Paper §8 (ongoing work): "dynamic tasks that can alter their
requirements based on received data."  The natural instance for a
weather campaign: when recent readings disagree (high spatial
variance — something interesting is happening), raise the task's
spatial density to get a finer picture; when they agree, lower it back
toward the minimum and save everyone's battery.

:class:`AdaptiveDensityController` plugs into an application server's
data stream and drives ``update_task_param()`` automatically.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.core.server import SensedDataPoint
from repro.serverlib.appserver import CrowdsensingAppServer


@dataclass(frozen=True)
class DensityChange:
    """One adaptation decision, for auditing/tests."""

    time: float
    observed_std: float
    old_density: int
    new_density: int


class AdaptiveDensityController:
    """Adjusts a task's spatial density from reading variance."""

    def __init__(
        self,
        app: CrowdsensingAppServer,
        task_id: int,
        *,
        min_density: int = 2,
        max_density: int = 6,
        raise_std_threshold: float = 1.0,
        lower_std_threshold: float = 0.3,
        window: int = 6,
    ) -> None:
        if not 1 <= min_density <= max_density:
            raise ValueError("need 1 <= min_density <= max_density")
        if lower_std_threshold >= raise_std_threshold:
            raise ValueError("lower threshold must be below raise threshold")
        if window < 2:
            raise ValueError("window must hold at least 2 readings")
        self._app = app
        self._task_id = task_id
        self._min = min_density
        self._max = max_density
        self._raise_at = raise_std_threshold
        self._lower_at = lower_std_threshold
        self._window: Deque[float] = deque(maxlen=window)
        self.changes: List[DensityChange] = []

    @property
    def task_id(self) -> int:
        return self._task_id

    def current_density(self) -> int:
        return self._app._senseaid.tasks.get(self._task_id).spatial_density

    def on_data(self, point: SensedDataPoint) -> None:
        """Feed every delivered reading through this hook."""
        if point.task_id != self._task_id:
            return
        self._window.append(point.value)
        if len(self._window) < self._window.maxlen:
            return
        std = self._std()
        density = self.current_density()
        if std > self._raise_at and density < self._max:
            self._set_density(point.delivered_at, std, density, density + 1)
        elif std < self._lower_at and density > self._min:
            self._set_density(point.delivered_at, std, density, density - 1)

    def observed_std(self) -> Optional[float]:
        """Std-dev of the current window, or None if not yet full."""
        if len(self._window) < self._window.maxlen:
            return None
        return self._std()

    def _std(self) -> float:
        values = list(self._window)
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        return math.sqrt(variance)

    def _set_density(
        self, time: float, std: float, old: int, new: int
    ) -> None:
        self._app.update_task_param(self._task_id, spatial_density=new)
        self.changes.append(
            DensityChange(time=time, observed_std=std, old_density=old, new_density=new)
        )
        self._window.clear()
