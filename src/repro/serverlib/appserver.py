"""The crowdsensing application server endpoint (CAS).

An application (a hyperlocal weather map, a traffic monitor, …) uses
this library to describe *what* data it needs; Sense-Aid handles all
the bookkeeping the paper calls out — tracking devices, locations and
schedules — which in Pressurenet amounted to 37% of the app's code.

Stored readings live on the pluggable storage backend (by default the
one the Sense-Aid server runs on) as an append-only log tagged by task
id, so with ``REPRO_DATASTORE=sqlite`` an application's data store is
on disk and a campaign's readings never have to fit in process memory.
Aggregates (``mean_value``, ``distinct_devices``) stream over the log
in arrival order, which keeps them bit-identical across backends.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.core.server import SenseAidServer, SensedDataPoint
from repro.core.tasks import TaskSpec
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point
from repro.storage import StorageBackend


def point_to_dict(point: SensedDataPoint) -> dict:
    return {
        "request_id": point.request_id,
        "task_id": point.task_id,
        "sensor_type": point.sensor_type.name,
        "value": point.value,
        "sensed_at": point.sensed_at,
        "delivered_at": point.delivered_at,
        "device_hash": point.device_hash,
    }


def point_from_dict(data: dict) -> SensedDataPoint:
    return SensedDataPoint(
        request_id=data["request_id"],
        task_id=data["task_id"],
        sensor_type=SensorType[data["sensor_type"]],
        value=data["value"],
        sensed_at=data["sensed_at"],
        delivered_at=data["delivered_at"],
        device_hash=data["device_hash"],
    )


class CrowdsensingAppServer:
    """One crowdsensing application's server-side endpoint."""

    def __init__(
        self,
        senseaid: SenseAidServer,
        name: str,
        on_data: Optional[Callable[[SensedDataPoint], None]] = None,
        *,
        storage: Optional[StorageBackend] = None,
    ) -> None:
        self._senseaid = senseaid
        self.name = name
        self._on_data = on_data
        self._storage = storage if storage is not None else senseaid.storage
        #: Backend log namespace holding this application's readings,
        #: one row per delivery, tagged with the task id.
        self.readings_ns = f"readings:{name}"
        self._task_ids: List[int] = []
        #: Deliveries that arrived for a task this app no longer (or
        #: never) owned — e.g. in flight when ``delete_task`` ran.
        self.late_deliveries_dropped = 0
        #: ``on_data`` callback invocations that raised; the reading is
        #: still recorded — an application bug must not corrupt the
        #: middleware's data store or the delivery path.
        self.callback_errors = 0

    # ------------------------------------------------------------------
    # The paper's four-call application API
    # ------------------------------------------------------------------

    def task(
        self,
        sensor_type: SensorType,
        center: Point,
        area_radius_m: float,
        spatial_density: int,
        *,
        sampling_period_s: Optional[float] = None,
        sampling_duration_s: Optional[float] = None,
        start_time: Optional[float] = None,
        end_time: Optional[float] = None,
        device_type: Optional[str] = None,
    ) -> int:
        """Create a crowdsensing task and push it to Sense-Aid.

        Returns the task id used by ``update_task_param`` and
        ``delete_task``.
        """
        spec = TaskSpec(
            sensor_type=sensor_type,
            center=center,
            area_radius_m=area_radius_m,
            spatial_density=spatial_density,
            sampling_period_s=sampling_period_s,
            sampling_duration_s=sampling_duration_s,
            start_time=start_time,
            end_time=end_time,
            device_type=device_type,
            origin=self.name,
        )
        task_id = self._senseaid.submit_task(spec, self.receive_sensed_data)
        self._task_ids.append(task_id)
        return task_id

    def update_task_param(self, task_id: int, **changes) -> TaskSpec:
        """Update parameters of one of this application's tasks."""
        self._require_own_task(task_id)
        return self._senseaid.update_task(task_id, **changes)

    def delete_task(self, task_id: int) -> None:
        """Remove one of this application's tasks from the system.

        The task's readings are purged with it — keeping them would
        leave stale per-task entries behind and skew ``mean_value()``
        / ``distinct_devices()`` with data the application explicitly
        disowned.  Deliveries still in flight when the delete lands
        are dropped on arrival (``late_deliveries_dropped``).
        """
        self._require_own_task(task_id)
        self._senseaid.delete_task(task_id)
        self._task_ids.remove(task_id)
        self._storage.prune_tagged(self.readings_ns, str(task_id))

    def receive_sensed_data(self, point: SensedDataPoint) -> None:
        """Callback invoked by Sense-Aid when data arrives.

        Only data for tasks this application currently owns is
        accepted; a late callback for a deleted task is counted and
        dropped.  The application's own ``on_data`` hook runs after
        the reading is safely recorded, and an exception it raises is
        contained (counted in ``callback_errors``) rather than allowed
        to corrupt the store or the server's delivery path.
        """
        if point.task_id not in self._task_ids:
            self.late_deliveries_dropped += 1
            return
        self._storage.append_log(
            self.readings_ns, point_to_dict(point), tag=str(point.task_id)
        )
        if self._on_data is not None:
            try:
                self._on_data(point)
            except Exception:  # noqa: BLE001 — app bugs stay the app's problem
                self.callback_errors += 1

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------

    @property
    def task_ids(self) -> List[int]:
        return list(self._task_ids)

    @property
    def storage(self) -> StorageBackend:
        return self._storage

    def iter_readings(
        self, task_id: Optional[int] = None
    ) -> Iterator[SensedDataPoint]:
        """Stream readings in arrival order without materialising them."""
        tag = None if task_id is None else str(task_id)
        for doc in self._storage.scan_log(self.readings_ns, tag=tag):
            yield point_from_dict(doc)

    @property
    def readings(self) -> List[SensedDataPoint]:
        return list(self.iter_readings())

    def readings_for_task(self, task_id: int) -> List[SensedDataPoint]:
        return list(self.iter_readings(task_id))

    def reading_count(self, task_id: Optional[int] = None) -> int:
        tag = None if task_id is None else str(task_id)
        return self._storage.log_count(self.readings_ns, tag=tag)

    def distinct_devices(self) -> int:
        """How many distinct (hashed) devices contributed data."""
        return len({p.device_hash for p in self.iter_readings()})

    def mean_value(self, task_id: Optional[int] = None) -> Optional[float]:
        """Mean sensed value, overall or for one task.

        Streamed left-to-right over the log in arrival order — the
        same additions in the same order on every backend, so the
        result is bit-identical whether the store is dicts or a file.
        """
        total = 0.0
        count = 0
        for point in self.iter_readings(task_id):
            total += point.value
            count += 1
        if count == 0:
            return None
        return total / count

    def _require_own_task(self, task_id: int) -> None:
        if task_id not in self._task_ids:
            raise KeyError(
                f"task {task_id} does not belong to application {self.name!r}"
            )
