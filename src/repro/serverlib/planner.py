"""Campaign cost estimation — capacity planning before launch.

An application (or the Sense-Aid operator) wants to know, before
tasking a fleet: *roughly what will this campaign cost the selected
devices?*  The estimator composes the same primitives the simulator
uses — the radio profile's closed-form upload costs and the
tail-opportunity probability implied by the users' traffic process —
into an analytic per-device / per-fleet estimate, so its predictions
can be validated against (and are tested against) full simulations.

Model:

- a sampling window of length ``T`` (the task period) gives a selected
  device probability ``p = 1 − exp(−T/g)`` of a background session
  (mean think gap ``g``) opening a radio tail before the deadline;
- a tail hit costs the in-tail upload marginal (reset or no-reset per
  the server mode); a miss costs a cold upload;
- each sample adds one sensor acquisition;
- per request, exactly ``spatial_density`` devices pay this, and the
  rotation spreads the load over the qualified pool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cellular.power import RadioPowerProfile
from repro.core.config import ServerMode
from repro.core.tasks import TaskSpec
from repro.devices.sensors import SENSOR_SPECS, SensorType
from repro.devices.traffic import TrafficPattern


@dataclass(frozen=True)
class CampaignEstimate:
    """Predicted cost of one campaign."""

    requests: int
    devices_per_request: int
    tail_hit_probability: float
    energy_per_upload_j: float
    fleet_energy_j: float
    #: Worst-case per-device total: what one device would spend if the
    #: rotation (or a tiny qualified pool) made it serve every instant.
    worst_case_device_j: float

    def within_budget(self, budget_j: float, qualified_pool: int) -> bool:
        """Whether a fair rotation over ``qualified_pool`` devices keeps
        every participant under ``budget_j``."""
        if qualified_pool <= 0:
            raise ValueError("qualified_pool must be positive")
        share = self.fleet_energy_j / qualified_pool
        return share <= budget_j


def tail_hit_probability(window_s: float, pattern: TrafficPattern) -> float:
    """P(a background session opens a tail within the window)."""
    if window_s < 0:
        raise ValueError("window must be non-negative")
    return 1.0 - math.exp(-window_s / pattern.mean_gap_s)


def upload_cost_j(
    profile: RadioPowerProfile,
    mode: ServerMode,
    *,
    upload_bytes: int = 600,
    hit: bool,
) -> float:
    """Marginal radio energy of one upload, by opportunity outcome."""
    transfer = profile.transfer_time(upload_bytes)
    if not hit:
        return profile.cold_upload_energy_j(upload_bytes)
    if mode is ServerMode.COMPLETE:
        # Expected no-reset cost at a uniformly random tail offset:
        # active over the (average) displaced tail power.
        return max(
            0.0,
            profile.active_energy_j(transfer)
            - profile.tail_energy_between(0.0, transfer),
        )
    # Basic: transfer plus the expected tail extension (uniform offset
    # into the tail means an average extension of half the tail).
    return (
        profile.active_energy_j(transfer)
        + profile.tail_energy_j(profile.tail_s / 2.0)
    )


def estimate_campaign(
    task: TaskSpec,
    profile: RadioPowerProfile,
    pattern: TrafficPattern,
    mode: ServerMode = ServerMode.COMPLETE,
    *,
    upload_bytes: int = 600,
) -> CampaignEstimate:
    """Analytic cost estimate for one task."""
    requests = task.request_count()
    window = (
        task.sampling_period_s if task.sampling_period_s is not None else 120.0
    )
    p_hit = tail_hit_probability(window, pattern)
    hit_cost = upload_cost_j(profile, mode, upload_bytes=upload_bytes, hit=True)
    miss_cost = upload_cost_j(profile, mode, upload_bytes=upload_bytes, hit=False)
    sensor = SENSOR_SPECS.get(task.sensor_type)
    sensor_j = sensor.sample_energy_j() if sensor is not None else 0.0
    per_upload = p_hit * hit_cost + (1.0 - p_hit) * miss_cost + sensor_j
    fleet = per_upload * requests * task.spatial_density
    return CampaignEstimate(
        requests=requests,
        devices_per_request=task.spatial_density,
        tail_hit_probability=p_hit,
        energy_per_upload_j=per_upload,
        fleet_energy_j=fleet,
        worst_case_device_j=per_upload * requests,
    )
