"""Sense-Aid as an actual service: asyncio API front + load generator.

The paper's framing is *network as a service for participatory
sensing*; this package provides the service loop that framing implies
(see ``docs/service.md``):

- :mod:`repro.service.api` — the four-call application API as typed
  requests/responses, each mapped to an admission priority class;
- :mod:`repro.service.lifecycle` — the explicit per-request state
  machine (QUEUED → ADMITTED → RUNNING → DONE/SHED/FAILED) and the
  totality-checked accounting ledger;
- :mod:`repro.service.server` — :class:`SenseAidService`: bounded
  ``asyncio.Queue``, N consumer coroutines, concurrency-slot
  semaphore, and the :class:`~repro.core.overload.AdmissionController`
  as the front-door backpressure gate (Retry-After hints included);
- :mod:`repro.service.backend` — adapters executing requests against
  a real :class:`~repro.serverlib.appserver.CrowdsensingAppServer`;
- :mod:`repro.service.loadgen` — the seed-deterministic open-/closed-
  loop load generator and its latency/RPS report.
"""

from repro.service.api import (
    KINDS_BY_CLASS,
    REQUEST_CLASS_OF,
    RequestKind,
    ResponseStatus,
    ServiceClosedError,
    ServiceRequest,
    ServiceResponse,
    make_request,
)
from repro.service.backend import AppServerBackend, build_world
from repro.service.lifecycle import (
    LEGAL_TRANSITIONS,
    TERMINAL_STATES,
    IllegalTransitionError,
    LifecycleLedger,
    RequestState,
)
from repro.service.loadgen import (
    DEFAULT_MIX,
    LoadGenerator,
    LoadReport,
    LoadSpec,
    PlannedRequest,
    build_schedule,
    percentile,
    trace_signature,
)
from repro.service.server import (
    ManualClock,
    SenseAidService,
    ServiceClock,
    ServiceConfig,
    ServiceStats,
)

__all__ = [
    "AppServerBackend",
    "DEFAULT_MIX",
    "IllegalTransitionError",
    "KINDS_BY_CLASS",
    "LEGAL_TRANSITIONS",
    "LifecycleLedger",
    "LoadGenerator",
    "LoadReport",
    "LoadSpec",
    "ManualClock",
    "PlannedRequest",
    "REQUEST_CLASS_OF",
    "RequestKind",
    "RequestState",
    "ResponseStatus",
    "SenseAidService",
    "ServiceClock",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceStats",
    "TERMINAL_STATES",
    "build_schedule",
    "build_world",
    "make_request",
    "percentile",
    "trace_signature",
]
