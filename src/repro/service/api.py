"""Typed requests and responses for the Sense-Aid service front.

The paper presents Sense-Aid as *network as a service*: a
crowdsensing application talks to the middleware through a four-call
API (``task`` / ``update_task_param`` / ``delete_task`` and data
delivery).  :mod:`repro.service` promotes that API from a library
facade to an actual request/response service — every call becomes a
:class:`ServiceRequest` envelope that travels through a bounded
``asyncio.Queue``, and every caller gets a :class:`ServiceResponse`
carrying the outcome, the admission verdict, and timing.

Each request kind maps onto one of the three
:class:`~repro.core.overload.RequestClass` priorities the admission
controller sheds by:

- task mutations (create/update/delete) are *control-plane
  registrations* — shed last;
- data delivery is an *upload* — shed under sustained backlog;
- data queries are *queries* — shed first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional, Tuple

from repro.core.overload import RequestClass


class RequestKind(Enum):
    """The service's request vocabulary (the paper's four-call API).

    ``CREATE_TASK``/``UPDATE_TASK``/``DELETE_TASK`` are the three task
    mutations; ``DELIVER_DATA`` is the data-delivery path (a sensed
    data point entering the application's store); ``QUERY_DATA`` reads
    aggregates back out.
    """

    CREATE_TASK = "create_task"
    UPDATE_TASK = "update_task"
    DELETE_TASK = "delete_task"
    DELIVER_DATA = "deliver_data"
    QUERY_DATA = "query_data"


#: Admission priority of each request kind (see module docstring).
REQUEST_CLASS_OF: Dict[RequestKind, RequestClass] = {
    RequestKind.CREATE_TASK: RequestClass.REGISTRATION,
    RequestKind.UPDATE_TASK: RequestClass.REGISTRATION,
    RequestKind.DELETE_TASK: RequestClass.REGISTRATION,
    RequestKind.DELIVER_DATA: RequestClass.UPLOAD,
    RequestKind.QUERY_DATA: RequestClass.QUERY,
}

#: Kinds grouped by admission class, in a deterministic order — the
#: load generator's mix weights address these buckets.
KINDS_BY_CLASS: Dict[RequestClass, Tuple[RequestKind, ...]] = {
    RequestClass.REGISTRATION: (
        RequestKind.CREATE_TASK,
        RequestKind.UPDATE_TASK,
        RequestKind.DELETE_TASK,
    ),
    RequestClass.UPLOAD: (RequestKind.DELIVER_DATA,),
    RequestClass.QUERY: (RequestKind.QUERY_DATA,),
}


class ResponseStatus(Enum):
    """Terminal outcome of one service request."""

    OK = "ok"
    SHED = "shed"
    FAILED = "failed"


@dataclass
class ServiceRequest:
    """One typed request travelling through the service queue."""

    request_id: str
    kind: RequestKind
    app: str = "default"
    payload: Dict[str, Any] = field(default_factory=dict)

    @property
    def request_class(self) -> RequestClass:
        return REQUEST_CLASS_OF[self.kind]


@dataclass(frozen=True)
class ServiceResponse:
    """What the caller gets back for one :class:`ServiceRequest`.

    ``retry_after_s`` is only meaningful when ``status`` is ``SHED``:
    it is the server's ``Retry-After`` hint, sized by the admission
    controller to the backlog overshoot, and it round-trips into
    :meth:`repro.core.config.RetryPolicy.shed_delay_s` on the client
    side.
    """

    request_id: str
    kind: RequestKind
    status: ResponseStatus
    result: Any = None
    error: str = ""
    #: Server backoff hint for shed requests (seconds; 0 otherwise).
    retry_after_s: float = 0.0
    #: Wall time from submit to response resolution.
    latency_s: float = 0.0
    #: Portion of ``latency_s`` spent waiting in the request queue.
    queue_delay_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is ResponseStatus.OK

    @property
    def shed(self) -> bool:
        return self.status is ResponseStatus.SHED

    def as_dict(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "kind": self.kind.value,
            "status": self.status.value,
            "error": self.error,
            "retry_after_s": self.retry_after_s,
            "latency_s": self.latency_s,
            "queue_delay_s": self.queue_delay_s,
        }


class ServiceClosedError(RuntimeError):
    """Submitting to a service that is not running."""


def make_request(
    index: int,
    kind: RequestKind,
    payload: Optional[Dict[str, Any]] = None,
    *,
    app: str = "default",
) -> ServiceRequest:
    """Build a request with the service's canonical id scheme."""
    return ServiceRequest(
        request_id=f"r{index:08d}",
        kind=kind,
        app=app,
        payload=dict(payload or {}),
    )
