"""Backends: what the service front executes requests against.

:class:`AppServerBackend` adapts the paper's synchronous
:class:`~repro.serverlib.appserver.CrowdsensingAppServer` facade into
the service's handler signature — the four-call API over a real
Sense-Aid world.  The load generator addresses tasks by *slot* (a
small stable namespace) rather than raw task ids, so a generated
request mix is meaningful regardless of execution interleaving:
creating an occupied slot, or updating/deleting a vacant one, is a
recorded no-op instead of an error.  That keeps the request trace
deterministic while the outcome of each call stays well-defined at
any consumer count.

:func:`build_world` assembles a minimal single-server world (sim,
towers, network, Sense-Aid server, app server) for the CLI and the
benchmark; tests that already have a world just wrap their own CAS.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.cellular.enodeb import ENodeB, TowerRegistry
from repro.cellular.network import CellularNetwork
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer, SensedDataPoint
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point
from repro.serverlib.appserver import CrowdsensingAppServer
from repro.service.api import RequestKind, ServiceRequest
from repro.sim.engine import Simulator

#: Centre of the default backend world (the paper's campus CS corner).
DEFAULT_CENTER = Point(1275.0, 1350.0)


def build_world(
    *, seed: int = 7, app_name: str = "service", storage=None
) -> Tuple[Simulator, SenseAidServer, CrowdsensingAppServer]:
    """A minimal Sense-Aid world for the service front to execute against.

    ``storage`` is an optional pre-built
    :class:`~repro.storage.StorageBackend`; when omitted the server
    resolves one from ``REPRO_DATASTORE`` as usual.
    """
    sim = Simulator(seed=seed)
    registry = TowerRegistry(
        [ENodeB("t0", DEFAULT_CENTER, coverage_radius_m=5000.0)]
    )
    network = CellularNetwork(sim)
    server = SenseAidServer(
        sim,
        registry,
        network,
        SenseAidConfig(mode=ServerMode.COMPLETE),
        storage=storage,
    )
    cas = CrowdsensingAppServer(server, app_name)
    return sim, server, cas


class AppServerBackend:
    """Executes service requests against one ``CrowdsensingAppServer``.

    ``slots`` is the task-slot namespace the load generator draws
    from; each slot holds at most one live task id.
    """

    def __init__(
        self,
        sim: Simulator,
        cas: CrowdsensingAppServer,
        *,
        slots: int = 16,
        center: Optional[Point] = None,
        sensor_type: SensorType = SensorType.BAROMETER,
    ) -> None:
        if slots < 1:
            raise ValueError("slots must be at least 1")
        self._sim = sim
        self._cas = cas
        self.slots = slots
        self._center = center if center is not None else DEFAULT_CENTER
        self._sensor_type = sensor_type
        self._slot_tasks: Dict[int, int] = {}
        self._delivery_seq = 0

    @property
    def live_tasks(self) -> Dict[int, int]:
        """slot -> task id for every currently live slot."""
        return dict(self._slot_tasks)

    def handle(self, request: ServiceRequest) -> Any:
        payload = request.payload
        kind = request.kind
        if kind is RequestKind.CREATE_TASK:
            return self._create(payload)
        if kind is RequestKind.UPDATE_TASK:
            return self._update(payload)
        if kind is RequestKind.DELETE_TASK:
            return self._delete(payload)
        if kind is RequestKind.DELIVER_DATA:
            return self._deliver(payload)
        if kind is RequestKind.QUERY_DATA:
            return self._query(payload)
        raise ValueError(f"unknown request kind {kind!r}")

    # ------------------------------------------------------------------
    # The four-call API, slot-addressed
    # ------------------------------------------------------------------

    def _slot(self, payload: Dict[str, Any]) -> int:
        return int(payload.get("slot", 0)) % self.slots

    def _create(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        slot = self._slot(payload)
        existing = self._slot_tasks.get(slot)
        if existing is not None:
            return {"slot": slot, "task_id": existing, "noop": True}
        task_id = self._cas.task(
            self._sensor_type,
            self._center,
            float(payload.get("radius_m", 1000.0)),
            int(payload.get("density", 2)),
            sampling_period_s=float(payload.get("period_s", 600.0)),
            sampling_duration_s=float(payload.get("duration_s", 1800.0)),
        )
        self._slot_tasks[slot] = task_id
        return {"slot": slot, "task_id": task_id, "noop": False}

    def _update(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        slot = self._slot(payload)
        task_id = self._slot_tasks.get(slot)
        if task_id is None:
            return {"slot": slot, "noop": True}
        updated = self._cas.update_task_param(
            task_id, spatial_density=int(payload.get("density", 2))
        )
        return {
            "slot": slot,
            "task_id": task_id,
            "spatial_density": updated.spatial_density,
            "noop": False,
        }

    def _delete(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        slot = self._slot(payload)
        task_id = self._slot_tasks.pop(slot, None)
        if task_id is None:
            return {"slot": slot, "noop": True}
        self._cas.delete_task(task_id)
        return {"slot": slot, "task_id": task_id, "noop": False}

    def _deliver(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        slot = self._slot(payload)
        task_id = self._slot_tasks.get(slot)
        if task_id is None:
            return {"slot": slot, "accepted": False}
        self._delivery_seq += 1
        now = self._sim.now
        point = SensedDataPoint(
            request_id=f"svc-{self._delivery_seq}",
            task_id=task_id,
            sensor_type=self._sensor_type,
            value=float(payload.get("value", 1013.25)),
            sensed_at=now,
            delivered_at=now,
            device_hash=str(payload.get("device_hash", "anonymous")),
        )
        self._cas.receive_sensed_data(point)
        return {"slot": slot, "task_id": task_id, "accepted": True}

    def _query(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        slot = payload.get("slot")
        if slot is not None and int(slot) % self.slots in self._slot_tasks:
            task_id = self._slot_tasks[int(slot) % self.slots]
            return {
                "task_id": task_id,
                "readings": self._cas.reading_count(task_id),
                "mean": self._cas.mean_value(task_id),
            }
        return {
            "readings": self._cas.reading_count(),
            "mean": self._cas.mean_value(),
            "distinct_devices": self._cas.distinct_devices(),
        }
