"""Request lifecycle state machine for the service front.

Every request the service touches moves through an explicit state
machine::

    QUEUED ──► ADMITTED ──► RUNNING ──► DONE
      │            │            └─────► FAILED
      └──► SHED    └──────────────────► FAILED   (shutdown drain)

- ``QUEUED``: the request arrived at the front door and is being
  admission-checked;
- ``ADMITTED``: the admission controller accepted it and it sits in
  the bounded request queue;
- ``RUNNING``: a consumer coroutine holds a concurrency slot and is
  executing the handler;
- ``DONE`` / ``SHED`` / ``FAILED``: terminal.  ``SHED`` only ever
  happens at the front door (admission refusal or queue full) — once
  admitted, a request is either served or failed, never silently
  dropped.

The :class:`LifecycleLedger` records every transition, rejects illegal
ones loudly (a state-machine bug must never be absorbed into a
latency histogram), and proves *totality*: every request that was ever
created ends in exactly one terminal state, so no request can skip
SHED/FAILED accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Mapping, Tuple


class RequestState(Enum):
    """Where one request is in its service lifecycle."""

    QUEUED = "queued"
    ADMITTED = "admitted"
    RUNNING = "running"
    DONE = "done"
    SHED = "shed"
    FAILED = "failed"


#: Every legal transition; anything else raises IllegalTransitionError.
LEGAL_TRANSITIONS: Mapping[RequestState, FrozenSet[RequestState]] = {
    RequestState.QUEUED: frozenset(
        {RequestState.ADMITTED, RequestState.SHED, RequestState.FAILED}
    ),
    RequestState.ADMITTED: frozenset({RequestState.RUNNING, RequestState.FAILED}),
    RequestState.RUNNING: frozenset({RequestState.DONE, RequestState.FAILED}),
    RequestState.DONE: frozenset(),
    RequestState.SHED: frozenset(),
    RequestState.FAILED: frozenset(),
}

TERMINAL_STATES: FrozenSet[RequestState] = frozenset(
    {RequestState.DONE, RequestState.SHED, RequestState.FAILED}
)


class IllegalTransitionError(RuntimeError):
    """A request tried to move along an edge the state machine forbids."""

    def __init__(self, request_id: str, current: RequestState, target: RequestState):
        super().__init__(
            f"request {request_id}: illegal transition "
            f"{current.value} -> {target.value}"
        )
        self.request_id = request_id
        self.current = current
        self.target = target


@dataclass
class RequestRecord:
    """One request's transition history: (state, timestamp) pairs."""

    request_id: str
    history: List[Tuple[RequestState, float]] = field(default_factory=list)

    @property
    def state(self) -> RequestState:
        return self.history[-1][0]

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def at(self, state: RequestState) -> float:
        """Timestamp of the first entry into ``state`` (KeyError if never)."""
        for seen, when in self.history:
            if seen is state:
                return when
        raise KeyError(f"{self.request_id} never reached {state.value}")


class LifecycleLedger:
    """Tracks every request's state machine and the aggregate accounting.

    The ledger is the service's source of truth for shed/failure
    accounting: benchmarks and invariant checks read it rather than
    counting ad-hoc.
    """

    def __init__(self, *, keep_records: bool = True) -> None:
        #: Per-request transition history (optional — a long soak can
        #: run with counters only).
        self.keep_records = keep_records
        self.records: Dict[str, RequestRecord] = {}
        self.created = 0
        self.transitions: Dict[str, int] = {}
        self.terminal_counts: Dict[str, int] = {s.value: 0 for s in TERMINAL_STATES}
        self._open_states: Dict[str, RequestState] = {}

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def create(self, request_id: str, now: float) -> None:
        """Register a new request in its initial QUEUED state."""
        if request_id in self._open_states or (
            self.keep_records and request_id in self.records
        ):
            raise ValueError(f"duplicate request id {request_id!r}")
        self.created += 1
        self._open_states[request_id] = RequestState.QUEUED
        if self.keep_records:
            self.records[request_id] = RequestRecord(
                request_id, [(RequestState.QUEUED, now)]
            )

    def advance(self, request_id: str, target: RequestState, now: float) -> None:
        """Move one request along a legal edge (raises otherwise)."""
        current = self._open_states.get(request_id)
        if current is None:
            raise IllegalTransitionError(
                request_id, RequestState.DONE, target
            )  # already terminal (or never created)
        if target not in LEGAL_TRANSITIONS[current]:
            raise IllegalTransitionError(request_id, current, target)
        edge = f"{current.value}->{target.value}"
        self.transitions[edge] = self.transitions.get(edge, 0) + 1
        if self.keep_records:
            self.records[request_id].history.append((target, now))
        if target in TERMINAL_STATES:
            self.terminal_counts[target.value] += 1
            del self._open_states[request_id]
        else:
            self._open_states[request_id] = target

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def open_requests(self) -> int:
        """Requests created but not yet terminal."""
        return len(self._open_states)

    @property
    def done(self) -> int:
        return self.terminal_counts[RequestState.DONE.value]

    @property
    def shed(self) -> int:
        return self.terminal_counts[RequestState.SHED.value]

    @property
    def failed(self) -> int:
        return self.terminal_counts[RequestState.FAILED.value]

    def assert_accounted(self) -> None:
        """Totality check: created == done + shed + failed + open.

        Because ``advance`` only moves along legal edges and terminal
        states remove the request from the open set, any imbalance
        means a request skipped its terminal accounting.
        """
        accounted = self.done + self.shed + self.failed + self.open_requests
        if accounted != self.created:
            raise AssertionError(
                f"lifecycle ledger unbalanced: created={self.created} "
                f"done={self.done} shed={self.shed} failed={self.failed} "
                f"open={self.open_requests}"
            )

    def as_dict(self) -> Dict[str, object]:
        return {
            "created": self.created,
            "done": self.done,
            "shed": self.shed,
            "failed": self.failed,
            "open": self.open_requests,
            "transitions": dict(sorted(self.transitions.items())),
        }
