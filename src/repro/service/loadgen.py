"""Deterministic closed- and open-loop load generation.

The generator separates *planning* from *execution*:

- :func:`build_schedule` expands a :class:`LoadSpec` into a fully
  materialised arrival schedule — request kinds, payloads, and
  inter-arrival offsets — using one seeded ``random.Random``.  The
  schedule is a pure function of the spec, so the request trace is
  identical at any consumer count, on any machine, in either loop
  mode (:func:`trace_signature` fingerprints it for the determinism
  gate).
- :class:`LoadGenerator` replays a schedule against a running
  :class:`~repro.service.server.SenseAidService`:

  - **open loop**: requests fire at their scheduled offsets whether or
    not earlier ones finished — arrival pressure is independent of
    service speed, the shape that exposes queue growth and shedding;
  - **closed loop**: ``concurrency`` workers each wait for the
    previous response before sending the next request — the shape
    that measures max sustained throughput.

  With a :class:`~repro.core.config.RetryPolicy`, shed responses are
  retried after ``shed_delay_s(attempt, retry_after_s)`` — the exact
  client-side contract the simulated device fleet honours, so the
  server's Retry-After hints round-trip end to end.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.config import RetryPolicy
from repro.core.overload import RequestClass
from repro.service.api import (
    KINDS_BY_CLASS,
    RequestKind,
    ResponseStatus,
    ServiceRequest,
    ServiceResponse,
)
from repro.service.server import SenseAidService

#: Distinguishes the request ids of concurrent/successive generator
#: runs against one service (the ledger requires unique ids).
_RUN_COUNTER = itertools.count()

#: Deterministic draw order for the three admission classes.
_CLASS_ORDER: Tuple[RequestClass, ...] = (
    RequestClass.REGISTRATION,
    RequestClass.UPLOAD,
    RequestClass.QUERY,
)

#: Default request mix: mostly data delivery, some control-plane
#: mutations, some queries — a participatory-sensing workload shape.
DEFAULT_MIX: Mapping[str, float] = {
    RequestClass.REGISTRATION.value: 0.2,
    RequestClass.UPLOAD.value: 0.6,
    RequestClass.QUERY.value: 0.2,
}


@dataclass(frozen=True)
class LoadSpec:
    """One load-generation run, fully described (and hashable into a trace)."""

    seed: int = 7
    n_requests: int = 200
    mode: str = "open"  # "open" | "closed"
    rate_rps: float = 200.0
    concurrency: int = 4
    #: Weight per RequestClass value; zero-weight classes never drawn.
    mix: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    #: Task-slot namespace size for generated payloads.
    slots: int = 16
    #: Simulated device population for delivery payloads.
    devices: int = 64

    def __post_init__(self) -> None:
        if self.mode not in ("open", "closed"):
            raise ValueError(f"mode must be 'open' or 'closed', got {self.mode!r}")
        if self.n_requests < 1:
            raise ValueError("n_requests must be at least 1")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.concurrency < 1:
            raise ValueError("concurrency must be at least 1")
        weights = [float(self.mix.get(c.value, 0.0)) for c in _CLASS_ORDER]
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("mix weights must be non-negative and sum > 0")


@dataclass(frozen=True)
class PlannedRequest:
    """One scheduled arrival: when, what, and with which payload."""

    index: int
    offset_s: float
    kind: RequestKind
    payload: Mapping[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "offset_s": round(self.offset_s, 9),
            "kind": self.kind.value,
            "payload": dict(sorted(self.payload.items())),
        }


def build_schedule(spec: LoadSpec) -> List[PlannedRequest]:
    """Materialise the full arrival schedule for ``spec`` (pure/seeded)."""
    rng = random.Random(spec.seed)
    weights = [float(spec.mix.get(c.value, 0.0)) for c in _CLASS_ORDER]
    schedule: List[PlannedRequest] = []
    offset = 0.0
    for index in range(spec.n_requests):
        offset += rng.expovariate(spec.rate_rps)
        request_class = rng.choices(_CLASS_ORDER, weights=weights, k=1)[0]
        kinds = KINDS_BY_CLASS[request_class]
        kind = kinds[rng.randrange(len(kinds))]
        payload: Dict[str, Any] = {
            "index": index,
            "slot": rng.randrange(spec.slots),
        }
        if kind is RequestKind.DELIVER_DATA:
            payload["value"] = round(rng.uniform(980.0, 1040.0), 6)
            payload["device_hash"] = f"dev{rng.randrange(spec.devices):03d}"
        elif kind in (RequestKind.CREATE_TASK, RequestKind.UPDATE_TASK):
            payload["density"] = rng.randrange(1, 4)
        schedule.append(
            PlannedRequest(index=index, offset_s=offset, kind=kind, payload=payload)
        )
    return schedule


def trace_signature(schedule: List[PlannedRequest]) -> str:
    """SHA-256 fingerprint of a schedule — the determinism gate's unit.

    Two runs with the same spec must produce the same signature; the
    signature is also independent of how many consumers later execute
    the schedule, because it is computed before execution starts.
    """
    payload = json.dumps(
        [planned.as_dict() for planned in schedule],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for empty input."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    rank = max(1, int(-(-q / 100.0 * len(ordered) // 1)))  # ceil
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class RequestOutcome:
    """Final outcome of one planned request (after any shed retries)."""

    index: int
    kind: RequestKind
    attempts: int
    response: ServiceResponse
    #: (retry_after_s hint, delay the policy computed) per shed retry.
    retry_waits: List[Tuple[float, float]] = field(default_factory=list)


@dataclass
class LoadReport:
    """What one load-generation run measured."""

    spec: LoadSpec
    trace_sig: str
    outcomes: List[RequestOutcome]
    wall_s: float

    @property
    def responses(self) -> List[ServiceResponse]:
        return [outcome.response for outcome in self.outcomes]

    def count(self, status: ResponseStatus) -> int:
        return sum(1 for r in self.responses if r.status is status)

    @property
    def ok(self) -> int:
        return self.count(ResponseStatus.OK)

    @property
    def shed(self) -> int:
        return self.count(ResponseStatus.SHED)

    @property
    def failed(self) -> int:
        return self.count(ResponseStatus.FAILED)

    @property
    def retries(self) -> int:
        return sum(outcome.attempts - 1 for outcome in self.outcomes)

    @property
    def ok_latencies(self) -> List[float]:
        return [r.latency_s for r in self.responses if r.ok]

    def latency_percentile_s(self, q: float) -> float:
        return percentile(self.ok_latencies, q)

    @property
    def achieved_rps(self) -> float:
        return self.ok / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.spec.mode,
            "seed": self.spec.seed,
            "n_requests": self.spec.n_requests,
            "trace_sig": self.trace_sig,
            "ok": self.ok,
            "shed": self.shed,
            "failed": self.failed,
            "retries": self.retries,
            "wall_s": round(self.wall_s, 6),
            "achieved_rps": round(self.achieved_rps, 3),
            "p50_latency_ms": round(self.latency_percentile_s(50.0) * 1e3, 3),
            "p99_latency_ms": round(self.latency_percentile_s(99.0) * 1e3, 3),
        }


class LoadGenerator:
    """Replays a seeded schedule against a running service."""

    def __init__(
        self,
        spec: LoadSpec,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        max_attempts: Optional[int] = None,
        time_scale: float = 1.0,
    ) -> None:
        self.spec = spec
        self.retry_policy = retry_policy
        self._max_attempts = (
            max_attempts
            if max_attempts is not None
            else (retry_policy.max_attempts if retry_policy is not None else 1)
        )
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        #: Compresses scheduled offsets and retry waits (tests use a
        #: small scale so Retry-After honouring doesn't sleep for real).
        self.time_scale = time_scale
        self.schedule = build_schedule(spec)
        self.trace_sig = trace_signature(self.schedule)
        self.run_tag = f"g{next(_RUN_COUNTER)}"

    async def run(self, service: SenseAidService) -> LoadReport:
        started = time.perf_counter()
        if self.spec.mode == "open":
            outcomes = await self._run_open(service)
        else:
            outcomes = await self._run_closed(service)
        wall_s = time.perf_counter() - started
        outcomes.sort(key=lambda outcome: outcome.index)
        return LoadReport(
            spec=self.spec,
            trace_sig=self.trace_sig,
            outcomes=outcomes,
            wall_s=wall_s,
        )

    async def _run_open(self, service: SenseAidService) -> List[RequestOutcome]:
        loop_started = time.perf_counter()

        async def fire(planned: PlannedRequest) -> RequestOutcome:
            due = planned.offset_s * self.time_scale
            delay = due - (time.perf_counter() - loop_started)
            if delay > 0:
                await asyncio.sleep(delay)
            return await self._submit_with_retry(service, planned)

        tasks = [asyncio.ensure_future(fire(p)) for p in self.schedule]
        return list(await asyncio.gather(*tasks))

    async def _run_closed(self, service: SenseAidService) -> List[RequestOutcome]:
        iterator = iter(self.schedule)
        outcomes: List[RequestOutcome] = []

        async def worker() -> None:
            while True:
                try:
                    planned = next(iterator)
                except StopIteration:
                    return
                outcomes.append(await self._submit_with_retry(service, planned))

        await asyncio.gather(
            *(worker() for _ in range(self.spec.concurrency))
        )
        return outcomes

    async def _submit_with_retry(
        self, service: SenseAidService, planned: PlannedRequest
    ) -> RequestOutcome:
        attempts = 0
        retry_waits: List[Tuple[float, float]] = []
        while True:
            attempts += 1
            # Run- and attempt-unique id so the ledger sees every
            # transmission distinctly (a retry is a new request).
            request = ServiceRequest(
                request_id=f"{self.run_tag}-r{planned.index:08d}a{attempts}",
                kind=planned.kind,
                app="loadgen",
                payload=dict(planned.payload),
            )
            response = await service.submit(planned.kind, request=request)
            if not response.shed or attempts >= self._max_attempts:
                return RequestOutcome(
                    index=planned.index,
                    kind=planned.kind,
                    attempts=attempts,
                    response=response,
                    retry_waits=retry_waits,
                )
            if self.retry_policy is None:
                return RequestOutcome(
                    index=planned.index,
                    kind=planned.kind,
                    attempts=attempts,
                    response=response,
                    retry_waits=retry_waits,
                )
            delay = self.retry_policy.shed_delay_s(attempts, response.retry_after_s)
            retry_waits.append((response.retry_after_s, delay))
            await asyncio.sleep(delay * self.time_scale)
