"""The asyncio network-as-a-service front for Sense-Aid.

This is ROADMAP item 3: :class:`repro.serverlib.CrowdsensingAppServer`
stays the synchronous library facade, and :class:`SenseAidService`
puts an actual *service loop* in front of it —

- every API call arrives as a typed :class:`~repro.service.api.ServiceRequest`;
- the front door runs it through the existing
  :class:`~repro.core.overload.AdmissionController` (priority
  shedding, circuit breaker, Retry-After hints) driven by a wall-clock
  adapter;
- admitted requests enter a **bounded** ``asyncio.Queue`` and are
  drained by N consumer coroutines, each executing under a
  concurrency-slot semaphore;
- every request moves through the explicit lifecycle state machine of
  :mod:`repro.service.lifecycle` (QUEUED → ADMITTED → RUNNING →
  DONE/SHED/FAILED), and the :class:`LifecycleLedger` proves no
  request ever skips its terminal accounting.

Shed responses carry the controller's ``retry_after_s`` hint, which
clients feed straight into
:meth:`repro.core.config.RetryPolicy.shed_delay_s` — the same
backpressure loop the simulated device clients already honour.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.config import OverloadPolicy
from repro.core.overload import AdmissionController, RequestClass
from repro.service.api import (
    RequestKind,
    ResponseStatus,
    ServiceClosedError,
    ServiceRequest,
    ServiceResponse,
    make_request,
)
from repro.service.lifecycle import LifecycleLedger, RequestState

#: A backend handler: executes one request synchronously and returns
#: the result payload (exceptions mark the request FAILED).
Handler = Callable[[ServiceRequest], Any]


class ServiceClock:
    """Monotonic wall clock with a ``.now`` property.

    Duck-types the slice of :class:`repro.sim.engine.Simulator` the
    :class:`AdmissionController` and :class:`SimLogger` need (``now``
    plus a writable attribute slot for the structured event log), so
    the fluid admission queue drains against real elapsed time when
    the service runs under asyncio instead of the discrete-event sim.
    """

    def __init__(self, time_fn: Optional[Callable[[], float]] = None) -> None:
        self._time_fn = time_fn if time_fn is not None else time.monotonic
        self._origin = self._time_fn()

    @property
    def now(self) -> float:
        return self._time_fn() - self._origin


class ManualClock:
    """A hand-cranked clock for deterministic tests."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("time cannot run backwards")
        self.now += dt


@dataclass(frozen=True)
class ServiceConfig:
    """Shape of the service loop.

    ``service_time_s`` models the per-request work a real deployment
    would spend (parameter validation, datastore writes, downstream
    fan-out) as an ``asyncio.sleep`` held under a concurrency slot —
    zero keeps unit tests instant, a couple of milliseconds gives the
    benchmark a realistic saturation point.
    """

    queue_capacity: int = 256
    consumers: int = 4
    concurrency_slots: int = 8
    service_time_s: float = 0.0
    overload: OverloadPolicy = field(default_factory=OverloadPolicy)

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if self.consumers < 1:
            raise ValueError("consumers must be at least 1")
        if self.concurrency_slots < 1:
            raise ValueError("concurrency_slots must be at least 1")
        if self.service_time_s < 0:
            raise ValueError("service_time_s must be non-negative")


@dataclass
class ServiceStats:
    """Aggregate service-side accounting (the ledger holds lifecycles)."""

    submitted: int = 0
    ok: int = 0
    shed_admission: int = 0
    shed_queue_full: int = 0
    failed: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def note_kind(self, kind: RequestKind) -> None:
        self.by_kind[kind.value] = self.by_kind.get(kind.value, 0) + 1


@dataclass
class _InFlight:
    """Queue entry: the request plus its response future and timestamps."""

    request: ServiceRequest
    future: "asyncio.Future[ServiceResponse]"
    created_at: float
    admitted_at: float = 0.0


class SenseAidService:
    """Asyncio request front over a synchronous Sense-Aid backend.

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly::

        service = SenseAidService(backend.handle, ServiceConfig())
        async with service:
            response = await service.submit(RequestKind.QUERY_DATA)
    """

    def __init__(
        self,
        handler: Handler,
        config: Optional[ServiceConfig] = None,
        *,
        clock: Optional[Any] = None,
    ) -> None:
        self._handler = handler
        self.config = config if config is not None else ServiceConfig()
        self.clock = clock if clock is not None else ServiceClock()
        self.admission = AdmissionController(self.clock, self.config.overload)
        self.ledger = LifecycleLedger()
        self.stats = ServiceStats()
        self._queue: Optional["asyncio.Queue[_InFlight]"] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._consumers: List["asyncio.Task[None]"] = []
        self._next_id = 0
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle of the service itself
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    @property
    def queue_size(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    async def start(self) -> None:
        if self._running:
            raise RuntimeError("service already running")
        self._queue = asyncio.Queue(maxsize=self.config.queue_capacity)
        self._slots = asyncio.Semaphore(self.config.concurrency_slots)
        self._consumers = [
            asyncio.get_running_loop().create_task(
                self._consume(i), name=f"senseaid-consumer-{i}"
            )
            for i in range(self.config.consumers)
        ]
        self._running = True

    async def stop(self, *, drain: bool = True) -> None:
        """Stop the service loop.

        ``drain=True`` waits for every queued request to finish first;
        ``drain=False`` fails queued-but-unstarted requests with a
        ``shutdown`` error (their futures resolve, nothing hangs).
        """
        if not self._running:
            return
        self._running = False  # refuse new submissions immediately
        if drain and self._queue is not None:
            await self._queue.join()
        for task in self._consumers:
            task.cancel()
        for task in self._consumers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._consumers = []
        # Anything still queued never reached a consumer: fail it out
        # so the ledger stays total and callers unblock.
        if self._queue is not None:
            while not self._queue.empty():
                item = self._queue.get_nowait()
                self._queue.task_done()
                self._finish(
                    item,
                    RequestState.FAILED,
                    ServiceResponse(
                        request_id=item.request.request_id,
                        kind=item.request.kind,
                        status=ResponseStatus.FAILED,
                        error="shutdown",
                        latency_s=self.clock.now - item.created_at,
                    ),
                )
        self._queue = None
        self._slots = None

    async def __aenter__(self) -> "SenseAidService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # The front door
    # ------------------------------------------------------------------

    async def submit(
        self,
        kind: RequestKind,
        payload: Optional[Dict[str, Any]] = None,
        *,
        app: str = "default",
        request: Optional[ServiceRequest] = None,
    ) -> ServiceResponse:
        """Submit one request and await its response.

        Never raises for shed/failed requests — the outcome is always
        a :class:`ServiceResponse` (``ServiceClosedError`` only when
        the service is not running).
        """
        if not self._running or self._queue is None:
            raise ServiceClosedError("service is not running")
        if request is None:
            request = make_request(self._next_id, kind, payload, app=app)
        self._next_id += 1
        now = self.clock.now
        self.stats.submitted += 1
        self.stats.note_kind(request.kind)
        self.ledger.create(request.request_id, now)

        decision = self.admission.admit(request.request_class)
        if not decision.admitted:
            self.stats.shed_admission += 1
            return self._shed_response(request, now, decision.retry_after_s)

        item = _InFlight(request=request, future=self._new_future(), created_at=now)
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            # Admission said yes but the physical queue is at capacity:
            # shed with a hint sized to draining one full queue.
            self.stats.shed_queue_full += 1
            hint = (
                self.config.overload.retry_after_base_s
                + self.config.queue_capacity / self.config.overload.service_rate_per_s
            )
            return self._shed_response(request, now, hint)
        item.admitted_at = self.clock.now
        self.ledger.advance(request.request_id, RequestState.ADMITTED, item.admitted_at)
        return await item.future

    def _new_future(self) -> "asyncio.Future[ServiceResponse]":
        return asyncio.get_running_loop().create_future()

    def _shed_response(
        self, request: ServiceRequest, created_at: float, retry_after_s: float
    ) -> ServiceResponse:
        now = self.clock.now
        self.ledger.advance(request.request_id, RequestState.SHED, now)
        return ServiceResponse(
            request_id=request.request_id,
            kind=request.kind,
            status=ResponseStatus.SHED,
            error="overloaded",
            retry_after_s=retry_after_s,
            latency_s=now - created_at,
        )

    # ------------------------------------------------------------------
    # Consumer coroutines
    # ------------------------------------------------------------------

    async def _consume(self, index: int) -> None:
        assert self._queue is not None and self._slots is not None
        queue, slots = self._queue, self._slots
        while True:
            item = await queue.get()
            try:
                async with slots:
                    await self._execute(item)
            except asyncio.CancelledError:
                # Cancelled before _execute finished the request (e.g.
                # while waiting for a slot): resolve it as FAILED so the
                # ledger stays total and the submitter unblocks.
                if not item.future.done():
                    self._finish(
                        item,
                        RequestState.FAILED,
                        ServiceResponse(
                            request_id=item.request.request_id,
                            kind=item.request.kind,
                            status=ResponseStatus.FAILED,
                            error="cancelled",
                            latency_s=self.clock.now - item.created_at,
                        ),
                    )
                raise
            finally:
                queue.task_done()

    async def _execute(self, item: _InFlight) -> None:
        request = item.request
        started = self.clock.now
        self.ledger.advance(request.request_id, RequestState.RUNNING, started)
        queue_delay = started - item.admitted_at
        try:
            if self.config.service_time_s > 0:
                await asyncio.sleep(self.config.service_time_s)
            result = self._handler(request)
        except asyncio.CancelledError:
            # Shutdown mid-request: account it as FAILED, then let the
            # cancellation unwind the consumer.
            self._finish(
                item,
                RequestState.FAILED,
                ServiceResponse(
                    request_id=request.request_id,
                    kind=request.kind,
                    status=ResponseStatus.FAILED,
                    error="cancelled",
                    latency_s=self.clock.now - item.created_at,
                    queue_delay_s=queue_delay,
                ),
            )
            raise
        except Exception as exc:  # noqa: BLE001 — failures become responses
            self._finish(
                item,
                RequestState.FAILED,
                ServiceResponse(
                    request_id=request.request_id,
                    kind=request.kind,
                    status=ResponseStatus.FAILED,
                    error=f"{type(exc).__name__}: {exc}",
                    latency_s=self.clock.now - item.created_at,
                    queue_delay_s=queue_delay,
                ),
            )
            return
        self._finish(
            item,
            RequestState.DONE,
            ServiceResponse(
                request_id=request.request_id,
                kind=request.kind,
                status=ResponseStatus.OK,
                result=result,
                latency_s=self.clock.now - item.created_at,
                queue_delay_s=queue_delay,
            ),
        )

    def _finish(
        self, item: _InFlight, state: RequestState, response: ServiceResponse
    ) -> None:
        self.ledger.advance(item.request.request_id, state, self.clock.now)
        if state is RequestState.DONE:
            self.stats.ok += 1
        elif state is RequestState.FAILED:
            self.stats.failed += 1
        if not item.future.done():
            item.future.set_result(response)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def scorecard(self) -> Dict[str, Any]:
        """Service-side accounting snapshot (ledger + admission stats)."""
        admission = self.admission.stats
        return {
            "lifecycle": self.ledger.as_dict(),
            "submitted": self.stats.submitted,
            "ok": self.stats.ok,
            "failed": self.stats.failed,
            "shed_admission": self.stats.shed_admission,
            "shed_queue_full": self.stats.shed_queue_full,
            "by_kind": dict(sorted(self.stats.by_kind.items())),
            "admission": {
                "admitted": dict(admission.admitted),
                "shed": dict(admission.shed),
                "breaker_opens": admission.breaker_opens,
                "max_queue_depth": admission.max_queue_depth,
            },
        }
