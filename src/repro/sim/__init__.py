"""Deterministic discrete-event simulation kernel.

Every Sense-Aid experiment runs inside a single :class:`Simulator`.
Components schedule callbacks on the shared event heap and draw
randomness from named, independently seeded streams so that results are
reproducible run-to-run and insensitive to the order in which
components are constructed.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.metrics import Counter, MetricsRegistry, StateResidency, TimeSeries
from repro.sim.perf import PerfProbe, PerfRegistry, events_per_second
from repro.sim.processes import PeriodicProcess
from repro.sim.rng import RandomStreams

__all__ = [
    "Counter",
    "Event",
    "EventQueue",
    "MetricsRegistry",
    "PerfProbe",
    "PerfRegistry",
    "PeriodicProcess",
    "RandomStreams",
    "SimClock",
    "Simulator",
    "StateResidency",
    "TimeSeries",
    "events_per_second",
]
