"""Simulation clock.

Time is a float number of seconds since the start of the run.  The
clock only ever moves forward, and only the engine may advance it; all
other components hold a read-only reference.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulation clock measured in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock must start at a non-negative time, got {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises :class:`ValueError` on any attempt to move backwards,
        which would indicate a corrupted event heap.
        """
        if time < self._now:
            raise ValueError(
                f"clock cannot move backwards: now={self._now!r}, requested={time!r}"
            )
        self._now = float(time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimClock t={self._now:.6f}>"


def minutes(value: float) -> float:
    """Convert minutes to simulation seconds."""
    return float(value) * 60.0


def hours(value: float) -> float:
    """Convert hours to simulation seconds."""
    return float(value) * 3600.0
