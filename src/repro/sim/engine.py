"""The discrete-event simulation engine.

:class:`Simulator` owns the clock, the event heap, the named random
streams, and the metrics registry.  Components receive the simulator at
construction and interact with simulated time exclusively through it.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue
from repro.sim.metrics import MetricsRegistry
from repro.sim.perf import PerfRegistry
from repro.sim.rng import RandomStreams

# Priorities for simultaneous events: infrastructure state changes fire
# before application logic reads them, and bookkeeping runs last.
PRIORITY_RADIO = -10
PRIORITY_DEFAULT = 0
PRIORITY_BOOKKEEPING = 10


class Simulator:
    """Deterministic discrete-event simulator."""

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self.clock = SimClock(start_time)
        self.rng = RandomStreams(seed)
        self.metrics = MetricsRegistry()
        #: Wall-clock perf probes for hot paths; never feeds the
        #: simulation, so instrumentation cannot perturb determinism.
        self.perf = PerfRegistry()
        self._queue = EventQueue()
        self._running = False
        self._event_count = 0
        self._device_events = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        return self._event_count

    @property
    def device_events(self) -> int:
        """Per-device work units folded into batched events.

        A struct-of-arrays component (``repro.core.deviceplane``)
        advances thousands of devices inside one heap event, so
        :attr:`events_processed` alone under-counts the work done.
        Batched components report their per-device operation counts
        here via :meth:`note_device_events`; throughput scorecards use
        this as the events/s numerator for vectorized tiers.
        """
        return self._device_events

    def note_device_events(self, count: int) -> None:
        """Credit ``count`` per-device operations to a batched event."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count!r}")
        self._device_events += count

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        return self._queue.push(self.now + delay, callback, args, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: now={self.now!r}, requested={time!r}"
            )
        return self._queue.push(time, callback, args, priority)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a pending event.  None and already-cancelled are no-ops."""
        if event is None or event.cancelled:
            return
        event.cancel()
        self._queue.note_cancelled()

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Process events until the heap empties, ``until`` is reached,
        or ``max_events`` have fired.  Returns the number of events
        processed by this call.

        When ``until`` is given the clock is advanced to exactly
        ``until`` on return even if the last event fired earlier, so
        residency-based energy accounting covers the full window.
        """
        if self._running:
            raise RuntimeError("simulator is not re-entrant")
        self._running = True
        processed = 0
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                assert event is not None
                self.clock.advance_to(event.time)
                event.fire()
                processed += 1
                self._event_count += 1
            if until is not None and until > self.now:
                self.clock.advance_to(until)
        finally:
            self._running = False
        return processed

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Process events for ``duration`` seconds of simulated time."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration!r}")
        return self.run(until=self.now + duration, max_events=max_events)
