"""Event primitives for the discrete-event kernel.

An :class:`Event` is a callback bound to a simulation time.  Events are
totally ordered by ``(time, priority, sequence)`` so that simultaneous
events fire in a deterministic order: lower priority value first, then
insertion order.  Cancellation is lazy — a cancelled event stays on the
heap but is skipped when popped, which keeps cancellation O(1).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` (or
    :meth:`EventQueue.push`) rather than directly.  The public surface
    is :meth:`cancel` and the read-only properties.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "_cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> None:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time!r}")
        self.time = float(time)
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self._cancelled = True

    def fire(self) -> None:
        """Invoke the callback unless cancelled."""
        if not self._cancelled:
            self.callback(*self.args)

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.3f} prio={self.priority} {name} [{state}]>"


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> Event:
        """Create and enqueue an event; returns it for cancellation."""
        event = Event(time, next(self._counter), callback, args, priority)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or None if empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def note_cancelled(self) -> None:
        """Adjust the live count after an external ``Event.cancel()``.

        :class:`Simulator` wraps cancellation so callers normally never
        need this.
        """
        if self._live > 0:
            self._live -= 1

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
