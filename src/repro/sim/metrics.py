"""Metric primitives: counters, time series, and state-residency trackers.

Energy accounting in the reproduction is built on
:class:`StateResidency`: the radio power model records how long each
RRC state was occupied, and Joules are ``sum(power_w * residency_s)``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.sim.clock import SimClock


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount!r})")
        self._value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self._value}>"


class TimeSeries:
    """An append-only sequence of ``(time, value)`` samples."""

    __slots__ = ("name", "_samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        if self._samples and time < self._samples[-1][0]:
            raise ValueError(
                f"time series {self.name!r} must be recorded in time order"
            )
        self._samples.append((float(time), float(value)))

    @property
    def samples(self) -> List[Tuple[float, float]]:
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def last(self) -> Optional[Tuple[float, float]]:
        return self._samples[-1] if self._samples else None


class StateResidency:
    """Tracks total time spent in each state of a state machine.

    The tracker is driven by :meth:`transition` calls; it accumulates
    wall-clock (simulation) residency per state label.  ``snapshot``
    closes the books up to *now* without changing state, so energy can
    be read mid-run.
    """

    def __init__(self, clock: SimClock, initial_state: Hashable) -> None:
        self._clock = clock
        self._state: Hashable = initial_state
        self._entered_at = clock.now
        self._residency: Dict[Hashable, float] = {}

    @property
    def state(self) -> Hashable:
        return self._state

    def transition(self, new_state: Hashable) -> None:
        """Close residency of the current state and enter ``new_state``."""
        now = self._clock.now
        self._accumulate(now)
        self._state = new_state
        self._entered_at = now

    def time_in_state(self) -> float:
        """Seconds spent so far in the *current* state occupancy."""
        return self._clock.now - self._entered_at

    def snapshot(self) -> Dict[Hashable, float]:
        """Residency per state including the in-progress occupancy."""
        result = dict(self._residency)
        current = result.get(self._state, 0.0)
        result[self._state] = current + self.time_in_state()
        return result

    def _accumulate(self, now: float) -> None:
        elapsed = now - self._entered_at
        if elapsed < 0:  # pragma: no cover - guarded by SimClock
            raise ValueError("negative residency; clock moved backwards")
        self._residency[self._state] = self._residency.get(self._state, 0.0) + elapsed


class MetricsRegistry:
    """A namespace of counters and time series shared by one simulation."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def series(self, name: str) -> TimeSeries:
        series = self._series.get(name)
        if series is None:
            series = TimeSeries(name)
            self._series[name] = series
        return series

    def counter_values(self) -> Dict[str, float]:
        return {name: c.value for name, c in self._counters.items()}

    def series_names(self) -> List[str]:
        return sorted(self._series)
