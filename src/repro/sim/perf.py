"""Lightweight performance counters for the simulation's hot paths.

The simulator is deterministic, but how *fast* it runs is not — and the
north star ("as fast as the hardware allows") needs the hot paths to be
observable, not just fast today.  :class:`PerfRegistry` is a namespace
of :class:`PerfProbe` s, one per instrumented operation, each tracking

- ``calls`` — how many times the operation ran,
- ``wall_s`` — cumulative host wall-clock time inside it, and
- ``items`` — how much *work* it touched (devices scanned per query,
  positions re-read per refresh, …), the number that exposes an
  accidental O(fleet) scan even when wall time looks fine.

Wall time is measured with :func:`time.perf_counter` and never feeds
back into the simulation, so instrumentation cannot perturb
determinism; two same-seed runs differ only in their perf numbers.

Probes export into the shared :class:`~repro.sim.metrics.MetricsRegistry`
(``perf.<probe>.calls`` / ``.wall_s`` / ``.items``) and serialise via
:meth:`PerfRegistry.snapshot` into the ``BENCH_*.json`` artifacts, so
regressions show up in the benchmark book (``docs/benchmarks.md``).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.sim.metrics import MetricsRegistry


class PerfProbe:
    """Counters for one instrumented operation."""

    __slots__ = ("name", "calls", "wall_s", "items", "max_items")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.wall_s = 0.0
        #: Total work items touched across all calls.
        self.items = 0
        #: Largest single-call work count — the per-query bound the
        #: scalability gate asserts on.
        self.max_items = 0

    def observe(self, wall_s: float = 0.0, items: int = 0) -> None:
        """Record one completed call."""
        self.calls += 1
        self.wall_s += wall_s
        self.items += items
        if items > self.max_items:
            self.max_items = items

    def items_per_call(self) -> float:
        """Mean work per call (0.0 before the first call)."""
        return self.items / self.calls if self.calls else 0.0

    def rate_per_s(self) -> float:
        """Calls per wall-clock second (0.0 when no time accrued)."""
        return self.calls / self.wall_s if self.wall_s > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PerfProbe {self.name} calls={self.calls} "
            f"wall={self.wall_s:.4f}s items={self.items}>"
        )


class _Measurement:
    """Context manager timing one call of a probe.

    ``items`` may be set (or added to) inside the ``with`` block, after
    the workload has revealed how much it touched.
    """

    __slots__ = ("_probe", "_start", "items")

    def __init__(self, probe: PerfProbe) -> None:
        self._probe = probe
        self._start = 0.0
        self.items = 0

    def __enter__(self) -> "_Measurement":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._probe.observe(time.perf_counter() - self._start, self.items)


class PerfRegistry:
    """A namespace of perf probes shared by one simulation."""

    def __init__(self) -> None:
        self._probes: Dict[str, PerfProbe] = {}

    def probe(self, name: str) -> PerfProbe:
        probe = self._probes.get(name)
        if probe is None:
            probe = PerfProbe(name)
            self._probes[name] = probe
        return probe

    def measure(self, name: str) -> _Measurement:
        """``with perf.measure("registry.devices_within") as m: ...``"""
        return _Measurement(self.probe(name))

    def count(self, name: str, items: int = 0) -> None:
        """Record an un-timed call (cheap counters on cache hits etc.)."""
        self.probe(name).observe(0.0, items)

    def probes(self) -> Dict[str, PerfProbe]:
        return dict(self._probes)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """All probes as plain dicts, ready for a BENCH JSON artifact."""
        return {
            name: {
                "calls": probe.calls,
                "wall_s": round(probe.wall_s, 6),
                "items": probe.items,
                "max_items": probe.max_items,
                "items_per_call": round(probe.items_per_call(), 3),
            }
            for name, probe in sorted(self._probes.items())
        }

    def export_to(self, metrics: MetricsRegistry) -> None:
        """Mirror every probe into ``perf.<name>.*`` metric counters.

        Counters are monotonic, so export is additive: call it once at
        the end of a run (the benchmark harness does).
        """
        for name, probe in self._probes.items():
            metrics.counter(f"perf.{name}.calls").add(probe.calls)
            metrics.counter(f"perf.{name}.wall_s").add(probe.wall_s)
            metrics.counter(f"perf.{name}.items").add(probe.items)

    def reset(self) -> None:
        self._probes.clear()


def events_per_second(events: int, wall_s: Optional[float]) -> float:
    """Throughput helper for benchmark scorecards."""
    if not wall_s or wall_s <= 0:
        return 0.0
    return events / wall_s
