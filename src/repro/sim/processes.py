"""Process helpers layered over the event kernel."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import PRIORITY_DEFAULT, Simulator
from repro.sim.events import Event


class PeriodicProcess:
    """Fires a callback every ``period`` seconds until stopped.

    The next firing is scheduled *before* the callback runs, so a
    callback that stops the process cancels cleanly, and a slow chain
    of events cannot skew the period.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        *,
        start_delay: Optional[float] = None,
        priority: int = PRIORITY_DEFAULT,
        max_firings: Optional[int] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self._sim = sim
        self._period = float(period)
        self._callback = callback
        self._priority = priority
        self._max_firings = max_firings
        self._firings = 0
        self._stopped = False
        delay = self._period if start_delay is None else float(start_delay)
        self._pending: Optional[Event] = sim.schedule(
            delay, self._fire, priority=priority
        )

    @property
    def firings(self) -> int:
        return self._firings

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self) -> None:
        """Stop the process; pending firing is cancelled."""
        self._stopped = True
        self._sim.cancel(self._pending)
        self._pending = None

    def _fire(self) -> None:
        if self._stopped:
            return
        self._firings += 1
        if self._max_firings is not None and self._firings >= self._max_firings:
            self._pending = None
            self._stopped = True
        else:
            self._pending = self._sim.schedule(
                self._period, self._fire, priority=self._priority
            )
        self._callback()
