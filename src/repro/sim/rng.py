"""Named, independently seeded random streams.

A simulation draws randomness for many purposes — mobility, background
traffic, sensor noise, PCS prediction coin flips.  If they all shared
one generator, adding a draw in one component would perturb every other
component and destroy run-to-run comparability between frameworks.
Instead each purpose gets its own :class:`random.Random` keyed by a
stable string name, derived from the master seed with SHA-256 so that
streams are statistically independent.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Factory of deterministic, named random streams."""

    def __init__(self, master_seed: int) -> None:
        self._master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same ``(master_seed, name)`` pair always yields the same
        sequence, regardless of creation order.
        """
        if not name:
            raise ValueError("stream name must be non-empty")
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        seed = self._derive_seed(name)
        stream = random.Random(seed)
        self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child stream-space, e.g. one per simulated user."""
        return RandomStreams(self._derive_seed(f"spawn:{name}"))

    def _derive_seed(self, name: str) -> int:
        material = f"{self._master_seed}:{name}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RandomStreams seed={self._master_seed} "
            f"streams={sorted(self._streams)!r}>"
        )
