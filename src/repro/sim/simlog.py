"""Simulation-time-aware logging.

Standard :mod:`logging`, but every record carries the *simulation*
clock rather than the wall clock — `t=1234.5s` is what you need when
debugging a scheduling decision.  Loggers are namespaced under
``repro.*`` and silent unless the host application configures logging,
like any library.

Usage::

    log = SimLogger(sim, "repro.core.server")
    log.info("scheduled %s on %s", request_id, device_ids)

Besides free-text records, components emit **structured events**
(``log.event("retry", device_id=..., attempt=...)``) into a per-run
:class:`StructuredEventLog`, so a chaos run is auditable — which
messages were dropped, delayed, duplicated; which uploads were retried
and which duplicates the server discarded — from the log alone, and a
whole run can be fingerprinted (:meth:`StructuredEventLog.signature`)
to prove two same-seed runs were bit-identical.
"""

from __future__ import annotations

import hashlib
import json
import logging
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.sim.engine import Simulator


@dataclass(frozen=True)
class SimEventRecord:
    """One structured event: what happened, where, when, with what."""

    time: float
    source: str
    kind: str
    fields: Mapping[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "source": self.source,
            "kind": self.kind,
            **dict(self.fields),
        }


class StructuredEventLog:
    """Append-only record of structured simulation events.

    One instance per :class:`Simulator`, shared by every
    :class:`SimLogger` attached to that simulator — obtain it with
    :func:`structured_log`.
    """

    def __init__(self) -> None:
        self._records: List[SimEventRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def append(self, record: SimEventRecord) -> None:
        self._records.append(record)

    def records(
        self, kind: Optional[str] = None, source: Optional[str] = None
    ) -> List[SimEventRecord]:
        """Events, optionally filtered by kind and/or source logger."""
        return [
            r
            for r in self._records
            if (kind is None or r.kind == kind)
            and (source is None or r.source == source)
        ]

    def counts(self) -> Dict[str, int]:
        """How many events of each kind were recorded."""
        out: Dict[str, int] = {}
        for record in self._records:
            out[record.kind] = out.get(record.kind, 0) + 1
        return out

    def as_dicts(
        self, kind: Optional[str] = None, source: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Events as plain dicts (optionally filtered) — artifact fodder."""
        return [r.as_dict() for r in self.records(kind=kind, source=source)]

    def dump_jsonl(self, path: str, kind: Optional[str] = None) -> int:
        """Write events (optionally one kind) as JSON lines.

        Benchmarks dump their structured logs next to their scorecards
        so a run's full audit trail ships with its numbers.  Returns
        the number of records written.
        """
        records = self.as_dicts(kind=kind)
        with open(path, "w", encoding="utf-8") as f:
            for record in records:
                f.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        return len(records)

    def signature(self) -> str:
        """SHA-256 over the canonical serialisation of every event.

        Two runs with the same seed and scenario must produce the same
        signature — the determinism check the chaos benchmark asserts.
        """
        payload = json.dumps(
            [r.as_dict() for r in self._records],
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def structured_log(sim: Simulator) -> StructuredEventLog:
    """The per-simulator structured event log (created on first use)."""
    existing = getattr(sim, "_structured_event_log", None)
    if existing is None:
        existing = StructuredEventLog()
        sim._structured_event_log = existing
    return existing


class SimLogger:
    """A thin logging facade that prefixes simulation time."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self._sim = sim
        self._logger = logging.getLogger(name)

    @property
    def name(self) -> str:
        return self._logger.name

    def isEnabledFor(self, level: int) -> bool:
        return self._logger.isEnabledFor(level)

    def debug(self, message: str, *args: Any) -> None:
        self._log(logging.DEBUG, message, args)

    def info(self, message: str, *args: Any) -> None:
        self._log(logging.INFO, message, args)

    def warning(self, message: str, *args: Any) -> None:
        self._log(logging.WARNING, message, args)

    def error(self, message: str, *args: Any) -> None:
        self._log(logging.ERROR, message, args)

    def event(self, kind: str, **fields: Any) -> SimEventRecord:
        """Record a structured event (and mirror it at DEBUG level).

        The record lands in the simulator's :class:`StructuredEventLog`
        unconditionally — structured auditability must not depend on
        the host application's logging configuration.
        """
        record = SimEventRecord(
            time=self._sim.now,
            source=self._logger.name,
            kind=kind,
            fields=fields,
        )
        structured_log(self._sim).append(record)
        if self._logger.isEnabledFor(logging.DEBUG):
            rendered = " ".join(f"{k}={v!r}" for k, v in fields.items())
            self._logger.log(
                logging.DEBUG, "[t=%.2fs] %s %s", self._sim.now, kind, rendered
            )
        return record

    def _log(self, level: int, message: str, args: tuple) -> None:
        if not self._logger.isEnabledFor(level):
            return
        rendered = message % args if args else message
        self._logger.log(level, "[t=%.2fs] %s", self._sim.now, rendered)
