"""Simulation-time-aware logging.

Standard :mod:`logging`, but every record carries the *simulation*
clock rather than the wall clock — `t=1234.5s` is what you need when
debugging a scheduling decision.  Loggers are namespaced under
``repro.*`` and silent unless the host application configures logging,
like any library.

Usage::

    log = SimLogger(sim, "repro.core.server")
    log.info("scheduled %s on %s", request_id, device_ids)
"""

from __future__ import annotations

import logging
from typing import Any

from repro.sim.engine import Simulator


class SimLogger:
    """A thin logging facade that prefixes simulation time."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self._sim = sim
        self._logger = logging.getLogger(name)

    @property
    def name(self) -> str:
        return self._logger.name

    def isEnabledFor(self, level: int) -> bool:
        return self._logger.isEnabledFor(level)

    def debug(self, message: str, *args: Any) -> None:
        self._log(logging.DEBUG, message, args)

    def info(self, message: str, *args: Any) -> None:
        self._log(logging.INFO, message, args)

    def warning(self, message: str, *args: Any) -> None:
        self._log(logging.WARNING, message, args)

    def error(self, message: str, *args: Any) -> None:
        self._log(logging.ERROR, message, args)

    def _log(self, level: int, message: str, args: tuple) -> None:
        if not self._logger.isEnabledFor(level):
            return
        rendered = message % args if args else message
        self._logger.log(level, "[t=%.2fs] %s", self._sim.now, rendered)
