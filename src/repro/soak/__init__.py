"""Jepsen-style chaos soak: seeded fault fuzzing + invariant suite.

``repro.soak`` turns the chaos layer from a drill-scripting tool into
a generative robustness harness: a :class:`NemesisGenerator` samples
random-but-reproducible fault plans (:mod:`repro.soak.nemesis`), a
:class:`SoakHarness` runs each one as a full sharded-campaign episode
and judges the settled world against a cross-layer invariant suite
(:mod:`repro.soak.invariants`), and failures are minimized into
portable JSON reproducers by a delta-debugging shrinker
(:mod:`repro.soak.shrinker`) replayable via ``repro soak --replay``.
"""

from repro.soak.harness import (
    EpisodeResult,
    PLANTED_BUGS,
    SoakHarness,
    SoakReport,
)
from repro.soak.invariants import InvariantViolation, run_invariant_suite
from repro.soak.nemesis import (
    IntensityTier,
    NemesisGenerator,
    TIERS,
    WorldSpec,
    episode_seed,
    resolve_tier,
)
from repro.soak.shrinker import (
    REPRODUCER_SCHEMA,
    ShrinkResult,
    build_reproducer,
    load_reproducer,
    replay_reproducer,
    shrink_episode,
    shrink_events,
    write_reproducer,
)

__all__ = [
    "EpisodeResult",
    "IntensityTier",
    "InvariantViolation",
    "NemesisGenerator",
    "PLANTED_BUGS",
    "REPRODUCER_SCHEMA",
    "ShrinkResult",
    "SoakHarness",
    "SoakReport",
    "TIERS",
    "WorldSpec",
    "build_reproducer",
    "episode_seed",
    "load_reproducer",
    "replay_reproducer",
    "resolve_tier",
    "run_invariant_suite",
    "shrink_episode",
    "shrink_events",
    "write_reproducer",
]
