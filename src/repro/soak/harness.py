"""The soak harness: build world → inject plan → settle → judge.

One *episode* is a full crowdsensing campaign on a 3-shard WAL-backed
fleet, with a nemesis-generated :class:`FaultPlan` firing against it.
After the fault horizon the harness force-heals anything still broken
(the nemesis pairs most outages itself; shard crashes recover through
failover), lets the fleet settle, runs anti-entropy repair, and then
judges the world against the cross-layer invariant suite
(:mod:`repro.soak.invariants`).

Determinism is the load-bearing property: an episode is a pure
function of ``(master seed, episode index, tier, world shape)``.  The
plan is canonicalized to JSON before the first run and each arm
rebuilds its own plan from that document, because a
:class:`~repro.faults.models.GilbertElliott` loss model steps *in
place* — sharing one instance across runs would leak chain state and
break bit-identity.  ``check_replay`` runs every episode twice and
diffs structured-log signatures and verdicts, emitting
``REPLAY_DIVERGED`` on mismatch.

``planted_bug`` is a test-only hook that tampers with the settled
world before judgement (e.g. ``"lost_ack"`` discards one burned
idempotency key), giving the shrinker and the CI reproducer path a
guaranteed-failing episode to minimize.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cellular.network import CellularNetwork
from repro.clientlib import SenseAidClient
from repro.core.config import (
    OverloadPolicy,
    RetryPolicy,
    SelectorWeights,
    SenseAidConfig,
    ServerMode,
)
from repro.core.sharding import ShardSpec, ShardedSenseAid
from repro.core.tasks import TaskSpec
from repro.devices.device import SimDevice
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point
from repro.environment.mobility import StaticMobility
from repro.faults import FaultInjector, FaultPlan, reset_global_ids
from repro.sim.engine import Simulator
from repro.sim.simlog import structured_log
from repro.soak.invariants import (
    InvariantViolation,
    check_plane_equivalence,
    check_wal_recovery,
    run_invariant_suite,
)
from repro.soak.nemesis import (
    NemesisGenerator,
    WorldSpec,
    episode_seed,
    resolve_tier,
)

#: Shard sites, one default tower each (``<shard>-t0``).
_SITES = (
    ("s1", Point(500.0, 500.0)),
    ("s2", Point(1500.0, 500.0)),
    ("s3", Point(2500.0, 500.0)),
)
_CENTER = Point(1500.0, 500.0)
_HEARTBEAT_S = 5.0
_PHI_THRESHOLD = 8.0

_RETRY = RetryPolicy(
    max_attempts=6,
    ack_timeout_s=20.0,
    backoff_base_s=15.0,
    backoff_multiplier=2.0,
    jitter_fraction=0.0,
    tail_wait_max_s=30.0,
)

#: Fairness-dominant weights — selection depends only on durable
#: counters, the strongest convergence signal WAL replay can give.
_FAIR = SelectorWeights(alpha=0.0, beta=1.0, gamma=0.0, phi=0.0)

#: Known planted bugs (test-only): name -> applied post-repair.
PLANTED_BUGS = ("lost_ack",)


@dataclass
class EpisodeResult:
    """Verdict for one soak episode (one seed, one plan)."""

    episode: int
    sim_seed: int
    plan_obj: dict
    violations: List[InvariantViolation]
    signature: str
    stats: Dict[str, object]
    replay_checked: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def plan_events(self) -> int:
        return len(self.plan_obj["events"])

    def codes(self) -> List[str]:
        return sorted({v.code for v in self.violations})

    def as_dict(self) -> dict:
        return {
            "episode": self.episode,
            "sim_seed": self.sim_seed,
            "plan_events": self.plan_events,
            "ok": self.ok,
            "codes": self.codes(),
            "violations": [v.as_dict() for v in self.violations],
            "signature": self.signature,
            "stats": dict(self.stats),
            "replay_checked": self.replay_checked,
        }


@dataclass
class SoakReport:
    """Aggregate over a soak run."""

    master_seed: int
    tier: str
    results: List[EpisodeResult] = field(default_factory=list)

    @property
    def episodes(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> List[EpisodeResult]:
        return [r for r in self.results if not r.ok]

    @property
    def invariant_pass_rate(self) -> float:
        if not self.results:
            return 1.0
        return 1.0 - len(self.failures) / len(self.results)

    def as_dict(self) -> dict:
        return {
            "master_seed": self.master_seed,
            "tier": self.tier,
            "episodes": self.episodes,
            "invariant_pass_rate": self.invariant_pass_rate,
            "mean_plan_events": (
                sum(r.plan_events for r in self.results) / len(self.results)
                if self.results
                else 0.0
            ),
            "results": [r.as_dict() for r in self.results],
        }


class SoakHarness:
    """Runs seeded soak episodes against the sharded fleet."""

    def __init__(
        self,
        master_seed: int,
        *,
        wal_root: str,
        tier="medium",
        n_devices: int = 10,
        horizon_s: float = 1200.0,
        settle_s: float = 420.0,
        sampling_period_s: float = 150.0,
        spatial_density: int = 3,
        check_replay: bool = True,
        plane_crosscheck: bool = True,
        planted_bug: Optional[str] = None,
    ) -> None:
        if planted_bug is not None and planted_bug not in PLANTED_BUGS:
            raise ValueError(
                f"unknown planted bug {planted_bug!r}; known: {PLANTED_BUGS}"
            )
        self.master_seed = master_seed
        self.tier = resolve_tier(tier)
        self.wal_root = wal_root
        self.n_devices = n_devices
        self.horizon_s = float(horizon_s)
        self.settle_s = float(settle_s)
        self.sampling_period_s = float(sampling_period_s)
        self.spatial_density = spatial_density
        self.check_replay = check_replay
        self.plane_crosscheck = plane_crosscheck
        self.planted_bug = planted_bug
        self._generator = NemesisGenerator(master_seed)
        self._run_counter = 0

    # ------------------------------------------------------------------
    # World description (shared with the nemesis and the reproducers)
    # ------------------------------------------------------------------

    def device_ids(self) -> Tuple[str, ...]:
        return tuple(f"d{i:02d}" for i in range(self.n_devices))

    def world_spec(self) -> WorldSpec:
        """What the nemesis may target.  Tower and deregistration
        faults are scoped to the injector's front shard (the first),
        since a :class:`FaultInjector` binds one registry/server."""
        devices = self.device_ids()
        front = _SITES[0][0]
        return WorldSpec(
            horizon_s=self.horizon_s,
            shard_ids=tuple(sid for sid, _ in _SITES),
            tower_ids=(f"{front}-t0",),
            killable_device_ids=devices,
            deregisterable_device_ids=devices,
            overload_enabled=True,
        )

    def world_params(self) -> dict:
        """Everything a reproducer needs to rebuild this harness."""
        return {
            "n_devices": self.n_devices,
            "horizon_s": self.horizon_s,
            "settle_s": self.settle_s,
            "sampling_period_s": self.sampling_period_s,
            "spatial_density": self.spatial_density,
        }

    # ------------------------------------------------------------------
    # One simulated run
    # ------------------------------------------------------------------

    def _fresh_wal_dir(self, label: str) -> str:
        self._run_counter += 1
        return os.path.join(self.wal_root, f"{label}-{self._run_counter:04d}")

    def run_plan_obj(
        self,
        plan_obj: dict,
        sim_seed: int,
        *,
        strict: bool = True,
        planted_bug: Optional[str] = None,
        wal_label: str = "run",
    ) -> Tuple[List[InvariantViolation], str, Dict[str, object]]:
        """Execute one serialized plan and judge the settled world.

        Returns ``(violations, signature, stats)``.  The signature is
        captured *before* the destructive WAL-recovery probe so two
        arms of a replay check compare identically-scoped logs.
        """
        plan = FaultPlan.from_json_obj(plan_obj, strict=strict)
        wal_dir = self._fresh_wal_dir(wal_label)

        reset_global_ids()
        sim = Simulator(seed=sim_seed)
        network = CellularNetwork(sim)
        fleet = ShardedSenseAid(
            sim,
            network,
            [ShardSpec(sid, site) for sid, site in _SITES],
            SenseAidConfig(
                mode=ServerMode.COMPLETE,
                weights=_FAIR,
                overload=OverloadPolicy(),
            ),
            wal_root=wal_dir,
            heartbeat_period_s=_HEARTBEAT_S,
            phi_threshold=_PHI_THRESHOLD,
            min_std_s=_HEARTBEAT_S / 10.0,
            redirect_latency_s=0.05,
        )
        clients: Dict[str, SenseAidClient] = {}
        for device_id in self.device_ids():
            device = SimDevice(sim, device_id, mobility=StaticMobility(_CENTER))
            client = SenseAidClient(
                sim,
                device,
                fleet.instance(fleet.shard_ids()[0]),
                network,
                retry_policy=_RETRY,
            )
            fleet.register(client)
            clients[device_id] = client

        front = fleet.shard_ids()[0]
        injector = FaultInjector(
            sim,
            network,
            fleet._registries[front],
            server=fleet.instance(front),
            fleet=fleet,
            plan=plan,
        )
        for client in clients.values():
            injector.adopt_client(client)

        data: List[object] = []
        handle = fleet.submit_task(
            TaskSpec(
                sensor_type=SensorType.BAROMETER,
                center=_CENTER,
                area_radius_m=3000.0,
                spatial_density=self.spatial_density,
                sampling_period_s=self.sampling_period_s,
                start_time=0.0,
                end_time=self.horizon_s,
            ),
            data.append,
        )

        sim.run(until=self.horizon_s)
        self._force_heal(network, fleet, injector)
        sim.run(until=self.horizon_s + self.settle_s)

        repair = fleet.repair()
        self._apply_planted_bug(planted_bug, fleet, clients)
        violations = run_invariant_suite(fleet, clients, repair)
        signature = structured_log(sim).signature()
        # Quiesce the client fleet before the destructive WAL probe
        # (Jepsen's "stop the load before the final reads").  A live
        # client reacts to the probe's restart notification with an
        # epoch resync, and resync of a device the server no longer
        # knows (e.g. one a deregister fault removed) falls back to a
        # full re-registration — mutating durable state between the
        # pre and post snapshots and reporting a phantom divergence.
        for client in clients.values():
            client.power_off()
        violations.extend(check_wal_recovery(fleet))

        stats = {
            "data_points": len(data),
            "degraded_points": handle.degraded_points,
            "failovers": fleet.failovers,
            "writes_fenced": fleet.writes_fenced(),
            "repaired_keys": repair["repaired_keys"],
            "acked_uploads": sum(
                len(c.acked_uploads) for c in clients.values()
            ),
            "faults_executed": injector.stats.events_executed,
            "messages_seen": injector.stats.messages_seen,
            "losses_injected": injector.stats.losses_injected,
            "duplicates_injected": injector.stats.duplicates_injected,
            "burst_requests": injector.stats.burst_requests,
        }
        fleet.shutdown()
        return violations, signature, stats

    def _force_heal(self, network, fleet, injector) -> None:
        """The Jepsen ``:stop`` phase: un-break whatever the plan (or a
        shrunken subset of it) left broken, so the settle window always
        measures convergence, never an ongoing outage."""
        for shard_id in sorted(fleet._partitioned):
            fleet.heal_shard(shard_id)
        for shard_id in fleet.shard_ids():
            registry = fleet._registries[shard_id]
            for tower in registry.towers:
                if not tower.operational:
                    registry.restore_tower(tower.tower_id)
        injector._do_clear_loss_model()
        injector._do_set_delay(0.0, (0.0, 0.0))
        injector._do_set_duplication(0.0)
        network.set_sense_aid_path_available(True)
        # Crashed incumbents recover through detection + failover
        # during the settle window; force the stragglers whose standby
        # only just healed.
        for shard_id in fleet.shard_ids():
            if fleet.instance(shard_id).crashed:
                if not fleet.fail_over(shard_id):
                    fleet.recover_shard(shard_id)

    def _apply_planted_bug(self, name, fleet, clients) -> None:
        """Deterministically sabotage the settled world (tests only).

        ``lost_ack`` discards one burned idempotency key — the smallest
        acked upload id of the first device whose home owner holds it —
        but only when the episode's fleet actually failed over, so the
        shrinker converges on the fault event that caused the failover.
        """
        if name is None:
            return
        if name == "lost_ack":
            if fleet.failovers == 0:
                return
            for device_id in sorted(clients):
                client = clients[device_id]
                if not client.acked_uploads:
                    continue
                owner = fleet.instance(fleet.home_shard(device_id))
                burned = sorted(
                    uid
                    for uid in client.acked_uploads
                    if uid in owner._seen_upload_ids
                )
                if burned:
                    owner._seen_upload_ids.discard(burned[0])
                    return

    # ------------------------------------------------------------------
    # Episodes
    # ------------------------------------------------------------------

    def plan_for_episode(self, episode: int) -> dict:
        """The episode's canonical (serialized) fault plan."""
        plan = self._generator.plan_for_episode(
            episode, self.world_spec(), self.tier
        )
        return plan.to_json_obj()

    def run_episode(self, episode: int) -> EpisodeResult:
        plan_obj = self.plan_for_episode(episode)
        sim_seed = episode_seed(self.master_seed, episode)
        violations, signature, stats = self.run_plan_obj(
            plan_obj,
            sim_seed,
            planted_bug=self.planted_bug,
            wal_label=f"ep{episode}",
        )
        if self.check_replay:
            re_violations, re_signature, _ = self.run_plan_obj(
                plan_obj,
                sim_seed,
                planted_bug=self.planted_bug,
                wal_label=f"ep{episode}-replay",
            )
            if re_signature != signature or sorted(
                v.code for v in re_violations
            ) != sorted(v.code for v in violations):
                violations.append(
                    InvariantViolation(
                        "REPLAY_DIVERGED",
                        "same-seed re-run produced a different signature "
                        "or verdict set",
                        {
                            "signature_a": signature,
                            "signature_b": re_signature,
                            "codes_a": sorted(v.code for v in violations),
                            "codes_b": sorted(v.code for v in re_violations),
                        },
                    )
                )
        # Cross-check the vectorized device plane against the scalar
        # reference under this episode's seed.  Passing checks add no
        # violations, so signatures and pass-rate baselines are
        # untouched; a kernel regression turns every episode red.
        if self.plane_crosscheck:
            violations.extend(check_plane_equivalence(sim_seed))
        return EpisodeResult(
            episode=episode,
            sim_seed=sim_seed,
            plan_obj=plan_obj,
            violations=violations,
            signature=signature,
            stats=stats,
            replay_checked=self.check_replay,
        )

    def run(self, episodes: int, *, first_episode: int = 0) -> SoakReport:
        report = SoakReport(master_seed=self.master_seed, tier=self.tier.name)
        for episode in range(first_episode, first_episode + episodes):
            report.results.append(self.run_episode(episode))
        return report


__all__ = [
    "EpisodeResult",
    "PLANTED_BUGS",
    "SoakHarness",
    "SoakReport",
]
