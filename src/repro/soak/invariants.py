"""The cross-layer invariant suite the soak harness runs per episode.

Each check inspects a *settled* world — the harness has healed every
injected fault, let the fleet converge, and run anti-entropy repair —
and returns :class:`InvariantViolation` records.  The catalog:

``ACKED_UPLOAD_LOST``
    Some client holds an *accepted* ack for an upload id its current
    home incumbent does not have burned.  The acknowledged reading is
    double-countable on retransmit — acknowledged-upload loss.
``DOUBLE_COUNTED_READING``
    A server's accepted-reading counter exceeds its burned-key count
    (each fresh accept must burn exactly one key).
``DOUBLE_ACKED``
    A client saw two *fresh* ``accepted`` verdicts for one upload id
    (the second must have been ``duplicate``).
``EPOCH_REGRESSED``
    An epoch transition (failover or in-place recovery) failed to
    strictly advance, a shard's epoch history is non-monotone, or a
    serving instance runs below its shard's last recorded epoch.
``DIVERGED_AFTER_HEAL``
    Anti-entropy repair finished with a non-empty diff: the fleet did
    not converge after every fault healed.
``WAL_RECOVERY``
    ``check_recovery_invariants`` flagged a divergence between a
    shard's pre-restart durable state and its recovered state (the
    wrapped :class:`~repro.core.wal.RecoveryViolation` codes ride
    along in the detail).
``REPLAY_DIVERGED``
    Emitted by the harness itself: a same-seed re-run of the episode
    produced a different structured-log signature or different
    verdicts.
``PLANE_DIVERGED``
    The struct-of-arrays device plane and its object-per-device
    reference disagreed on a seeded campaign: different selection log,
    per-device snapshot, or fleet energy total.  Run per episode (seed
    derived from the episode seed) so the vectorized kernels are
    continuously cross-checked against the scalar semantics under the
    soak's seed diversity, not just the property-test corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.sharding import ShardedSenseAid
from repro.core.wal import check_recovery_invariants, durable_state


@dataclass(frozen=True)
class InvariantViolation:
    """One invariant breach: a stable code, prose, and evidence."""

    code: str
    message: str
    detail: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "detail": dict(self.detail),
        }


def check_acked_upload_loss(fleet: ShardedSenseAid) -> List[InvariantViolation]:
    lost = fleet.acked_upload_audit()
    if not lost:
        return []
    return [
        InvariantViolation(
            "ACKED_UPLOAD_LOST",
            f"{sum(len(v) for v in lost.values())} acknowledged upload(s) "
            f"unknown to their home shard after repair",
            {"by_device": {k: list(v) for k, v in lost.items()}},
        )
    ]


def check_idempotency(fleet: ShardedSenseAid) -> List[InvariantViolation]:
    violations: List[InvariantViolation] = []
    for shard_id in fleet.shard_ids():
        audit = fleet.instance(shard_id).idempotency_audit()
        if audit["overcount"] > 0:
            violations.append(
                InvariantViolation(
                    "DOUBLE_COUNTED_READING",
                    f"shard {shard_id} accepted {audit['accepted']} readings "
                    f"but burned only {audit['burned_keys']} idempotency keys",
                    {"shard": shard_id, **audit},
                )
            )
    return violations


def check_double_acks(clients: Dict[str, object]) -> List[InvariantViolation]:
    violations: List[InvariantViolation] = []
    for device_id in sorted(clients):
        doubled = clients[device_id].double_accepted_uploads()
        if doubled:
            violations.append(
                InvariantViolation(
                    "DOUBLE_ACKED",
                    f"device {device_id} received a fresh 'accepted' verdict "
                    f"more than once for {sorted(doubled)}",
                    {"device": device_id, "counts": dict(doubled)},
                )
            )
    return violations


def check_epoch_monotonicity(fleet: ShardedSenseAid) -> List[InvariantViolation]:
    violations: List[InvariantViolation] = []
    last_epoch: Dict[str, int] = {}
    for shard_id, old_epoch, new_epoch in fleet.epoch_log:
        if new_epoch <= old_epoch:
            violations.append(
                InvariantViolation(
                    "EPOCH_REGRESSED",
                    f"shard {shard_id} transitioned {old_epoch} -> "
                    f"{new_epoch} without advancing",
                    {"shard": shard_id, "old": old_epoch, "new": new_epoch},
                )
            )
        if old_epoch < last_epoch.get(shard_id, 0):
            violations.append(
                InvariantViolation(
                    "EPOCH_REGRESSED",
                    f"shard {shard_id} epoch history is non-monotone: "
                    f"{old_epoch} after {last_epoch[shard_id]}",
                    {"shard": shard_id},
                )
            )
        last_epoch[shard_id] = new_epoch
    for shard_id in fleet.shard_ids():
        current = fleet.instance(shard_id).epoch
        floor = last_epoch.get(shard_id, 0)
        if current < floor:
            violations.append(
                InvariantViolation(
                    "EPOCH_REGRESSED",
                    f"shard {shard_id} serves at epoch {current}, below its "
                    f"last recorded transition to {floor}",
                    {"shard": shard_id, "current": current, "floor": floor},
                )
            )
    return violations


def check_convergence(repair_report: dict) -> List[InvariantViolation]:
    if repair_report.get("clean"):
        return []
    return [
        InvariantViolation(
            "DIVERGED_AFTER_HEAL",
            "anti-entropy diff non-empty after repair",
            {"diff_after": repair_report.get("diff_after", {})},
        )
    ]


def check_wal_recovery(fleet: ShardedSenseAid) -> List[InvariantViolation]:
    """Restart every live WAL-backed incumbent and diff durable state.

    Destructive to volatile state (each probed shard comes back one
    epoch ahead), so the harness runs it last, after the episode's
    structured-log signature is captured.
    """
    violations: List[InvariantViolation] = []
    for shard_id in fleet.shard_ids():
        server = fleet.instance(shard_id)
        if server.crashed or server._wal is None:
            continue
        pre = durable_state(server)
        server.restart()
        post = durable_state(server)
        for record in check_recovery_invariants(pre, post):
            violations.append(
                InvariantViolation(
                    "WAL_RECOVERY",
                    f"shard {shard_id}: {record}",
                    {
                        "shard": shard_id,
                        "wal_code": getattr(record, "code", None),
                        "keys": list(getattr(record, "keys", ())),
                    },
                )
            )
    return violations


def check_plane_equivalence(
    seed: int,
    *,
    devices: int = 48,
    rounds: int = 12,
) -> List[InvariantViolation]:
    """Cross-check the vectorized device plane against the object plane.

    Builds one fleet from ``seed`` and runs the same deterministic
    campaign through both :class:`~repro.core.deviceplane.DevicePlane`
    implementations, requiring exact ``==`` on the selection log, the
    full per-device snapshot, and the :func:`math.fsum` energy total —
    the bit-identity contract ``docs/deviceplane.md`` documents.  A
    short round period keeps re-selection inside the LTE tail so the
    tail-resume upload arm (the hardest kernel) is exercised every
    episode.  Cheap (&lt;50 ms) by design: it rides along with every
    soak episode.
    """
    from repro.core.deviceplane import (
        CampaignSpec,
        FleetSpec,
        SensingTask,
        make_plane,
        run_campaign,
    )

    spec = FleetSpec(
        devices=devices,
        seed=seed,
        width_m=2000.0,
        height_m=2000.0,
        sensor_fraction=1.0,
    )
    campaign = CampaignSpec(
        tasks=(
            SensingTask(700.0, 700.0, 900.0, 3),
            SensingTask(1300.0, 1300.0, 900.0, 3),
        ),
        round_period_s=5.0,
        tail_defer_s=0.0,
    )
    obj_plane = make_plane(spec, kind="object")
    vec_plane = make_plane(spec, kind="vector")
    obj_result = run_campaign(obj_plane, campaign, rounds)
    vec_result = run_campaign(vec_plane, campaign, rounds)

    mismatched: List[str] = []
    if obj_result.selection_log != vec_result.selection_log:
        mismatched.append("selection_log")
    obj_snap, vec_snap = obj_plane.snapshot(), vec_plane.snapshot()
    mismatched.extend(
        f"snapshot.{key}" for key in obj_snap if obj_snap[key] != vec_snap[key]
    )
    obj_total = obj_plane.total_crowdsensing_energy_j()
    vec_total = vec_plane.total_crowdsensing_energy_j()
    if obj_total != vec_total:
        mismatched.append("energy_total")
    if not mismatched:
        return []
    return [
        InvariantViolation(
            "PLANE_DIVERGED",
            f"vector device plane diverged from the object reference on "
            f"seed {seed}: {', '.join(mismatched)}",
            {
                "seed": seed,
                "devices": devices,
                "rounds": rounds,
                "fields": mismatched,
                "energy_object_j": obj_total,
                "energy_vector_j": vec_total,
            },
        )
    ]


def run_invariant_suite(
    fleet: ShardedSenseAid,
    clients: Dict[str, object],
    repair_report: dict,
) -> List[InvariantViolation]:
    """Every post-episode check except replay (the harness owns that)
    and WAL recovery (destructive — the harness runs it after the
    signature capture)."""
    violations: List[InvariantViolation] = []
    violations.extend(check_acked_upload_loss(fleet))
    violations.extend(check_idempotency(fleet))
    violations.extend(check_double_acks(clients))
    violations.extend(check_epoch_monotonicity(fleet))
    violations.extend(check_convergence(repair_report))
    return violations


__all__ = [
    "InvariantViolation",
    "check_acked_upload_loss",
    "check_convergence",
    "check_double_acks",
    "check_epoch_monotonicity",
    "check_idempotency",
    "check_plane_equivalence",
    "check_wal_recovery",
    "run_invariant_suite",
]
