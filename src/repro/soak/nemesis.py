"""The nemesis: seeded, legality-constrained fault-plan fuzzing.

A :class:`NemesisGenerator` samples random-but-reproducible
:class:`~repro.faults.plan.FaultPlan`\\ s against a described world
(:class:`WorldSpec`) at a chosen :class:`IntensityTier`.  Per-episode
randomness is derived by hashing ``(master seed, episode index)``, so
episode 7 of seed 42 is the same plan on every machine, every run,
forever — the property the soak harness's same-seed determinism check
and the shrunken reproducers both rest on.

Legality is enforced *by construction* rather than by rejection
sampling wherever possible:

- every outage is paired with its heal inside the episode horizon
  (heal-before-outage is therefore impossible — the strict
  :meth:`FaultPlan.validate` pass at injector-attach time would refuse
  it anyway);
- at most one network-wide partition is active at a time;
- concurrent shard faults are capped below the shard count, so a live
  standby always exists for failover;
- concurrent tower outages and total device kills are capped so the
  campaign retains enough fleet to make progress;
- message-level knobs (loss model, delay, duplication) run in
  non-overlapping windows per knob, and injected delays stay well
  under the clients' ack timeout so a late ack is never mistaken for
  a lost one;
- all fault activity lands in the first ~80% of the horizon, leaving
  the tail (plus the harness's settle window) fault-free for
  convergence.

``server_crash``/``server_restart`` are deliberately absent from the
sampled vocabulary: the soak world is sharded, where ``shard_crash``
*is* the process-death fault (the fleet's failover machinery owns the
restart).  The single-server actions remain available to hand-written
plans.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.faults.models import GilbertElliott
from repro.faults.plan import FaultPlan

#: Fault starts are sampled inside this fraction of the horizon ...
_START_WINDOW = (0.05, 0.70)
#: ... and every paired heal fires by this fraction.
_HEAL_DEADLINE = 0.90


@dataclass(frozen=True)
class WorldSpec:
    """What the nemesis is allowed to break.

    ``tower_ids`` and ``deregisterable_device_ids`` are scoped to the
    injector's *front* shard (a :class:`FaultInjector` binds one
    registry and one server); ``killable_device_ids`` spans the whole
    fleet (device death is client-side).
    """

    horizon_s: float
    shard_ids: Tuple[str, ...] = ()
    tower_ids: Tuple[str, ...] = ()
    killable_device_ids: Tuple[str, ...] = ()
    deregisterable_device_ids: Tuple[str, ...] = ()
    overload_enabled: bool = True

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")


@dataclass(frozen=True)
class IntensityTier:
    """How hard the nemesis leans on the world.

    ``vocabulary`` maps fault family -> sampling weight; a family with
    no legal move left in a given draw is simply skipped (the plan
    ends up slightly shorter, never illegal).
    """

    name: str
    events: Tuple[int, int]  #: (min, max) sampled injections
    vocabulary: Dict[str, float] = field(default_factory=dict)
    max_concurrent_shard_faults: int = 1
    max_concurrent_tower_outages: int = 1
    max_device_kills: int = 1
    shard_outage_s: Tuple[float, float] = (60.0, 240.0)
    tower_outage_s: Tuple[float, float] = (60.0, 240.0)
    partition_s: Tuple[float, float] = (60.0, 180.0)
    link_window_s: Tuple[float, float] = (60.0, 300.0)
    loss_bad_range: Tuple[float, float] = (0.3, 0.8)
    delay_probability: Tuple[float, float] = (0.1, 0.5)
    #: Injected delays stay far below the 20 s client ack timeout so a
    #: slow ack can never masquerade as acknowledged-upload loss.
    delay_s: Tuple[float, float] = (0.2, 6.0)
    dup_probability: Tuple[float, float] = (0.05, 0.4)
    burst_rate_per_s: Tuple[float, float] = (50.0, 150.0)
    burst_duration_s: Tuple[float, float] = (2.0, 10.0)


_BASE_VOCABULARY = {
    "shard_fault": 3.0,
    "tower_outage": 2.0,
    "partition": 1.5,
    "device_churn": 2.0,
    "loss": 2.0,
    "delay": 2.0,
    "duplication": 2.0,
    "overload": 1.5,
}

#: Named intensity tiers.  ``light`` is a smoke-level poke, ``medium``
#: the PR-gate default, ``heavy`` the nightly soak's diet.
TIERS: Dict[str, IntensityTier] = {
    "light": IntensityTier(
        name="light",
        events=(3, 6),
        vocabulary=dict(_BASE_VOCABULARY),
        max_concurrent_shard_faults=1,
        max_concurrent_tower_outages=1,
        max_device_kills=1,
    ),
    "medium": IntensityTier(
        name="medium",
        events=(6, 12),
        vocabulary=dict(_BASE_VOCABULARY),
        max_concurrent_shard_faults=1,
        max_concurrent_tower_outages=1,
        max_device_kills=2,
    ),
    "heavy": IntensityTier(
        name="heavy",
        events=(12, 20),
        vocabulary=dict(_BASE_VOCABULARY),
        max_concurrent_shard_faults=2,
        max_concurrent_tower_outages=2,
        max_device_kills=3,
        shard_outage_s=(60.0, 360.0),
        loss_bad_range=(0.5, 0.9),
        burst_rate_per_s=(100.0, 300.0),
    ),
}


def episode_seed(master_seed: int, episode: int) -> int:
    """Stable per-episode seed: sha256 over (master, episode).

    Hash-derived (not ``master + episode``) so neighbouring master
    seeds don't share episode streams, and platform-independent so a
    reproducer minted in CI replays identically on a laptop.
    """
    digest = hashlib.sha256(f"soak:{master_seed}:{episode}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _overlaps(busy: List[Tuple[float, float]], start: float, end: float) -> int:
    return sum(1 for s, e in busy if start < e and s < end)


class NemesisGenerator:
    """Samples one legal :class:`FaultPlan` per (seed, episode)."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed

    def plan_for_episode(
        self, episode: int, world: WorldSpec, tier: IntensityTier
    ) -> FaultPlan:
        rng = random.Random(episode_seed(self.master_seed, episode))
        plan = FaultPlan()
        horizon = world.horizon_s
        lo, hi = _START_WINDOW
        heal_by = _HEAL_DEADLINE * horizon

        shard_busy: List[Tuple[float, float]] = []
        #: Shards with an interval still open, per-shard (one fault per
        #: shard at a time: crashing an already-partitioned shard is a
        #: legal state but a confusing reproducer).
        shard_claims: Dict[str, List[Tuple[float, float]]] = {}
        tower_busy: List[Tuple[float, float]] = []
        tower_claims: Dict[str, List[Tuple[float, float]]] = {}
        partition_busy: List[Tuple[float, float]] = []
        link_busy: Dict[str, List[Tuple[float, float]]] = {
            "loss": [],
            "delay": [],
            "duplication": [],
        }
        kills = 0
        killed: List[str] = []

        families = sorted(tier.vocabulary)
        weights = [tier.vocabulary[f] for f in families]
        n_events = rng.randint(*tier.events)
        for _ in range(n_events):
            family = rng.choices(families, weights=weights)[0]
            start = rng.uniform(lo * horizon, hi * horizon)

            if family == "shard_fault":
                if not world.shard_ids:
                    continue
                duration = rng.uniform(*tier.shard_outage_s)
                end = min(start + duration, heal_by)
                if end <= start:
                    continue
                if _overlaps(shard_busy, start, end) >= min(
                    tier.max_concurrent_shard_faults, len(world.shard_ids) - 1
                ):
                    continue
                free = [
                    sid
                    for sid in world.shard_ids
                    if not _overlaps(shard_claims.get(sid, []), start, end)
                ]
                if not free:
                    continue
                shard_id = rng.choice(free)
                shard_busy.append((start, end))
                shard_claims.setdefault(shard_id, []).append((start, end))
                if rng.random() < 0.5:
                    # Crash: no explicit heal — detection + failover is
                    # the recovery path; the interval still counts
                    # against the concurrency cap.
                    plan.shard_crash(start, shard_id)
                else:
                    plan.shard_partition(
                        start, shard_id, heal_after=end - start
                    )

            elif family == "tower_outage":
                if not world.tower_ids:
                    continue
                duration = rng.uniform(*tier.tower_outage_s)
                end = min(start + duration, heal_by)
                if end <= start:
                    continue
                if (
                    _overlaps(tower_busy, start, end)
                    >= tier.max_concurrent_tower_outages
                ):
                    continue
                free = [
                    tid
                    for tid in world.tower_ids
                    if not _overlaps(tower_claims.get(tid, []), start, end)
                ]
                if not free:
                    continue
                tower_id = rng.choice(free)
                tower_busy.append((start, end))
                tower_claims.setdefault(tower_id, []).append((start, end))
                plan.tower_down(start, tower_id, restore_after=end - start)

            elif family == "partition":
                duration = rng.uniform(*tier.partition_s)
                end = min(start + duration, heal_by)
                if end <= start or _overlaps(partition_busy, start, end):
                    continue
                partition_busy.append((start, end))
                plan.partition(start, heal_after=end - start)

            elif family == "device_churn":
                deregisterable = [
                    d
                    for d in world.deregisterable_device_ids
                    if d not in killed
                ]
                if kills < tier.max_device_kills and world.killable_device_ids:
                    candidates = [
                        d for d in world.killable_device_ids if d not in killed
                    ]
                    if not candidates:
                        continue
                    victim = rng.choice(candidates)
                    killed.append(victim)
                    kills += 1
                    plan.kill_device(start, victim)
                elif deregisterable:
                    victim = rng.choice(deregisterable)
                    killed.append(victim)
                    plan.deregister_device(start, victim)

            elif family == "loss":
                duration = rng.uniform(*tier.link_window_s)
                end = min(start + duration, heal_by)
                if end <= start or _overlaps(link_busy["loss"], start, end):
                    continue
                link_busy["loss"].append((start, end))
                loss_bad = rng.uniform(*tier.loss_bad_range)
                plan.set_loss_model(
                    start,
                    GilbertElliott(
                        p_good_to_bad=rng.uniform(0.05, 0.2),
                        p_bad_to_good=rng.uniform(0.2, 0.5),
                        loss_good=0.0,
                        loss_bad=loss_bad,
                    ),
                )
                plan.clear_loss_model(end)

            elif family == "delay":
                duration = rng.uniform(*tier.link_window_s)
                end = min(start + duration, heal_by)
                if end <= start or _overlaps(link_busy["delay"], start, end):
                    continue
                link_busy["delay"].append((start, end))
                d_lo = rng.uniform(*tier.delay_s)
                d_hi = rng.uniform(d_lo, tier.delay_s[1])
                plan.set_delay(
                    start,
                    probability=rng.uniform(*tier.delay_probability),
                    delay_range_s=(d_lo, d_hi),
                )
                plan.set_delay(end, probability=0.0, delay_range_s=(0.0, 0.0))

            elif family == "duplication":
                duration = rng.uniform(*tier.link_window_s)
                end = min(start + duration, heal_by)
                if end <= start or _overlaps(
                    link_busy["duplication"], start, end
                ):
                    continue
                link_busy["duplication"].append((start, end))
                plan.set_duplication(
                    start, probability=rng.uniform(*tier.dup_probability)
                )
                plan.set_duplication(end, probability=0.0)

            elif family == "overload":
                if not world.overload_enabled:
                    continue
                plan.overload_burst(
                    start,
                    rate_per_s=round(rng.uniform(*tier.burst_rate_per_s), 3),
                    duration_s=round(rng.uniform(*tier.burst_duration_s), 3),
                    request_class=rng.choice(["query", "upload"]),
                )

        return plan


def resolve_tier(name_or_tier) -> IntensityTier:
    """Accept a tier name (``"medium"``) or an IntensityTier instance."""
    if isinstance(name_or_tier, IntensityTier):
        return name_or_tier
    try:
        return TIERS[name_or_tier]
    except KeyError:
        raise ValueError(
            f"unknown intensity tier {name_or_tier!r}; "
            f"known: {sorted(TIERS)}"
        ) from None


__all__ = [
    "IntensityTier",
    "NemesisGenerator",
    "TIERS",
    "WorldSpec",
    "episode_seed",
    "resolve_tier",
]
